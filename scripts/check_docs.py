"""Docs-consistency gate — thin shim over ``repro.analysis`` rule RA007.

The checks themselves (architecture coverage + the public docstring
floor) moved into :mod:`repro.analysis.rules.docs_consistency` when the
lint engine landed, so they run as part of ``python -m repro.analysis``
and can be pragma-suppressed like any other rule.  This script survives
as the historical CLI entry point: same flags, same exit codes, same
one-problem-per-line stderr listing, so existing CI invocations and
operator muscle memory keep working.

Exit status: 0 = consistent, 1 = violations (listed on stderr).

Usage:
    python scripts/check_docs.py [--repo PATH]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO / "src"))

from repro.analysis.engine import ProjectContext  # noqa: E402
from repro.analysis.rules.docs_consistency import (  # noqa: E402
    DocsConsistencyRule,
    repro_subpackages,
)


def main(argv: list[str] | None = None) -> int:
    """Run the RA007 checks; print violations and exit nonzero on any."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo",
        type=Path,
        default=_REPO,
        help="repository root (default: this script's grandparent)",
    )
    args = parser.parse_args(argv)
    if not (args.repo / "docs").is_dir() or not (
        args.repo / "src" / "repro"
    ).is_dir():
        # RA007 gates silently on repo layout (it runs against arbitrary
        # analysis roots); this CLI is only ever pointed at the repo, so
        # a wrong --repo should be loud, not a spurious "ok".
        print(
            f"check_docs: {args.repo} is not the repository root "
            f"(no docs/ + src/repro)",
            file=sys.stderr,
        )
        return 2
    rule = DocsConsistencyRule()
    project = ProjectContext(root=args.repo, modules=[])
    problems = list(rule.check_project(project))
    if problems:
        print(
            f"check_docs: {len(problems)} violation(s):",
            file=sys.stderr,
        )
        for problem in problems:
            print(
                f"  {problem.path}:{problem.line}: {problem.message}",
                file=sys.stderr,
            )
        return 1
    subpackages = len(repro_subpackages(args.repo))
    print(
        f"check_docs: ok — {subpackages} subpackages covered by "
        f"docs/architecture.md, public API docstrings complete"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
