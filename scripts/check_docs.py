"""Docs-consistency gate: keep the documentation tree honest in CI.

Two dependency-free checks (plain stdlib, no docs tooling):

1. **Architecture coverage** — every ``repro.*`` subpackage must be
   mentioned in ``docs/architecture.md``, and the four core docs pages
   (``architecture``, ``serving``, ``protocol``, ``benchmarking``)
   must exist and be linked from ``README.md``.  A PR that adds a
   subsystem without documenting it fails here, which is how the docs
   tree stays current instead of rotting like the pre-PR-5 DESIGN.md
   sections did.

2. **Public docstring floor** — every public module, class, function
   and method in the documented API packages (``repro.api``,
   ``repro.backend``, ``repro.serve``, ``repro.gateway``) must carry a
   docstring.  This mirrors the ruff ``D1xx`` selection the lint job
   runs (see ``.github/workflows/ci.yml``) but is runnable anywhere
   Python is — including environments without ruff.

Exit status: 0 = consistent, 1 = violations (listed on stderr).

Usage:
    python scripts/check_docs.py [--repo PATH]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Packages whose public surface must be fully docstring'd.
DOCSTRING_PACKAGES = ("api", "backend", "serve", "gateway")

#: Core docs pages that must exist and be linked from the README.
DOCS_PAGES = (
    "architecture.md",
    "serving.md",
    "protocol.md",
    "benchmarking.md",
)


def repro_subpackages(repo: Path) -> list[str]:
    """Names of every ``repro.*`` subpackage (directories with inits)."""
    root = repo / "src" / "repro"
    return sorted(
        path.name
        for path in root.iterdir()
        if path.is_dir() and (path / "__init__.py").exists()
    )


def check_architecture_coverage(repo: Path) -> list[str]:
    """Docs pages exist, are linked, and name every subpackage."""
    problems: list[str] = []
    docs = repo / "docs"
    for page in DOCS_PAGES:
        if not (docs / page).exists():
            problems.append(f"docs/{page} is missing")
    readme = (repo / "README.md").read_text(encoding="utf-8")
    for page in DOCS_PAGES:
        if f"docs/{page}" not in readme:
            problems.append(f"README.md does not link docs/{page}")
    architecture_path = docs / "architecture.md"
    if architecture_path.exists():
        architecture = architecture_path.read_text(encoding="utf-8")
        for name in repro_subpackages(repo):
            if f"repro.{name}" not in architecture:
                problems.append(
                    f"docs/architecture.md does not mention "
                    f"repro.{name}"
                )
    return problems


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(
    tree: ast.Module, relative: str
) -> list[str]:
    problems: list[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{relative}: module docstring missing")
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                problems.append(
                    f"{relative}:{node.lineno}: class {node.name} "
                    f"has no docstring"
                )
            for child in node.body:
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    if (
                        _is_public(child.name)
                        and ast.get_docstring(child) is None
                    ):
                        problems.append(
                            f"{relative}:{child.lineno}: method "
                            f"{node.name}.{child.name} has no docstring"
                        )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Only module-level functions: methods are handled above and
            # nested helpers are private by construction.
            continue
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                problems.append(
                    f"{relative}:{node.lineno}: function {node.name} "
                    f"has no docstring"
                )
    return problems


def check_docstrings(repo: Path) -> list[str]:
    """Public-docstring floor over the documented API packages."""
    problems: list[str] = []
    for package in DOCSTRING_PACKAGES:
        root = repo / "src" / "repro" / package
        for path in sorted(root.rglob("*.py")):
            relative = str(path.relative_to(repo))
            tree = ast.parse(
                path.read_text(encoding="utf-8"), filename=relative
            )
            problems.extend(_missing_docstrings(tree, relative))
    return problems


def main(argv: list[str] | None = None) -> int:
    """Run both checks; print violations and exit nonzero on any."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo",
        type=Path,
        default=Path(__file__).resolve().parents[1],
        help="repository root (default: this script's grandparent)",
    )
    args = parser.parse_args(argv)
    problems = check_architecture_coverage(args.repo)
    problems += check_docstrings(args.repo)
    if problems:
        print(
            f"check_docs: {len(problems)} violation(s):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    subpackages = len(repro_subpackages(args.repo))
    print(
        f"check_docs: ok — {subpackages} subpackages covered by "
        f"docs/architecture.md, public API docstrings complete"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
