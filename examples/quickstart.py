"""Quickstart: simulate a PICMUS-style cyst scene, beamform, measure.

Runs the classical chain end to end — plane-wave simulation, ToF
correction, DAS and MVDR beamforming, envelope detection, contrast
metrics — and writes B-mode images as PGM files.

Usage:
    python examples/quickstart.py [output_dir]
"""

import sys
from pathlib import Path

from repro.api import create_beamformer
from repro.beamform import bmode_image
from repro.beamform.envelope import envelope_detect
from repro.metrics import dataset_contrast
from repro.ultrasound import simulation_contrast
from repro.utils.io import write_pgm


def main(output_dir: Path) -> None:
    print("Simulating the in-silico contrast preset "
          "(anechoic cysts at 13/25/37 mm)...")
    dataset = simulation_contrast()
    print(f"  RF data: {dataset.rf.shape} "
          f"({dataset.probe.n_elements} elements)")

    for method in ("das", "mvdr"):
        iq = create_beamformer(method).beamform(dataset)
        metrics = dataset_contrast(envelope_detect(iq), dataset)
        path = write_pgm(
            output_dir / f"quickstart_{method}.pgm", bmode_image(iq)
        )
        print(
            f"  {method.upper():5s} CR={metrics.cr_db:6.2f} dB  "
            f"CNR={metrics.cnr:5.2f}  GCNR={metrics.gcnr:5.2f}  -> {path}"
        )

    print("Done.  View the .pgm files with any image viewer.")


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("artifacts/figures")
    main(target)
