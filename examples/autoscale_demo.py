"""Self-driving serving: a load spike, shed by the servo controller.

Runs the full control-loop stack in one process — the deployment
miniature of ``python -m repro.gateway --autoscale``:

* a single-worker :class:`~repro.serve.ServeEngine` over an untrained
  ``tiny_vbf`` model (slow on purpose: the point is saturation),
* a loopback :class:`~repro.gateway.GatewayServer` booted with a
  deliberately generous in-flight credit,
* a :class:`~repro.serve.control.ServoController` enforcing an
  :class:`~repro.serve.control.SLO` from live gateway telemetry.

The client then drives a three-phase traffic script::

    steady (under capacity) -> spike (~3x capacity) -> recovery

and prints the controller's action log.  Watch the admission axis:
during the spike the in-flight queue depth breaches the SLO, the
controller halves the gateway credit (``shed``) until arrivals are
being rejected at the edge instead of queueing, and during recovery it
restores credit one step per cooldown (``restore``) — shed fast,
restore slow, so the queue the shed drained is not instantly rebuilt.
``docs/autotuning.md`` is the operator-facing tour of the same loop.

CI runs this example (gateway job) and it asserts the story actually
happened: at least one shed during the spike, at least one restore
after it, and zero lost frames (every submission either served or
explicitly rejected).

Usage:
    PYTHONPATH=src python examples/autoscale_demo.py
"""

import json
from collections import deque

from repro.api import create_beamformer
from repro.gateway import GatewayClient, GatewayRejected, GatewayServer
from repro.gateway.protocol import dataset_geometry
from repro.models.registry import build_model
from repro.serve import ServeEngine
from repro.serve.control import SLO, ControlBounds, ServoController
from repro.ultrasound import simulation_contrast, stream_gain_drift

#: The misconfigured boot credit the controller has to walk back.
BOOT_INFLIGHT = 48

#: (name, n_frames, frames_per_second) — the scripted load.
PHASES = (
    ("steady", 8, 4.0),
    ("spike", 20, 25.0),
    ("recovery", 12, 4.0),
)


def main() -> None:
    import time

    print("Building an untrained tiny_vbf engine (1 worker)...")
    dataset = simulation_contrast()
    model = build_model("tiny_vbf", "small", seed=0)
    beamformer = create_beamformer("tiny_vbf", model=model)
    beamformer.beamform(dataset)  # warm the plan cache
    engine = ServeEngine(
        beamformer,
        max_batch=2,
        max_latency_ms=20.0,
        queue_capacity=64,
        backpressure="block",
        n_workers=1,
        keep_images=False,
        log_every_s=0.0,
    )

    slo = SLO(p99_latency_s=0.5, max_queue_depth=4)
    gateway = GatewayServer(
        engine,
        port=0,
        max_sessions=1,
        max_inflight=BOOT_INFLIGHT,
        feed_capacity=64,
    )
    served = rejected = 0
    with gateway:
        print(
            f"Gateway on 127.0.0.1:{gateway.port} "
            f"(boot max_inflight={BOOT_INFLIGHT}); SLO: "
            f"p99 <= {slo.p99_latency_s * 1e3:.0f} ms, "
            f"depth <= {slo.max_queue_depth}"
        )
        controller = ServoController(
            slo,
            lambda: gateway.telemetry,
            engine=engine,
            gateway=gateway,
            bounds=ControlBounds(
                max_batch=engine.max_batch,
                patience=1,
                cooldown_ticks=10,
            ),
            interval_s=0.1,
        )
        with controller:  # starts the tick thread, stops on exit
            with GatewayClient("127.0.0.1", gateway.port) as client:
                client.connect(dataset_geometry(dataset))
                pending: deque[int] = deque()

                def harvest(everything: bool = False) -> None:
                    nonlocal served, rejected
                    client.poll()
                    while pending and (
                        everything or client.has_result(pending[0])
                    ):
                        try:
                            client.result(pending.popleft())
                            served += 1
                        except GatewayRejected:
                            rejected += 1

                n_sent = 0
                for name, n_frames, fps in PHASES:
                    frames = stream_gain_drift(
                        dataset, n_frames, seed=len(name)
                    )
                    for frame in frames:
                        time.sleep(1.0 / fps)
                        harvest()
                        pending.append(client.submit(frame.rf))
                        n_sent += 1
                    print(
                        f"  [{name:>8}] sent {n_frames} frames at "
                        f"{fps:g} fps (credit now "
                        f"{gateway.max_inflight})"
                    )
                harvest(everything=True)
            status = controller.status()

    print(f"\nServed {served}, rejected {rejected} of {n_sent} frames")
    print("Controller action log:")
    t0 = min((a["at"] for a in status["actions"]), default=0.0)
    for action in status["actions"]:
        print(
            f"  t=+{action['at'] - t0:6.2f}s {action['policy']:>9}/"
            f"{action['action']:<12} -> {action['value']:g}  "
            f"({action['reason']})"
        )
    print("Final state:")
    print(json.dumps({k: status[k] for k in ("engine", "gateway")}))

    # The demo is a CI claim, not just a printout: the controller must
    # have shed during the spike and given credit back afterwards.
    assert served + rejected == n_sent, "a frame was lost"
    kinds = [a["action"] for a in status["actions"]]
    assert "shed" in kinds, "spike never triggered an admission shed"
    assert "restore" in kinds, "recovery never restored credit"
    assert gateway.max_inflight < BOOT_INFLIGHT, (
        "controller ended with the bufferbloat credit it booted with"
    )
    print("Done: shed under load, restored after — SLO loop closed.")


if __name__ == "__main__":
    main()
