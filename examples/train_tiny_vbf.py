"""Train Tiny-VBF against MVDR ground truth and evaluate it.

Reproduces the paper's training recipe (Section III): single-angle ToFC
channel data in, MVDR IQ out, MSE loss, Adam with cyclic polynomial
decay.  By default loads the cached weights if they exist; pass
``--retrain`` to force a fresh run (several minutes of NumPy training).

Usage:
    python examples/train_tiny_vbf.py [--retrain] [--epochs N]
"""

import argparse

from repro.api import create_beamformer
from repro.beamform.envelope import envelope_detect
from repro.eval.tables import PAPER_TABLE_I, format_contrast_table
from repro.metrics import dataset_contrast
from repro.training import get_trained_model
from repro.ultrasound import simulation_contrast


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--retrain", action="store_true",
                        help="force retraining instead of using the cache")
    parser.add_argument("--epochs", type=int, default=None,
                        help="override the default epoch budget")
    args = parser.parse_args()

    kwargs = {}
    if args.epochs is not None:
        kwargs["epochs"] = args.epochs
    print("Loading (or training) Tiny-VBF...")
    model = get_trained_model(
        "tiny_vbf", retrain=args.retrain, verbose_every=25, **kwargs
    )
    print(f"  {model.n_parameters:,} weights")

    dataset = simulation_contrast()
    beamformers = {
        "das": create_beamformer("das"),
        "mvdr": create_beamformer("mvdr"),
        "tiny_vbf": create_beamformer("tiny_vbf", model=model),
    }
    measured = {
        name: dataset_contrast(
            envelope_detect(beamformer.beamform(dataset)), dataset
        )
        for name, beamformer in beamformers.items()
    }
    print(format_contrast_table(
        measured, PAPER_TABLE_I["simulation"],
        title="In-silico contrast (measured | paper)",
    ))


if __name__ == "__main__":
    main()
