"""Ablation: Tiny-VBF with and without the per-pixel decoder skip path.

DESIGN.md documents one deliberate architectural interpretation: the
decoder combines token (context) features with a per-pixel skip path.
This script trains both variants briefly and shows that the pure
token-bottleneck decoder collapses to near-zero output amplitude (it
cannot carry per-pixel IQ texture through d_model dims per patch), while
the skip variant reconstructs the image.

Usage:
    python examples/ablation_pixel_skip.py [--epochs N] [--frames N]
"""

import argparse
from dataclasses import replace

import numpy as np

import repro.models.tiny_vbf as tiny_vbf_module
from repro.models.tiny_vbf import build_tiny_vbf, small_config
from repro.nn import Adam, CyclicPolynomialDecay, Trainer
from repro.training.groundtruth import model_arrays, prepare_frame
from repro.training.pipeline import assemble_arrays
from repro.ultrasound.datasets import training_frames


def train_variant(use_skip: bool, x, y, epochs: int) -> dict:
    config = replace(small_config(seed=0), use_pixel_skip=use_skip)
    model = build_tiny_vbf(config)
    schedule = CyclicPolynomialDecay(5e-4, 1e-6,
                                     decay_steps=epochs * len(x) // 2)
    trainer = Trainer(model, Adam(model.parameters(), schedule), seed=0)
    history = trainer.fit(x, y, epochs=epochs, batch_size=2)
    prediction = model.forward(x[:1])
    target = y[:1]
    pred_env = np.hypot(prediction[..., 0], prediction[..., 1])
    target_env = np.hypot(target[..., 0], target[..., 1])
    return {
        "final_loss": history.final_loss,
        "amplitude_ratio": pred_env.mean() / target_env.mean(),
        "envelope_correlation": np.corrcoef(
            pred_env.ravel(), target_env.ravel()
        )[0, 1],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--frames", type=int, default=8)
    args = parser.parse_args()

    print(f"Preparing {args.frames} training frames "
          "(simulation + MVDR ground truth)...")
    frames = training_frames(args.frames, seed=0)
    pairs = [prepare_frame(frame) for frame in frames]
    x, y = assemble_arrays("tiny_vbf", pairs)

    print(f"Training both variants for {args.epochs} epochs each...")
    rows = {
        "with pixel skip": train_variant(True, x, y, args.epochs),
        "token bottleneck only": train_variant(False, x, y, args.epochs),
    }
    print(f"\n{'variant':24s} {'loss':>10s} {'amp ratio':>10s} "
          f"{'env corr':>9s}")
    for name, row in rows.items():
        print(
            f"{name:24s} {row['final_loss']:10.3e} "
            f"{row['amplitude_ratio']:10.3f} "
            f"{row['envelope_correlation']:9.3f}"
        )
    print("\nAn amplitude ratio near 0 means the decoder collapsed to "
          "predicting ~zero everywhere (MSE-optimal when the bottleneck "
          "cannot carry the texture).")


if __name__ == "__main__":
    main()
