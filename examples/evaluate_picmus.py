"""Regenerate the paper's Tables I and II on the PICMUS-style presets.

Evaluates DAS, MVDR, Tiny-CNN and Tiny-VBF on all four datasets
(in-silico/in-vitro x contrast/resolution) and prints the paper's
reference values next to the measured ones.

Usage:
    python examples/evaluate_picmus.py
"""

from repro.eval import (
    PAPER_TABLE_I,
    PAPER_TABLE_II,
    format_contrast_table,
    format_resolution_table,
    load_eval_models,
    run_contrast_experiment,
    run_resolution_experiment,
)
from repro.ultrasound import (
    phantom_contrast,
    phantom_resolution,
    simulation_contrast,
    simulation_resolution,
)


def main() -> None:
    print("Loading trained models from the cache "
          "(training them on first use)...")
    models = load_eval_models(("tiny_vbf", "tiny_cnn"))

    for split, contrast_ds, resolution_ds in (
        ("simulation", simulation_contrast(), simulation_resolution()),
        ("phantom", phantom_contrast(), phantom_resolution()),
    ):
        contrast = run_contrast_experiment(contrast_ds, models=models)
        print()
        print(format_contrast_table(
            contrast, PAPER_TABLE_I[split],
            title=f"Table I [{split}]  (measured | paper)",
        ))
        resolution = run_resolution_experiment(resolution_ds, models=models)
        print()
        print(format_resolution_table(
            resolution, PAPER_TABLE_II[split],
            title=f"Table II [{split}]  (measured | paper)",
        ))


if __name__ == "__main__":
    main()
