"""Gateway round trip: serve beamforming over TCP, stream frames, read stats.

Spins up a :class:`~repro.gateway.GatewayServer` on an ephemeral
loopback port (fronting a micro-batched DAS
:class:`~repro.serve.ServeEngine`), streams a handful of phantom frames
from a :class:`~repro.serve.ReplaySource` through two concurrent
:class:`~repro.gateway.GatewayClient` sessions, verifies the returned
IQ images are bitwise identical to offline ``beamform``, and prints
the gateway's telemetry snapshot.

It then opens a third, *observer* session (``connect(None)`` — no
geometry, exempt from the session cap) and scrapes the ``metrics``
verb the way ``python -m repro.obs metrics`` would: the Prometheus
payload is validated with :func:`repro.obs.validate_exposition`
(parses, no NaN samples, every expected family present) and one
completed frame trace is rendered.  CI runs this example in the
gateway job, so a broken exposition fails the build.

This is the in-process miniature of the real deployment shape — the
server side is exactly what ``python -m repro.gateway --port 7355``
runs, and the client side works unchanged against a remote host.

Usage:
    PYTHONPATH=src python examples/gateway_client.py [n_frames]
"""

import json
import sys
import threading

import numpy as np

from repro.api import create_beamformer
from repro.gateway import GatewayClient, GatewayServer
from repro.gateway.protocol import dataset_geometry
from repro.obs import Observability, render_trace, validate_exposition
from repro.serve import ReplaySource, ServeEngine
from repro.ultrasound import simulation_contrast, stream_gain_drift

#: Metric families the live scrape must expose — the serving-path and
#: gateway-path registrations plus the tracer's lifecycle counter.
#: (``repro_kernel_seconds`` is absent here: kernel profiling is a
#: separate opt-in, exercised by ``--profile-kernels``.)
EXPECTED_FAMILIES = (
    "repro_serve_frames_total",
    "repro_serve_stage_seconds",
    "repro_serve_batch_size",
    "repro_serve_queue_depth",
    "repro_gateway_sessions_total",
    "repro_gateway_frames_total",
    "repro_gateway_results_total",
    "repro_traces_total",
)


def run_session(port: int, dataset, frames, results, index) -> None:
    """One client session: connect, stream, collect images."""
    with GatewayClient("127.0.0.1", port) as client:
        client.connect(dataset_geometry(dataset))
        results[index] = list(
            client.stream(frame.rf for frame in frames)
        )


def main(n_frames: int = 8) -> None:
    print("Simulating the in-silico contrast preset...")
    dataset = simulation_contrast()
    frames = list(
        ReplaySource(list(stream_gain_drift(dataset, n_frames, seed=7)))
    )
    das = create_beamformer("das")

    print("Starting a DAS gateway on an ephemeral port...")
    engine = ServeEngine(
        das,
        max_batch=4,
        max_latency_ms=10.0,
        keep_images=False,  # the gateway retains nothing per frame
        log_every_s=0,
        # Trace every frame so the observer scrape below has complete
        # span trees to show; production defaults to sampling off.
        observability=Observability.create(sample_rate=1.0),
    )
    with GatewayServer(engine, port=0, max_sessions=4) as gateway:
        print(f"  listening on 127.0.0.1:{gateway.port}")
        shares = [frames[0::2], frames[1::2]]
        results = [None, None]
        sessions = [
            threading.Thread(
                target=run_session,
                args=(gateway.port, dataset, shares[i], results, i),
            )
            for i in range(2)
        ]
        for thread in sessions:
            thread.start()
        for thread in sessions:
            thread.join()

        print(
            f"  streamed {sum(len(r) for r in results)} frames over "
            f"{len(sessions)} concurrent sessions"
        )
        for share, images in zip(shares, results):
            for frame, image in zip(share, images):
                assert np.array_equal(image, das.beamform(frame)), (
                    "gateway image diverged from offline beamform"
                )
        print("  bitwise parity with offline beamform: OK")

        print("Scraping metrics over an observer session...")
        with GatewayClient("127.0.0.1", gateway.port) as observer:
            observer.connect(None)  # observer: no geometry, no frames
            scrape = observer.metrics()
            traces = observer.traces(n=4)
        validate_exposition(
            scrape["prometheus"], required=EXPECTED_FAMILIES
        )
        print(
            f"  Prometheus exposition OK: "
            f"{len(scrape['prometheus'])} bytes, "
            f"{len(scrape['json'])} metric families, no NaN samples"
        )
        assert traces, "tracing at sample_rate=1.0 produced no traces"
        print("  one completed frame trace:")
        for line in render_trace(traces[-1]).splitlines():
            print(f"    {line}")

        stats = gateway.stats()

    engine_stats = stats["engine"]
    summary = {
        "frames_done": engine_stats["frames_done"],
        "throughput_frames_per_s": engine_stats[
            "throughput_frames_per_s"
        ],
        "total_p95_ms": engine_stats["stages"]["total"].get("p95_ms"),
        "plan_cache_hit_rate": engine_stats["plan_cache"]["hit_rate"],
        "gateway": {
            key: stats["gateway"][key]
            for key in (
                "sessions_opened",
                "frames_admitted",
                "results_delivered",
                "frames_rejected",
            )
        },
    }
    print("Telemetry snapshot:")
    print(json.dumps(summary, indent=2))
    print("Done.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
