"""Render B-mode images of every beamformer on every dataset preset.

Writes the images behind the paper's Figs. 9-11, 13 (PGM files) plus the
lateral-variation CSVs behind Figs. 9b, 12 and 14.

Usage:
    python examples/compare_beamformers.py [output_dir]
"""

import sys
from pathlib import Path

from repro.eval import (
    eval_beamformers,
    export_bmode_images,
    export_lateral_profiles,
    load_eval_models,
)
from repro.ultrasound import (
    phantom_contrast,
    phantom_resolution,
    simulation_contrast,
    simulation_resolution,
)

METHODS = ("das", "mvdr", "tiny_cnn", "tiny_vbf")


def main(output_dir: Path) -> None:
    beamformers = eval_beamformers(
        METHODS, load_eval_models(("tiny_vbf", "tiny_cnn"))
    )
    datasets = [
        simulation_contrast(),
        phantom_contrast(),
        simulation_resolution(),
        phantom_resolution(),
    ]
    for dataset in datasets:
        iq = {
            method: beamformers[method].beamform(dataset)
            for method in METHODS
        }
        paths = export_bmode_images(iq, dataset, output_dir)
        print(f"{dataset.name}: wrote {len(paths)} B-mode images")

        if dataset.spec.kind == "contrast":
            depth = dataset.spec.cyst_centers_m[-1][1]
        else:
            depth = dataset.points[0][1]
        csv_path = export_lateral_profiles(
            iq, dataset, depth,
            output_dir / f"{dataset.name}_lateral_{depth*1e3:.0f}mm.csv",
        )
        print(f"{dataset.name}: lateral profiles -> {csv_path}")


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("artifacts/figures")
    main(target)
