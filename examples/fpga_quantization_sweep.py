"""Sweep Tiny-VBF through every quantization scheme on the simulated FPGA.

Reproduces the paper's Section IV-A story: image quality under
quantization (Tables IV/V), resource utilization (Table VI) and the
accelerator's cycle schedule at 100 MHz.

Usage:
    python examples/fpga_quantization_sweep.py
"""

from repro.eval import run_quantized_experiments
from repro.fpga import TinyVbfAccelerator, estimate_resources
from repro.fpga.resources import reduction_vs_float, utilization_table
from repro.quant.schemes import SCHEMES
from repro.training import get_trained_model
from repro.ultrasound import simulation_contrast, simulation_resolution


def main() -> None:
    print("Loading trained Tiny-VBF...")
    model = get_trained_model("tiny_vbf")

    print("\n--- accelerator schedule (float) ---")
    report = TinyVbfAccelerator(model, SCHEMES["float"]).report()
    print(report.schedule.table())
    print(report.bram.report())

    print("\n--- resource utilization (Table VI model) ---")
    estimates = [estimate_resources(SCHEMES[name]) for name in SCHEMES]
    print(utilization_table(estimates))
    hybrid2 = estimate_resources(SCHEMES["hybrid-2"])
    reductions = reduction_vs_float(hybrid2)
    print("\nHybrid-2 reduction vs float (Fig. 1b):")
    for resource, percent in reductions.items():
        print(f"  {resource:8s} {percent:6.1f} %")

    print("\n--- image quality per scheme (Tables IV/V) ---")
    results = run_quantized_experiments(
        simulation_contrast(), simulation_resolution(), model=model
    )
    print(f"{'scheme':10s} {'CR[dB]':>8s} {'CNR':>6s} {'GCNR':>6s} "
          f"{'axial[mm]':>10s} {'lateral[mm]':>12s}")
    for name, row in results.items():
        contrast, resolution = row["contrast"], row["resolution"]
        print(
            f"{name:10s} {contrast.cr_db:8.2f} {contrast.cnr:6.2f} "
            f"{contrast.gcnr:6.2f} {resolution.axial_mm:10.3f} "
            f"{resolution.lateral_mm:12.3f}"
        )


if __name__ == "__main__":
    main()
