"""Repo-level pytest configuration.

Two things live here because they must be shared by *both* test trees
(``tests/`` and ``benchmarks/``):

* the ``--update-golden`` flag consumed by ``tests/golden`` (must be
  registered in an initial conftest, which only the rootdir one is
  guaranteed to be),
* the shared ``rng`` fixture — the single way test code obtains a
  :class:`numpy.random.Generator`.  It is seeded from the requesting
  test's node id, so every test gets an independent stream that is
  byte-stable across reruns and under ``pytest -p no:randomly`` /
  randomized orderings alike,
* the ``slow`` marker and its ``--runslow`` gate — soak-class tests
  (minutes of wall clock; the sharded-serve 5k-frame soak) are skipped
  from the tier-1 run and exercised by the nightly CI workflow,
* the autouse ``leak_guard`` — every test runs inside a
  :class:`repro.analysis.sanitize.LeakGuard`, so a test that forgets
  to ``close()`` an engine (leaking its pump thread), drops a shard
  worker process, or skips an shm ``unlink`` (leaking descriptors)
  fails with a named leak instead of poisoning later tests.
"""

import sys
import zlib
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent / "src"))

from repro.analysis.sanitize import LeakGuard  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the frozen byte-level fixtures under "
        "tests/golden/data/ instead of comparing against them",
    )
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (nightly soak tests)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: soak-class test, skipped unless --runslow is given "
        "(run nightly in CI)",
    )
    config.addinivalue_line(
        "markers",
        "no_leak_check: opt this test out of the autouse leak guard "
        "(for tests that intentionally leave resources behind)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Deterministic per-test RNG (seeded from the test's node id)."""
    seed = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng(seed)


@pytest.fixture(autouse=True)
def leak_guard(request):
    """Fail any test that leaks threads, child processes or fds.

    Tolerant by design (daemon helpers and stdlib feeder threads are
    whitelisted, descriptor growth has slack for import-time caching);
    the sanitizer's own unit tests exercise the strict settings.  Tests
    that *intentionally* leave resources behind can opt out with
    ``@pytest.mark.no_leak_check``.
    """
    if request.node.get_closest_marker("no_leak_check"):
        yield
        return
    with LeakGuard(grace_s=5.0, fd_tolerance=16) as guard:
        yield
    report = guard.check()
    if not report.ok:
        pytest.fail(
            f"resource leak detected by repro.analysis.sanitize:\n"
            f"{report.describe()}",
            pytrace=False,
        )
