"""Repo-level pytest configuration.

Two things live here because they must be shared by *both* test trees
(``tests/`` and ``benchmarks/``):

* the ``--update-golden`` flag consumed by ``tests/golden`` (must be
  registered in an initial conftest, which only the rootdir one is
  guaranteed to be),
* the shared ``rng`` fixture — the single way test code obtains a
  :class:`numpy.random.Generator`.  It is seeded from the requesting
  test's node id, so every test gets an independent stream that is
  byte-stable across reruns and under ``pytest -p no:randomly`` /
  randomized orderings alike.
"""

import zlib

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the frozen byte-level fixtures under "
        "tests/golden/data/ instead of comparing against them",
    )


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Deterministic per-test RNG (seeded from the test's node id)."""
    seed = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng(seed)
