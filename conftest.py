"""Repo-level pytest configuration.

Two things live here because they must be shared by *both* test trees
(``tests/`` and ``benchmarks/``):

* the ``--update-golden`` flag consumed by ``tests/golden`` (must be
  registered in an initial conftest, which only the rootdir one is
  guaranteed to be),
* the shared ``rng`` fixture — the single way test code obtains a
  :class:`numpy.random.Generator`.  It is seeded from the requesting
  test's node id, so every test gets an independent stream that is
  byte-stable across reruns and under ``pytest -p no:randomly`` /
  randomized orderings alike,
* the ``slow`` marker and its ``--runslow`` gate — soak-class tests
  (minutes of wall clock; the sharded-serve 5k-frame soak) are skipped
  from the tier-1 run and exercised by the nightly CI workflow.
"""

import zlib

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the frozen byte-level fixtures under "
        "tests/golden/data/ instead of comparing against them",
    )
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (nightly soak tests)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: soak-class test, skipped unless --runslow is given "
        "(run nightly in CI)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Deterministic per-test RNG (seeded from the test's node id)."""
    seed = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng(seed)
