"""Beamforming substrate: ToF correction, DAS, MVDR, envelope, B-mode.

This package implements the classical reconstruction chain the paper
builds on:

* time-of-flight correction of plane-wave channel data onto a pixel grid
  (producing the ToFC cube that is the input of every beamformer and of
  the learned models),
* Delay-and-Sum (DAS) with f-number controlled apodization,
* Minimum Variance Distortionless Response (MVDR) with subaperture
  smoothing and diagonal loading — the paper's training ground truth,
* coherent plane-wave compounding (multi-angle reference),
* analytic-signal / IQ demodulation, envelope detection, log compression.
"""

from repro.beamform.geometry import ImagingGrid
from repro.beamform.tof import (
    TofPlan,
    analytic_rf,
    analytic_tofc,
    clear_tof_plan_cache,
    get_tof_plan,
    set_tof_plan_cache_size,
    tof_correct,
    tof_plan_cache_stats,
)
from repro.beamform.apodization import (
    boxcar_rx_apodization,
    hann_rx_apodization,
)
from repro.beamform.das import das_beamform
from repro.beamform.mvdr import MvdrConfig, mvdr_beamform
from repro.beamform.compounding import compound_das
from repro.beamform.envelope import (
    baseband_demodulate,
    envelope_detect,
    log_compress,
)
from repro.beamform.bmode import beamform_dataset, bmode_image

__all__ = [
    "ImagingGrid",
    "TofPlan",
    "get_tof_plan",
    "tof_plan_cache_stats",
    "clear_tof_plan_cache",
    "set_tof_plan_cache_size",
    "tof_correct",
    "analytic_rf",
    "analytic_tofc",
    "boxcar_rx_apodization",
    "hann_rx_apodization",
    "das_beamform",
    "MvdrConfig",
    "mvdr_beamform",
    "compound_das",
    "baseband_demodulate",
    "envelope_detect",
    "log_compress",
    "beamform_dataset",
    "bmode_image",
]
