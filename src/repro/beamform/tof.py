"""Time-of-flight correction: channel RF -> per-pixel ToFC data cube.

The ToFC cube ``(nz, nx, n_elements)`` holds, for every pixel, the sample
each element received from that pixel's round-trip time.  It is the common
input of DAS, MVDR and all three learned beamformers (the paper feeds
"time-of-flight corrected raw RF channel data" to Tiny-VBF, Section III-A).

Delays use the same plane-wave convention as the simulator
(:mod:`repro.ultrasound.wavefield`): the transmitted wavefront crosses the
array center at t = 0.

Two entry points exist:

* :func:`tof_correct` / :func:`analytic_tofc` — one-shot correction that
  recomputes the per-pixel delay geometry on every call,
* :class:`TofPlan` via :func:`get_tof_plan` — the delay/interpolation
  tables precomputed once and LRU-cached by (probe, grid, angle, sound
  speed, record geometry), so repeated frames on the same geometry pay
  only the gather/interpolate cost.  ``TofPlan.apply`` is bit-for-bit
  identical to :func:`tof_correct` (see DESIGN.md for the cache
  contract).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
from scipy.signal import hilbert

from repro.backend import get_backend
from repro.beamform.geometry import ImagingGrid
from repro.ultrasound.probe import LinearProbe
from repro.ultrasound.wavefield import plane_wave_tx_delay, rx_delay


def analytic_rf(rf: np.ndarray) -> np.ndarray:
    """Analytic (complex) signal of each RF channel via the Hilbert transform.

    Beamforming the analytic signal makes every downstream image complex
    IQ data, from which the envelope is just the magnitude.
    """
    rf = np.asarray(rf)
    if rf.ndim != 2:
        raise ValueError(f"rf must be (n_samples, n_elements), got {rf.shape}")
    return hilbert(np.real(rf), axis=0)


@dataclass(frozen=True, eq=False)
class TofPlan:
    """Precomputed per-pixel delay/interpolation tables for one geometry.

    A plan freezes everything about ToF correction that does not depend
    on the RF sample values: the floor sample index, the linear
    interpolation fraction and the in-record validity mask for every
    (pixel, element) pair.  Applying the plan to a frame is then a pure
    gather + lerp, which is the hot path for repeated frames on the same
    acquisition geometry.

    Attributes:
        probe: array geometry/sampling the plan was built for.
        grid: target pixel grid.
        angle_rad: plane-wave steering angle of the transmit event.
        sound_speed_m_s: assumed propagation speed.
        t_start_s: receive time of the first RF sample.
        n_samples: RF record length the validity mask was computed for.
        idx0: ``(P, E)`` floor sample index, clipped into the record.
        frac: ``(P, E)`` linear interpolation fraction.
        valid: ``(P, E)`` mask of delays falling inside the record.
    """

    probe: LinearProbe
    grid: ImagingGrid
    angle_rad: float
    sound_speed_m_s: float
    t_start_s: float
    n_samples: int
    idx0: np.ndarray = field(repr=False)
    frac: np.ndarray = field(repr=False)
    valid: np.ndarray = field(repr=False)

    @classmethod
    def build(
        cls,
        probe: LinearProbe,
        grid: ImagingGrid,
        n_samples: int,
        angle_rad: float = 0.0,
        sound_speed_m_s: float = 1540.0,
        t_start_s: float = 0.0,
    ) -> "TofPlan":
        """Compute the delay tables for one acquisition geometry."""
        if n_samples < 2:
            raise ValueError(f"n_samples must be >= 2, got {n_samples}")
        fs = probe.sampling_frequency_hz

        xx, zz = grid.meshgrid()  # (nz, nx)
        flat_x = xx.ravel()
        flat_z = zz.ravel()

        tau_tx = plane_wave_tx_delay(
            flat_x, flat_z, angle_rad, sound_speed_m_s
        )  # (P,)
        tau_rx = rx_delay(
            flat_x, flat_z, probe.element_positions_m, sound_speed_m_s
        )  # (P, E)
        delay_samples = (tau_tx[:, np.newaxis] + tau_rx - t_start_s) * fs

        idx0 = np.floor(delay_samples).astype(np.int64)
        frac = delay_samples - idx0
        valid = (idx0 >= 0) & (idx0 < n_samples - 1)
        # Clipped indices fit int32 (bounded by the record length); this
        # trims ~24% off the plan (frac stays float64, the other
        # equally-sized table).
        idx0_safe = np.clip(idx0, 0, n_samples - 2).astype(np.int32)

        return cls(
            probe=probe,
            grid=grid,
            angle_rad=float(angle_rad),
            sound_speed_m_s=float(sound_speed_m_s),
            t_start_s=float(t_start_s),
            n_samples=int(n_samples),
            idx0=idx0_safe,
            frac=frac,
            valid=valid,
        )

    @property
    def nbytes(self) -> int:
        """Memory footprint of the precomputed tables."""
        return self.idx0.nbytes + self.frac.nbytes + self.valid.nbytes

    def apply(self, rf: np.ndarray) -> np.ndarray:
        """Delay one frame of channel data onto the pixel grid.

        Args:
            rf: ``(n_samples, n_elements)`` real or complex channel data
                matching the geometry the plan was built for.

        Returns:
            ``(nz, nx, n_elements)`` ToFC cube, numerically identical to
            :func:`tof_correct` on the same inputs.  The gather/
            interpolation kernel dispatches through the active
            :mod:`repro.backend` (the ``numpy`` reference is bit-for-bit
            the historical implementation).
        """
        rf = np.asarray(rf)
        if rf.ndim != 2 or rf.shape[1] != self.probe.n_elements:
            raise ValueError(
                f"rf must be (n_samples, {self.probe.n_elements}), "
                f"got {rf.shape}"
            )
        if rf.shape[0] != self.n_samples:
            raise ValueError(
                f"plan was built for {self.n_samples} samples, "
                f"got {rf.shape[0]} — rebuild via get_tof_plan"
            )
        return get_backend().apply_plan(self, rf)

    def apply_analytic(self, rf: np.ndarray) -> np.ndarray:
        """ToF-correct the analytic signal of ``rf`` (complex cube)."""
        return self.apply(analytic_rf(rf))


# --------------------------------------------------------------------------
# Plan cache
# --------------------------------------------------------------------------

_DEFAULT_CACHE_SIZE = 8
_plan_cache: "OrderedDict[tuple, TofPlan]" = OrderedDict()
_plan_cache_max = _DEFAULT_CACHE_SIZE
_plan_cache_hits = 0
_plan_cache_misses = 0
# Guards the OrderedDict *and* the hit/miss counters: the serve worker
# pool calls get_tof_plan concurrently, and an unlocked OrderedDict
# corrupts under concurrent move_to_end/popitem.
_plan_cache_lock = threading.RLock()


def plan_cache_key(
    probe: LinearProbe,
    grid: ImagingGrid,
    angle_rad: float,
    sound_speed_m_s: float,
    t_start_s: float,
    n_samples: int,
) -> tuple:
    """The hashable acquisition-geometry identity the plan cache keys on.

    Public so callers that need to compare geometries (e.g. batch
    stacking in ``repro.api``) share one definition with the cache.
    """
    return (
        probe,
        grid.x_m.tobytes(),
        grid.z_m.tobytes(),
        float(angle_rad),
        float(sound_speed_m_s),
        float(t_start_s),
        int(n_samples),
    )


def get_tof_plan(
    probe: LinearProbe,
    grid: ImagingGrid,
    n_samples: int,
    angle_rad: float = 0.0,
    sound_speed_m_s: float = 1540.0,
    t_start_s: float = 0.0,
) -> TofPlan:
    """Fetch (or build and cache) the :class:`TofPlan` for a geometry.

    Plans are kept in a process-wide LRU cache keyed by every input that
    affects the delay tables.  Hitting the cache skips the per-pixel
    delay computation entirely, which is what makes batch beamforming of
    repeated frames on one geometry fast (see ``repro.api``).

    Thread-safe: lookups and insertions are serialized, but plan *builds*
    run outside the lock so workers building different geometries never
    block each other.  Two threads missing on the same geometry at once
    may both build it (benign: identical plans, last insert wins).
    """
    global _plan_cache_hits, _plan_cache_misses
    key = plan_cache_key(
        probe, grid, angle_rad, sound_speed_m_s, t_start_s, n_samples
    )
    with _plan_cache_lock:
        plan = _plan_cache.get(key)
        if plan is not None:
            _plan_cache.move_to_end(key)
            _plan_cache_hits += 1
            return plan
        _plan_cache_misses += 1
    plan = TofPlan.build(
        probe,
        grid,
        n_samples,
        angle_rad=angle_rad,
        sound_speed_m_s=sound_speed_m_s,
        t_start_s=t_start_s,
    )
    with _plan_cache_lock:
        _plan_cache[key] = plan
        _plan_cache.move_to_end(key)
        while len(_plan_cache) > _plan_cache_max:
            _plan_cache.popitem(last=False)
    return plan


def tof_plan_cache_stats() -> dict:
    """Cache observability: hits/misses/entries/bytes since last clear."""
    with _plan_cache_lock:
        return {
            "hits": _plan_cache_hits,
            "misses": _plan_cache_misses,
            "size": len(_plan_cache),
            "max_size": _plan_cache_max,
            "nbytes": sum(plan.nbytes for plan in _plan_cache.values()),
        }


def clear_tof_plan_cache() -> None:
    """Drop every cached plan and reset the hit/miss counters."""
    global _plan_cache_hits, _plan_cache_misses
    with _plan_cache_lock:
        _plan_cache.clear()
        _plan_cache_hits = 0
        _plan_cache_misses = 0


def set_tof_plan_cache_size(max_size: int) -> None:
    """Resize the LRU cache (evicting oldest entries if shrinking)."""
    global _plan_cache_max
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    with _plan_cache_lock:
        _plan_cache_max = max_size
        while len(_plan_cache) > _plan_cache_max:
            _plan_cache.popitem(last=False)


# --------------------------------------------------------------------------
# One-shot correction (no caching)
# --------------------------------------------------------------------------


def tof_correct(
    rf: np.ndarray,
    probe: LinearProbe,
    grid: ImagingGrid,
    angle_rad: float = 0.0,
    sound_speed_m_s: float = 1540.0,
    t_start_s: float = 0.0,
) -> np.ndarray:
    """Delay channel data onto the pixel grid (linear interpolation).

    Args:
        rf: ``(n_samples, n_elements)`` real or complex channel data.
        probe: array geometry/sampling that recorded ``rf``.
        grid: target pixel grid.
        angle_rad: plane-wave steering angle of the transmit event.
        sound_speed_m_s: assumed propagation speed.
        t_start_s: receive time of the first RF sample.

    Returns:
        ``(nz, nx, n_elements)`` ToFC cube with the same dtype class as
        ``rf`` (complex in -> complex out).  Delays falling outside the
        record are zero-filled.
    """
    rf = np.asarray(rf)
    if rf.ndim != 2 or rf.shape[1] != probe.n_elements:
        raise ValueError(
            f"rf must be (n_samples, {probe.n_elements}), got {rf.shape}"
        )
    plan = TofPlan.build(
        probe,
        grid,
        rf.shape[0],
        angle_rad=angle_rad,
        sound_speed_m_s=sound_speed_m_s,
        t_start_s=t_start_s,
    )
    return plan.apply(rf)


def analytic_tofc(
    rf: np.ndarray,
    probe: LinearProbe,
    grid: ImagingGrid,
    angle_rad: float = 0.0,
    sound_speed_m_s: float = 1540.0,
    t_start_s: float = 0.0,
) -> np.ndarray:
    """ToF-correct the analytic signal: complex ToFC cube in one call."""
    return tof_correct(
        analytic_rf(rf),
        probe,
        grid,
        angle_rad=angle_rad,
        sound_speed_m_s=sound_speed_m_s,
        t_start_s=t_start_s,
    )
