"""Time-of-flight correction: channel RF -> per-pixel ToFC data cube.

The ToFC cube ``(nz, nx, n_elements)`` holds, for every pixel, the sample
each element received from that pixel's round-trip time.  It is the common
input of DAS, MVDR and all three learned beamformers (the paper feeds
"time-of-flight corrected raw RF channel data" to Tiny-VBF, Section III-A).

Delays use the same plane-wave convention as the simulator
(:mod:`repro.ultrasound.wavefield`): the transmitted wavefront crosses the
array center at t = 0.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import hilbert

from repro.beamform.geometry import ImagingGrid
from repro.ultrasound.probe import LinearProbe
from repro.ultrasound.wavefield import plane_wave_tx_delay, rx_delay


def analytic_rf(rf: np.ndarray) -> np.ndarray:
    """Analytic (complex) signal of each RF channel via the Hilbert transform.

    Beamforming the analytic signal makes every downstream image complex
    IQ data, from which the envelope is just the magnitude.
    """
    rf = np.asarray(rf)
    if rf.ndim != 2:
        raise ValueError(f"rf must be (n_samples, n_elements), got {rf.shape}")
    return hilbert(np.real(rf), axis=0)


def tof_correct(
    rf: np.ndarray,
    probe: LinearProbe,
    grid: ImagingGrid,
    angle_rad: float = 0.0,
    sound_speed_m_s: float = 1540.0,
    t_start_s: float = 0.0,
) -> np.ndarray:
    """Delay channel data onto the pixel grid (linear interpolation).

    Args:
        rf: ``(n_samples, n_elements)`` real or complex channel data.
        probe: array geometry/sampling that recorded ``rf``.
        grid: target pixel grid.
        angle_rad: plane-wave steering angle of the transmit event.
        sound_speed_m_s: assumed propagation speed.
        t_start_s: receive time of the first RF sample.

    Returns:
        ``(nz, nx, n_elements)`` ToFC cube with the same dtype class as
        ``rf`` (complex in -> complex out).  Delays falling outside the
        record are zero-filled.
    """
    rf = np.asarray(rf)
    if rf.ndim != 2 or rf.shape[1] != probe.n_elements:
        raise ValueError(
            f"rf must be (n_samples, {probe.n_elements}), got {rf.shape}"
        )
    fs = probe.sampling_frequency_hz
    n_samples = rf.shape[0]

    xx, zz = grid.meshgrid()  # (nz, nx)
    flat_x = xx.ravel()
    flat_z = zz.ravel()

    tau_tx = plane_wave_tx_delay(
        flat_x, flat_z, angle_rad, sound_speed_m_s
    )  # (P,)
    tau_rx = rx_delay(
        flat_x, flat_z, probe.element_positions_m, sound_speed_m_s
    )  # (P, E)
    delay_samples = (tau_tx[:, np.newaxis] + tau_rx - t_start_s) * fs

    idx0 = np.floor(delay_samples).astype(np.int64)
    frac = delay_samples - idx0
    valid = (idx0 >= 0) & (idx0 < n_samples - 1)
    idx0_safe = np.clip(idx0, 0, n_samples - 2)

    element_idx = np.broadcast_to(
        np.arange(probe.n_elements), idx0.shape
    )
    lower = rf[idx0_safe, element_idx]
    upper = rf[idx0_safe + 1, element_idx]
    samples = lower + frac * (upper - lower)
    samples = np.where(valid, samples, 0)

    return samples.reshape(grid.nz, grid.nx, probe.n_elements)


def analytic_tofc(
    rf: np.ndarray,
    probe: LinearProbe,
    grid: ImagingGrid,
    angle_rad: float = 0.0,
    sound_speed_m_s: float = 1540.0,
    t_start_s: float = 0.0,
) -> np.ndarray:
    """ToF-correct the analytic signal: complex ToFC cube in one call."""
    return tof_correct(
        analytic_rf(rf),
        probe,
        grid,
        angle_rad=angle_rad,
        sound_speed_m_s=sound_speed_m_s,
        t_start_s=t_start_s,
    )
