"""Coherent plane-wave compounding (Montaldo et al. [3]).

Compounding averages the beamformed IQ images of several steered plane
waves, trading frame rate for image quality.  The paper cites it as the
classical remedy for single-angle quality loss; we use it for the
CUBDL-style multi-angle training targets and as an ablation reference.
"""

from __future__ import annotations

import numpy as np

from repro.beamform.das import das_beamform
from repro.beamform.geometry import ImagingGrid
from repro.beamform.tof import get_tof_plan
from repro.ultrasound.probe import LinearProbe


def compound_das(
    rf_stack: np.ndarray,
    angles_rad: np.ndarray,
    probe: LinearProbe,
    grid: ImagingGrid,
    sound_speed_m_s: float = 1540.0,
    apodization: np.ndarray | None = None,
    t_start_s: float = 0.0,
) -> np.ndarray:
    """Coherently compound DAS images over a set of steering angles.

    Args:
        rf_stack: ``(n_angles, n_samples, n_elements)`` channel data, one
            acquisition per angle.
        angles_rad: ``(n_angles,)`` steering angles matching the stack.
        probe: receiving array.
        grid: target pixel grid.
        sound_speed_m_s: assumed propagation speed.
        apodization: optional receive apodization shared by all angles.
        t_start_s: receive time of the first RF sample (all angles).

    Returns:
        ``(nz, nx)`` complex compounded IQ image (mean over angles).
    """
    rf_stack = np.asarray(rf_stack)
    angles = np.atleast_1d(np.asarray(angles_rad, dtype=float))
    if rf_stack.ndim != 3 or rf_stack.shape[0] != angles.size:
        raise ValueError(
            "rf_stack must be (n_angles, n_samples, n_elements) matching "
            f"angles, got {rf_stack.shape} for {angles.size} angles"
        )
    accumulator = np.zeros(grid.shape, dtype=complex)
    for rf, angle in zip(rf_stack, angles):
        # Per-angle plans come from the LRU cache, so repeated frames on
        # one angle set skip the delay recomputation entirely.
        plan = get_tof_plan(
            probe, grid, rf.shape[0], angle_rad=angle,
            sound_speed_m_s=sound_speed_m_s, t_start_s=t_start_s,
        )
        accumulator += das_beamform(plan.apply_analytic(rf), apodization)
    return accumulator / angles.size
