"""Delay-and-Sum beamformer.

DAS is the paper's low-complexity baseline (Section I): delay the channel
data to each pixel (ToF correction) and sum across the aperture with a
data-independent apodization.  On the complex (analytic) ToFC cube the sum
directly yields the IQ image.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend


def das_beamform(
    tofc: np.ndarray,
    apodization: np.ndarray | None = None,
) -> np.ndarray:
    """Sum the ToFC cube across the aperture.

    Args:
        tofc: ``(nz, nx, n_elements)`` ToF-corrected channel data,
            real RF or complex analytic.
        apodization: optional ``(nz, nx, n_elements)`` weights (e.g. from
            :mod:`repro.beamform.apodization`).  ``None`` means uniform
            weighting (mean over elements).

    Returns:
        ``(nz, nx)`` beamformed image, same dtype class as ``tofc``.
    """
    tofc = np.asarray(tofc)
    if tofc.ndim != 3:
        raise ValueError(
            f"tofc must be (nz, nx, n_elements), got {tofc.shape}"
        )
    if apodization is None:
        return get_backend().das_sum(tofc, None)
    apodization = np.asarray(apodization, dtype=float)
    if apodization.shape != tofc.shape:
        raise ValueError(
            "apodization shape must match tofc, got "
            f"{apodization.shape} vs {tofc.shape}"
        )
    return get_backend().das_sum(tofc, apodization)
