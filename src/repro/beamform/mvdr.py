"""Minimum Variance Distortionless Response (MVDR) beamformer.

MVDR (Capon) computes, per pixel, data-adaptive apodization weights

    w = R^-1 a / (a^H R^-1 a)

where ``R`` is the spatial covariance of the ToF-corrected channel vector
and ``a`` the steering vector (all-ones after ToF correction).  Following
standard medical-ultrasound practice (Synnevag et al. [4]) the covariance
estimate is stabilized three ways:

* **subaperture (spatial) smoothing** — averaged over sliding windows of
  length ``L`` across the aperture,
* **axial (temporal) smoothing** — averaged over a few neighbouring depth
  pixels, which suppresses signal cancellation on speckle,
* **diagonal loading** — ``R + delta * trace(R)/L * I``.

The paper uses MVDR both as the image-quality benchmark and as the
training ground truth for Tiny-VBF.  The per-pixel matrix inversion is the
O(n^3) cost the paper quotes (~98.78 GOPs/frame at 368x128 with 128
channels); this implementation batches each image column through LAPACK.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import get_backend


@dataclass(frozen=True)
class MvdrConfig:
    """MVDR estimator parameters.

    Attributes:
        subaperture: spatial-smoothing window length ``L``; ``None``
            selects ``n_elements // 2`` (the common choice).
        diagonal_loading: loading factor ``delta`` relative to the average
            eigenvalue (``trace(R)/L``).
        axial_smoothing: half-width (in depth pixels) of the axial
            covariance averaging window; 0 disables it.
    """

    subaperture: int | None = None
    diagonal_loading: float = 5e-2
    axial_smoothing: int = 2

    def __post_init__(self) -> None:
        if self.subaperture is not None and self.subaperture < 2:
            raise ValueError(
                f"subaperture must be >= 2, got {self.subaperture}"
            )
        if self.diagonal_loading <= 0:
            raise ValueError(
                "diagonal_loading must be > 0, got "
                f"{self.diagonal_loading}"
            )
        if self.axial_smoothing < 0:
            raise ValueError(
                "axial_smoothing must be >= 0, got "
                f"{self.axial_smoothing}"
            )

    def effective_subaperture(self, n_elements: int) -> int:
        sub = self.subaperture
        if sub is None:
            sub = max(2, n_elements // 2)
        if sub > n_elements:
            raise ValueError(
                f"subaperture {sub} exceeds element count {n_elements}"
            )
        return sub


def _smooth_axially(cov: np.ndarray, half_width: int) -> np.ndarray:
    """Average ``(nz, L, L)`` covariances over a sliding depth window."""
    if half_width == 0:
        return cov
    nz = cov.shape[0]
    cumulative = np.cumsum(cov, axis=0)
    smoothed = np.empty_like(cov)
    for z in range(nz):
        lo = max(0, z - half_width)
        hi = min(nz - 1, z + half_width)
        total = cumulative[hi] - (cumulative[lo - 1] if lo > 0 else 0)
        smoothed[z] = total / (hi - lo + 1)
    return smoothed


def mvdr_beamform(
    tofc: np.ndarray,
    config: MvdrConfig | None = None,
) -> np.ndarray:
    """MVDR-beamform a (complex) ToFC cube.

    Args:
        tofc: ``(nz, nx, n_elements)`` ToF-corrected channel data.  Complex
            analytic data is strongly recommended (covariance phase
            matters); real input is accepted and processed identically.
        config: estimator parameters; defaults to :class:`MvdrConfig`.

    Returns:
        ``(nz, nx)`` beamformed IQ image.
    """
    tofc = np.asarray(tofc)
    if tofc.ndim != 3:
        raise ValueError(
            f"tofc must be (nz, nx, n_elements), got {tofc.shape}"
        )
    config = config or MvdrConfig()
    nz, nx, n_elements = tofc.shape
    sub = config.effective_subaperture(n_elements)
    identity = np.eye(sub)
    steering = np.ones((nz, sub, 1), dtype=complex)

    backend = get_backend()
    out = np.zeros((nz, nx), dtype=complex)
    for col in range(nx):
        column = tofc[:, col, :]  # (nz, E)
        windows = backend.prepare_mvdr_windows(
            np.lib.stride_tricks.sliding_window_view(column, sub, axis=1)
        )  # (nz, n_windows, sub)
        cov = backend.mvdr_covariance(windows)
        cov = _smooth_axially(cov, config.axial_smoothing)
        trace = np.trace(cov, axis1=1, axis2=2).real
        loading = config.diagonal_loading * np.maximum(trace, 1e-30) / sub
        cov = cov + loading[:, np.newaxis, np.newaxis] * identity

        # R^-1 a: (nz, sub).  The batched Hermitian solve stays on the
        # LAPACK reference path on purpose: conditioning of the loaded
        # covariance is part of MVDR's numerics contract, and no
        # registered backend provides a certified batched solve.
        solved = np.linalg.solve(cov, steering)[..., 0]  # repro: noqa[RA001] -- LAPACK reference solve by design; no backend offers a certified batched Hermitian solve
        weights = solved / solved.sum(axis=1, keepdims=True)
        # Distortionless output, averaged across subaperture windows.
        out[:, col] = backend.mvdr_output(weights, windows)
    return out


def mvdr_apodization_gops(
    nz: int, nx: int, n_elements: int, subaperture: int | None = None
) -> float:
    """Analytic GOPs/frame of MVDR (the paper quotes ~98.78 at 368x128x128).

    Counts real operations: covariance accumulation, the O(L^3) solve and
    the weighted sum, per pixel.  A complex multiply-add is 8 real ops.
    """
    sub = subaperture if subaperture is not None else max(2, n_elements // 2)
    n_windows = n_elements - sub + 1
    pixels = nz * nx
    cov_ops = 8.0 * n_windows * sub * sub
    solve_ops = (8.0 / 3.0) * sub**3
    apply_ops = 8.0 * (n_windows + 1) * sub
    return pixels * (cov_ops + solve_ops + apply_ops) / 1e9
