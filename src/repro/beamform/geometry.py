"""Imaging grid: the pixel lattice reconstruction is evaluated on."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ImagingGrid:
    """Rectangular pixel grid in the (x, z) imaging plane.

    Attributes:
        x_m: ``(nx,)`` lateral pixel coordinates (monotonically increasing).
        z_m: ``(nz,)`` depth pixel coordinates (monotonically increasing,
            all positive — the array sits at z = 0).
    """

    x_m: np.ndarray
    z_m: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x_m, dtype=float)
        z = np.asarray(self.z_m, dtype=float)
        if x.ndim != 1 or x.size < 2:
            raise ValueError(f"x_m must be 1-D with >= 2 points, got {x.shape}")
        if z.ndim != 1 or z.size < 2:
            raise ValueError(f"z_m must be 1-D with >= 2 points, got {z.shape}")
        if np.any(np.diff(x) <= 0) or np.any(np.diff(z) <= 0):
            raise ValueError("grid coordinates must be strictly increasing")
        if z[0] <= 0:
            raise ValueError(f"depths must be positive, got z[0]={z[0]}")
        object.__setattr__(self, "x_m", x)
        object.__setattr__(self, "z_m", z)

    @classmethod
    def from_spans(
        cls,
        x_span_m: tuple[float, float],
        z_span_m: tuple[float, float],
        nx: int,
        nz: int,
    ) -> "ImagingGrid":
        """Build a uniform grid covering the given spans."""
        if nx < 2 or nz < 2:
            raise ValueError(f"nx and nz must be >= 2, got nx={nx}, nz={nz}")
        check_positive("x span", x_span_m[1] - x_span_m[0])
        check_positive("z span", z_span_m[1] - z_span_m[0])
        return cls(
            x_m=np.linspace(x_span_m[0], x_span_m[1], nx),
            z_m=np.linspace(z_span_m[0], z_span_m[1], nz),
        )

    @property
    def nx(self) -> int:
        return self.x_m.size

    @property
    def nz(self) -> int:
        return self.z_m.size

    @property
    def shape(self) -> tuple[int, int]:
        """Image shape as (nz, nx) — depth-major, matching all image arrays."""
        return (self.nz, self.nx)

    @property
    def dx_m(self) -> float:
        """Mean lateral pixel spacing."""
        return float(np.mean(np.diff(self.x_m)))

    @property
    def dz_m(self) -> float:
        """Mean axial pixel spacing."""
        return float(np.mean(np.diff(self.z_m)))

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X, Z)`` pixel coordinate arrays of shape (nz, nx)."""
        return np.meshgrid(self.x_m, self.z_m)

    def nearest_pixel(self, x_m: float, z_m: float) -> tuple[int, int]:
        """Indices (iz, ix) of the pixel closest to a physical point."""
        ix = int(np.argmin(np.abs(self.x_m - x_m)))
        iz = int(np.argmin(np.abs(self.z_m - z_m)))
        return iz, ix

    def region_mask(
        self,
        center_m: tuple[float, float],
        radius_m: float,
    ) -> np.ndarray:
        """Boolean (nz, nx) mask of pixels inside a disk."""
        check_positive("radius_m", radius_m)
        xx, zz = self.meshgrid()
        return (
            (xx - center_m[0]) ** 2 + (zz - center_m[1]) ** 2
        ) <= radius_m**2

    def annulus_mask(
        self,
        center_m: tuple[float, float],
        inner_radius_m: float,
        outer_radius_m: float,
    ) -> np.ndarray:
        """Boolean (nz, nx) mask of pixels inside an annulus."""
        if not 0 < inner_radius_m < outer_radius_m:
            raise ValueError(
                "need 0 < inner_radius_m < outer_radius_m, got "
                f"{inner_radius_m}, {outer_radius_m}"
            )
        xx, zz = self.meshgrid()
        r2 = (xx - center_m[0]) ** 2 + (zz - center_m[1]) ** 2
        return (r2 >= inner_radius_m**2) & (r2 <= outer_radius_m**2)
