"""End-to-end B-mode reconstruction helpers.

These helpers tie the chain together: RF -> analytic ToFC -> beamformer ->
envelope -> log compression.  They accept any dataset-like object exposing
``rf``, ``probe``, ``grid``, ``angle_rad`` and ``sound_speed_m_s``
(duck-typed so this module does not depend on the dataset package).
"""

from __future__ import annotations

import numpy as np

from repro.beamform.apodization import boxcar_rx_apodization
from repro.beamform.das import das_beamform
from repro.beamform.envelope import envelope_detect, log_compress
from repro.beamform.mvdr import MvdrConfig, mvdr_beamform
from repro.beamform.tof import analytic_tofc
from repro.utils.validation import require_in

CLASSICAL_BEAMFORMERS = ("das", "mvdr")


def beamform_dataset(
    dataset,
    method: str = "das",
    f_number: float = 1.75,
    mvdr_config: MvdrConfig | None = None,
) -> np.ndarray:
    """Beamform a single-angle dataset with a classical method.

    Args:
        dataset: object with ``rf`` (n_samples, n_elements), ``probe``,
            ``grid``, ``angle_rad`` and ``sound_speed_m_s`` attributes
            (e.g. :class:`repro.ultrasound.datasets.PlaneWaveDataset`).
        method: ``"das"`` or ``"mvdr"``.
        f_number: receive f-number for the DAS apodization.
        mvdr_config: optional MVDR parameters.

    Returns:
        ``(nz, nx)`` complex IQ image.
    """
    require_in("method", method, CLASSICAL_BEAMFORMERS)
    tofc = analytic_tofc(
        dataset.rf,
        dataset.probe,
        dataset.grid,
        angle_rad=dataset.angle_rad,
        sound_speed_m_s=dataset.sound_speed_m_s,
    )
    if method == "das":
        # Boxcar is the paper's data-independent DAS baseline; its higher
        # sidelobes are exactly the contrast deficit the learned
        # beamformers are meant to fix.
        apodization = boxcar_rx_apodization(
            dataset.probe, dataset.grid, f_number=f_number
        )
        return das_beamform(tofc, apodization)
    return mvdr_beamform(tofc, mvdr_config)


def bmode_image(iq_image: np.ndarray) -> np.ndarray:
    """Convert a beamformed IQ image to a normalized dB B-mode image."""
    return log_compress(envelope_detect(iq_image))
