"""End-to-end B-mode reconstruction helpers.

These helpers tie the chain together: RF -> analytic ToFC -> beamformer ->
envelope -> log compression.  They accept any dataset-like object exposing
``rf``, ``probe``, ``grid``, ``angle_rad`` and ``sound_speed_m_s``
(duck-typed so this module does not depend on the dataset package).
"""

from __future__ import annotations

import numpy as np

from repro.beamform.envelope import envelope_detect, log_compress
from repro.beamform.mvdr import MvdrConfig
from repro.utils.validation import require_in

CLASSICAL_BEAMFORMERS = ("das", "mvdr")


def beamform_dataset(
    dataset,
    method: str = "das",
    f_number: float = 1.75,
    mvdr_config: MvdrConfig | None = None,
) -> np.ndarray:
    """Beamform a single-angle dataset with a classical method.

    Args:
        dataset: object with ``rf`` (n_samples, n_elements), ``probe``,
            ``grid``, ``angle_rad`` and ``sound_speed_m_s`` attributes
            (e.g. :class:`repro.ultrasound.datasets.PlaneWaveDataset`).
        method: ``"das"`` or ``"mvdr"``.
        f_number: receive f-number for the DAS apodization.
        mvdr_config: optional MVDR parameters.

    Returns:
        ``(nz, nx)`` complex IQ image.
    """
    require_in("method", method, CLASSICAL_BEAMFORMERS)
    # One canonical classical path: the repro.api adapters (plan-cached
    # ToF geometry, see DESIGN.md).  Imported lazily — repro.api pulls
    # this package back in.
    from repro.api.adapters import DasBeamformer, MvdrBeamformer

    if method == "das":
        return DasBeamformer(f_number=f_number).beamform(dataset)
    return MvdrBeamformer(mvdr_config).beamform(dataset)


def bmode_image(iq_image: np.ndarray) -> np.ndarray:
    """Convert a beamformed IQ image to a normalized dB B-mode image."""
    return log_compress(envelope_detect(iq_image))
