"""Envelope detection, IQ demodulation and log compression."""

from __future__ import annotations

import numpy as np
from scipy.signal import hilbert

from repro.beamform.geometry import ImagingGrid
from repro.utils.arrays import db
from repro.utils.validation import check_positive


def envelope_detect(image: np.ndarray) -> np.ndarray:
    """Envelope of a beamformed image.

    Complex (IQ) input: the magnitude.  Real RF input: magnitude of the
    analytic signal along the axial (depth) axis 0.
    """
    image = np.asarray(image)
    if np.iscomplexobj(image):
        return np.abs(image)
    return np.abs(hilbert(image, axis=0))


def baseband_demodulate(
    iq_image: np.ndarray,
    grid: ImagingGrid,
    center_frequency_hz: float,
    sound_speed_m_s: float = 1540.0,
) -> np.ndarray:
    """Mix a beamformed analytic image down to baseband.

    After ToF correction and summation, the residual carrier of a pixel at
    depth z oscillates as exp(+j 2 pi f0 * 2 z / c); removing it leaves the
    slowly varying IQ envelope the paper's models regress (their targets
    are "IQ demodulated beamformed data").  The magnitude is unchanged, so
    B-mode metrics are identical before/after; learning is easier after.
    """
    check_positive("center_frequency_hz", center_frequency_hz)
    check_positive("sound_speed_m_s", sound_speed_m_s)
    iq_image = np.asarray(iq_image)
    if iq_image.shape[0] != grid.nz:
        raise ValueError(
            f"image depth axis {iq_image.shape[0]} != grid nz {grid.nz}"
        )
    round_trip_s = 2.0 * grid.z_m / sound_speed_m_s
    carrier = np.exp(-2j * np.pi * center_frequency_hz * round_trip_s)
    return iq_image * carrier.reshape(-1, *([1] * (iq_image.ndim - 1)))


def remodulate(
    iq_baseband: np.ndarray,
    grid: ImagingGrid,
    center_frequency_hz: float,
    sound_speed_m_s: float = 1540.0,
) -> np.ndarray:
    """Inverse of :func:`baseband_demodulate` (restores the carrier)."""
    round_trip_s = 2.0 * grid.z_m / sound_speed_m_s
    carrier = np.exp(+2j * np.pi * center_frequency_hz * round_trip_s)
    iq_baseband = np.asarray(iq_baseband)
    return iq_baseband * carrier.reshape(
        -1, *([1] * (iq_baseband.ndim - 1))
    )


def log_compress(
    envelope: np.ndarray,
    normalize: bool = True,
) -> np.ndarray:
    """Log-compress an envelope image to dB.

    With ``normalize=True`` (default) the output peaks at 0 dB, the
    convention of every B-mode figure in the paper.
    """
    envelope = np.abs(np.asarray(envelope, dtype=float))
    if normalize:
        peak = envelope.max()
        if peak > 0:
            envelope = envelope / peak
    return db(envelope)
