"""Receive apodization: f-number controlled dynamic aperture windows.

DAS image quality depends on how the receive aperture is weighted per
pixel.  The paper's DAS baseline uses a standard data-independent
apodization; we provide boxcar (rectangular) and Hann windows over the
f-number limited active aperture.
"""

from __future__ import annotations

import numpy as np

from repro.beamform.geometry import ImagingGrid
from repro.ultrasound.probe import LinearProbe
from repro.utils.validation import check_positive


def _active_half_aperture(z_m: np.ndarray, f_number: float) -> np.ndarray:
    """Half-width of the active receive aperture at each depth."""
    return z_m / (2.0 * f_number)


def boxcar_rx_apodization(
    probe: LinearProbe,
    grid: ImagingGrid,
    f_number: float = 1.75,
) -> np.ndarray:
    """Rectangular apodization: 1 inside the f-number aperture, else 0.

    Returns ``(nz, nx, n_elements)`` weights, normalized per pixel so the
    active weights sum to 1 (keeps DAS gain depth-independent).
    """
    check_positive("f_number", f_number)
    xx, zz = grid.meshgrid()
    ex = probe.element_positions_m
    half = _active_half_aperture(zz, f_number)[..., np.newaxis]
    lateral_offset = np.abs(xx[..., np.newaxis] - ex)
    weights = (lateral_offset <= half).astype(float)
    return _normalize_per_pixel(weights)


def hann_rx_apodization(
    probe: LinearProbe,
    grid: ImagingGrid,
    f_number: float = 1.75,
) -> np.ndarray:
    """Hann-tapered apodization over the f-number limited aperture.

    The taper reduces sidelobes at a small cost in mainlobe width, the
    standard DAS trade-off.  Returns ``(nz, nx, n_elements)`` weights
    normalized per pixel.
    """
    check_positive("f_number", f_number)
    xx, zz = grid.meshgrid()
    ex = probe.element_positions_m
    half = _active_half_aperture(zz, f_number)[..., np.newaxis]
    lateral_offset = xx[..., np.newaxis] - ex
    inside = np.abs(lateral_offset) <= half
    # Hann profile over [-half, half]: cos^2(pi u / 2) with u in [-1, 1].
    with np.errstate(divide="ignore", invalid="ignore"):
        u = np.where(half > 0, lateral_offset / half, 0.0)
    weights = np.where(inside, np.cos(np.pi * u / 2.0) ** 2, 0.0)
    return _normalize_per_pixel(weights)


def _normalize_per_pixel(weights: np.ndarray) -> np.ndarray:
    """Scale weights so each pixel's active aperture sums to 1.

    Pixels with an empty aperture (too shallow for the f-number) keep
    all-zero weights.
    """
    totals = weights.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        normalized = np.where(totals > 0, weights / totals, 0.0)
    return normalized
