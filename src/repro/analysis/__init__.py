"""repro.analysis — repo-aware static analysis + concurrency sanitizer.

Two halves:

* **reprolint** (:mod:`repro.analysis.engine` and
  :mod:`repro.analysis.rules`) — an AST lint engine whose rules encode
  this repo's load-bearing conventions: backend-registry dispatch on
  hot paths (RA001), bounded serving queues (RA002), a never-blocking
  gateway event loop (RA003), spawn-safe imports and registry-name
  backend pickling (RA004), exact-float protocol JSON (RA005), lock
  discipline in the serve primitives (RA006), and a docs tree that
  tracks the code tree (RA007).  ``python -m repro.analysis src/repro``
  is the CI gate; suppressions require a written justification
  (``# repro: noqa[RAxxx] -- reason``).

* **sanitizer** (:mod:`repro.analysis.sanitize`) — runtime concurrency
  checking: a lock-order recorder with cycle detection (potential
  deadlocks) and thread/process/fd leak detectors, exposed as pytest
  fixtures and enabled across the tier-1 suite.

See ``docs/static-analysis.md`` for the rule catalog, the pragma
grammar, and the guide to adding a rule.
"""

from repro.analysis.engine import (
    AnalysisReport,
    ModuleContext,
    Pragma,
    ProjectContext,
    Rule,
    Violation,
    all_rules,
    apply_pragmas,
    load_module,
    register_rule,
    run_analysis,
)

__all__ = [
    "AnalysisReport",
    "ModuleContext",
    "Pragma",
    "ProjectContext",
    "Rule",
    "Violation",
    "all_rules",
    "apply_pragmas",
    "load_module",
    "register_rule",
    "run_analysis",
]
