"""Runtime concurrency sanitizer: lock-order recording + leak guards.

Static rules (:mod:`repro.analysis.rules`) catch what is visible in
the source; this module catches what only shows up at runtime:

* **Lock-order cycles.**  :class:`LockOrderGraph` records, per thread,
  the stack of locks currently held and draws a ``held → acquired``
  edge on every successful acquisition.  A cycle in that graph is a
  *potential deadlock*: two code paths take the same locks in opposite
  orders, and whether they ever deadlock is just a scheduling accident.
  :func:`lock_order_monitor` patches ``threading.Lock``/``RLock`` (and
  therefore everything built on them — Conditions, Events, queues) so
  any code run under it is recorded without modification.

* **Resource leaks.**  :class:`LeakGuard` snapshots threads, child
  processes and open file descriptors around a block of code and
  reports what outlived it.  A serving test that forgets to ``close()``
  an engine leaks its pump thread; a sharding test that drops a worker
  leaks a process; an shm test that skips ``unlink`` leaks fds.  The
  guard polls with a grace period (threads finish asynchronously) and
  carries whitelists for the multiprocessing helper threads the stdlib
  parks forever.

Both are exposed to the test suite as fixtures (see the root
``conftest.py`` and ``tests/serve``/``tests/gateway`` conftests); the
classes here are plain context managers so they are equally usable in
scripts and examples.
"""

from __future__ import annotations

import _thread
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "LockOrderGraph",
    "TrackedLock",
    "lock_order_monitor",
    "LeakGuard",
    "LeakReport",
]


# --------------------------------------------------------------------------
# Lock-order recording
# --------------------------------------------------------------------------


class LockOrderGraph:
    """Held→acquired edges over every tracked lock, plus cycle search.

    Thread-safe: the graph serializes its own mutations with a *raw*
    ``_thread`` lock so recording never recurses into the tracking
    layer it serves.
    """

    def __init__(self) -> None:
        self._mutex = _thread.allocate_lock()
        self._sites: dict[int, str] = {}
        self._edges: dict[int, set[int]] = {}
        self._local = threading.local()

    def register(self, lock_id: int, site: str) -> None:
        """Name ``lock_id`` by its creation site for readable reports."""
        with self._mutex:
            self._sites[lock_id] = site

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def note_acquired(self, lock_id: int) -> None:
        """Record a successful acquisition by the calling thread."""
        stack = self._stack()
        if stack and stack[-1] != lock_id:
            with self._mutex:
                self._edges.setdefault(stack[-1], set()).add(lock_id)
        stack.append(lock_id)

    def note_released(self, lock_id: int) -> None:
        """Record a release (last matching acquisition wins)."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == lock_id:
                del stack[index]
                return

    def site(self, lock_id: int) -> str:
        """The creation site registered for ``lock_id``."""
        with self._mutex:
            return self._sites.get(lock_id, f"<lock {lock_id:#x}>")

    def edges(self) -> dict[int, set[int]]:
        """A snapshot of the held→acquired edge set."""
        with self._mutex:
            return {node: set(targets) for node, targets in self._edges.items()}

    def cycles(self) -> list[list[str]]:
        """Every elementary cycle found by DFS, as creation-site lists.

        An empty list means no lock-order inversion was observed.  Each
        cycle is reported once, rotated so its smallest site comes
        first (stable output for tests and CI logs).
        """
        graph = self.edges()
        seen_cycles: set[tuple[str, ...]] = set()
        result: list[list[str]] = []

        def dfs(node: int, path: list[int], on_path: set[int]) -> None:
            for target in sorted(graph.get(node, ())):
                if target in on_path:
                    start = path.index(target)
                    cycle_ids = path[start:]
                    sites = [self.site(i) for i in cycle_ids]
                    smallest = min(range(len(sites)), key=sites.__getitem__)
                    rotated = tuple(
                        sites[smallest:] + sites[:smallest]
                    )
                    if rotated not in seen_cycles:
                        seen_cycles.add(rotated)
                        result.append(list(rotated))
                    continue
                dfs(target, path + [target], on_path | {target})

        for node in sorted(graph):
            dfs(node, [node], {node})
        return result


class TrackedLock:
    """A ``threading.Lock``/``RLock`` wrapper that reports to a graph.

    Matches the lock protocol (``acquire``/``release``/context
    manager/``locked``) and delegates everything else — notably the
    ``_release_save``/``_acquire_restore``/``_is_owned`` hooks
    :class:`threading.Condition` probes for — to the wrapped lock.
    A plain ``Lock`` has none of those, so Condition falls back to its
    ``acquire(0)`` probe, which this wrapper tracks like any acquire.
    (For RLocks, Condition.wait's release/reacquire bypasses tracking;
    the thread acquires nothing while waiting, so per-thread stacks
    stay consistent.)
    """

    def __init__(self, inner: Any, graph: LockOrderGraph, site: str) -> None:
        self._inner = inner
        self._graph = graph
        graph.register(id(self), site)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the wrapped lock; record edges on success."""
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._graph.note_acquired(id(self))
        return acquired

    def release(self) -> None:
        """Release the wrapped lock and pop the held stack."""
        self._inner.release()
        self._graph.note_released(id(self))

    def locked(self) -> bool:
        """Whether the wrapped lock is currently held."""
        return self._inner.locked()

    def __enter__(self) -> bool:
        """``with lock:`` acquires like the stdlib primitive."""
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        """Release on block exit."""
        self.release()

    def __getattr__(self, name: str) -> Any:
        """Delegate Condition's private hooks to the wrapped lock."""
        return getattr(self._inner, name)


class lock_order_monitor:
    """Patch ``threading.Lock``/``RLock`` so new locks are tracked.

    Usage::

        with lock_order_monitor() as graph:
            ...  # run code that creates and uses locks
        assert graph.cycles() == []

    Everything *created* inside the block is tracked (including
    Conditions and Events built from the patched factories); locks
    created before the block are invisible.  Patching is process-global
    — do not nest monitors or run them concurrently.
    """

    def __init__(self) -> None:
        self.graph = LockOrderGraph()
        self._originals: tuple[Any, Any] | None = None

    def _site(self) -> str:
        import traceback

        for frame in reversed(traceback.extract_stack(limit=16)):
            filename = frame.filename or ""
            if "threading" in os.path.basename(filename):
                continue
            if filename.endswith("sanitize.py"):
                continue
            return f"{filename}:{frame.lineno}"
        return "<unknown>"

    _active: "lock_order_monitor | None" = None

    def __enter__(self) -> LockOrderGraph:
        """Install the tracking factories."""
        if lock_order_monitor._active is not None:
            raise RuntimeError(
                "another lock_order_monitor is already active; "
                "monitors patch process-global state and cannot nest"
            )
        lock_order_monitor._active = self
        original_lock, original_rlock = threading.Lock, threading.RLock
        self._originals = (original_lock, original_rlock)

        def tracked_lock() -> TrackedLock:
            return TrackedLock(original_lock(), self.graph, self._site())

        def tracked_rlock() -> TrackedLock:
            return TrackedLock(original_rlock(), self.graph, self._site())

        threading.Lock = tracked_lock  # type: ignore[misc]
        threading.RLock = tracked_rlock  # type: ignore[misc]
        return self.graph

    def __exit__(self, *exc: object) -> None:
        """Restore the stdlib factories."""
        assert self._originals is not None
        threading.Lock, threading.RLock = self._originals
        self._originals = None
        lock_order_monitor._active = None


# --------------------------------------------------------------------------
# Leak detection
# --------------------------------------------------------------------------

#: Thread-name prefixes the stdlib parks for the process lifetime.
DEFAULT_THREAD_WHITELIST = (
    "QueueFeederThread",
    "QueueManagerThread",
    "Dummy",
    "pydevd",
)


def _fd_count() -> int | None:
    """Open descriptor count, or None where /proc is unavailable."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


@dataclass
class LeakReport:
    """What outlived a :class:`LeakGuard` block."""

    leaked_threads: list[str] = field(default_factory=list)
    leaked_processes: list[str] = field(default_factory=list)
    fd_delta: int = 0
    fd_tolerance: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing leaked beyond tolerance."""
        return (
            not self.leaked_threads
            and not self.leaked_processes
            and self.fd_delta <= self.fd_tolerance
        )

    def describe(self) -> str:
        """Human-readable multi-line leak summary."""
        lines: list[str] = []
        for name in self.leaked_threads:
            lines.append(f"leaked thread: {name}")
        for name in self.leaked_processes:
            lines.append(f"leaked child process: {name}")
        if self.fd_delta > self.fd_tolerance:
            lines.append(
                f"fd count grew by {self.fd_delta} "
                f"(tolerance {self.fd_tolerance})"
            )
        return "\n".join(lines) or "no leaks"


class LeakGuard:
    """Snapshot threads/processes/fds and report what outlives a block.

    Args:
        grace_s: how long to poll for stragglers before declaring a
            leak.  Threads and worker processes wind down
            asynchronously; a zero grace flags ordinary shutdown races.
        fd_tolerance: allowed growth in open descriptors.  Imports,
            numpy scratch files and logging handlers legitimately keep
            a few descriptors; the default absorbs that noise while
            still catching an unlinked shm ring (whose segments are
            multiple fds each).
        include_daemon: count daemon threads as leaks.  Off by default
            (libraries park daemon helpers freely); the sanitizer's own
            unit tests switch it on to catch deliberate leaks.
        thread_whitelist: name prefixes that never count as leaks.
    """

    def __init__(
        self,
        grace_s: float = 5.0,
        fd_tolerance: int = 16,
        include_daemon: bool = False,
        thread_whitelist: Iterable[str] = DEFAULT_THREAD_WHITELIST,
    ) -> None:
        self.grace_s = grace_s
        self.fd_tolerance = fd_tolerance
        self.include_daemon = include_daemon
        self.thread_whitelist = tuple(thread_whitelist)
        self._threads_before: set[threading.Thread] = set()
        self._fds_before: int | None = None

    def _relevant_threads(self) -> set[threading.Thread]:
        relevant: set[threading.Thread] = set()
        for thread in threading.enumerate():
            if not self.include_daemon and thread.daemon:
                continue
            name = thread.name or ""
            if any(name.startswith(p) for p in self.thread_whitelist):
                continue
            relevant.add(thread)
        return relevant

    def __enter__(self) -> "LeakGuard":
        """Take the baseline snapshot."""
        # Reap finished children first so they don't mask as baseline.
        multiprocessing.active_children()
        self._threads_before = self._relevant_threads()
        self._fds_before = _fd_count()
        return self

    def __exit__(self, *exc: object) -> None:
        """Leave checking to :meth:`check` (fixtures decide severity)."""
        return None

    def check(self) -> LeakReport:
        """Poll (within the grace period) and report surviving leaks."""
        deadline = time.monotonic() + self.grace_s
        while True:
            report = self._snapshot_report()
            if report.ok or time.monotonic() >= deadline:
                return report
            time.sleep(0.05)

    def _snapshot_report(self) -> LeakReport:
        threads = [
            thread
            for thread in self._relevant_threads() - self._threads_before
            if thread.is_alive()
        ]
        processes = [
            process
            for process in multiprocessing.active_children()
            if process.is_alive()
        ]
        fd_delta = 0
        fds_now = _fd_count()
        if self._fds_before is not None and fds_now is not None:
            if fds_now > self._fds_before:
                import gc

                gc.collect()
                fds_now = _fd_count() or fds_now
            fd_delta = max(0, fds_now - self._fds_before)
        return LeakReport(
            leaked_threads=[
                f"{t.name} (daemon={t.daemon})" for t in threads
            ],
            leaked_processes=[
                f"{p.name} (pid={p.pid})" for p in processes
            ],
            fd_delta=fd_delta,
            fd_tolerance=self.fd_tolerance,
        )


def iter_lock_sites(graph: LockOrderGraph) -> Iterator[str]:
    """Creation sites of every lock the graph has seen (debug helper)."""
    for lock_id in sorted(graph.edges()):
        yield graph.site(lock_id)
