"""CLI for reprolint: ``python -m repro.analysis [paths...]``.

Exit status 0 when no violation survives pragma filtering, 1
otherwise — this is the contract the CI ``analysis`` job gates on.

Usage::

    python -m repro.analysis src/repro              # the CI gate
    python -m repro.analysis --format json src      # machine output
    python -m repro.analysis --select RA002 src     # one rule only
    python -m repro.analysis --list-rules           # the catalog
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.analysis.engine import all_rules, run_analysis


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: repo-aware static analysis for the repro stack"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[],
        help="files and/or directories to analyze",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only these rule codes (repeatable, e.g. --select RA002)",
    )
    parser.add_argument(
        "--repo",
        type=Path,
        default=None,
        help=(
            "repository root for project-level rules and relative "
            "paths (default: current directory)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns the process exit status."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0

    if not args.paths:
        print(
            "python -m repro.analysis: no paths given "
            "(try: python -m repro.analysis src/repro)",
            file=sys.stderr,
        )
        return 2

    try:
        report = run_analysis(
            args.paths, root=args.repo, select=args.select
        )
    except ValueError as exc:
        print(f"python -m repro.analysis: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    try:
        status = main()
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `... | head`): not a lint
        # outcome.  Point stdout at devnull so the interpreter's exit
        # flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        status = 0
    raise SystemExit(status)
