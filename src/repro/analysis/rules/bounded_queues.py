"""RA002 — every queue on a serving path must be explicitly bounded.

The serve pipeline's backpressure story (PR 2) only works if *every*
buffer between stages has a capacity: one unbounded queue turns
"ingest slows to the pipeline's pace" into "memory grows until the
OOM-killer arrives".  :class:`~repro.serve.queues.BoundedQueue` is
bounded by construction; this rule polices the escape hatches — a raw
``queue.Queue()``, ``asyncio.Queue()``, ``multiprocessing``/context
``Queue()`` or ``collections.deque()`` created without an explicit
bound in the serving packages.

Scope: ``repro.serve`` and ``repro.gateway``.

A queue constructor passes when it is given an explicit, non-zero
bound: ``maxsize=N`` (or a positional size for ``Queue``) /
``maxlen=N`` for ``deque``.  ``maxsize=0`` is the stdlib spelling of
*unbounded* and therefore still a violation.  Intentionally unbounded
structures (e.g. a free list whose population is fixed at creation)
must carry a line pragma with the justification.
"""

from __future__ import annotations

from typing import Iterable
import ast

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    is_zero_constant,
    keyword_value,
)
from repro.analysis.engine import register_rule

#: Packages whose queues this rule polices.
SERVING_PACKAGES = ("repro.serve", "repro.gateway")

#: Constructor names (last dotted component) that build FIFO buffers.
QUEUE_CONSTRUCTORS = frozenset(
    {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue", "JoinableQueue"}
)


def _bound_argument(call: ast.Call, name: str) -> ast.expr | None:
    """The bound passed to a queue constructor (kwarg or first arg)."""
    value = keyword_value(call, name)
    if value is not None:
        return value
    if call.args:
        return call.args[0]
    return None


class BoundedQueuesRule(Rule):
    """Flag unbounded queue/deque construction in serving packages."""

    code = "RA002"
    summary = (
        "serve/gateway queues and deques must be created with an "
        "explicit non-zero bound (maxsize=/maxlen=)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Report bound-less queue constructors in serving modules."""
        if not module.package.startswith(SERVING_PACKAGES):
            return []
        found: list[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            if tail == "deque":
                bound = keyword_value(node, "maxlen")
                if bound is None or (
                    isinstance(bound, ast.Constant) and bound.value is None
                ):
                    found.append(
                        module.violation(
                            self.code,
                            node,
                            "deque() without maxlen= on a serving path; "
                            "give it a bound or use BoundedQueue "
                            "(backpressure must be a policy, not an "
                            "accident)",
                        )
                    )
            elif tail == "SimpleQueue" and name != "queue.SimpleQueue":
                # multiprocessing.SimpleQueue cannot be bounded at all.
                found.append(
                    module.violation(
                        self.code,
                        node,
                        f"{name}() has no capacity bound; use a "
                        f"maxsize-bounded Queue instead",
                    )
                )
            elif tail in QUEUE_CONSTRUCTORS:
                bound = _bound_argument(node, "maxsize")
                if bound is None or is_zero_constant(bound):
                    found.append(
                        module.violation(
                            self.code,
                            node,
                            f"{name}() without a non-zero maxsize on a "
                            f"serving path; an unbounded queue defeats "
                            f"the pipeline's backpressure contract",
                        )
                    )
        return found


register_rule(BoundedQueuesRule())
