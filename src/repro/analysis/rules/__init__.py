"""The bundled reprolint rules; importing this package registers them.

Each module defines one rule and calls
:func:`repro.analysis.engine.register_rule` at import time:

========  ==========================  =====================================
Code      Module                      Invariant
========  ==========================  =====================================
RA001     backend_purity              hot kernels dispatch via ArrayBackend
RA002     bounded_queues              serving queues carry explicit bounds
RA003     asyncio_blocking            gateway coroutines never block
RA004     spawn_safety                import-pure modules, registry pickling
RA005     exact_json                  protocol JSON uses the exact encoder
RA006     lock_discipline             _lock owners mutate under the lock
RA007     docs_consistency            docs track the code tree
RA008     span_discipline             tracing spans close on every path
========  ==========================  =====================================

(RA000 is reserved for pragma misuse, reported by the engine itself.)
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    asyncio_blocking,
    backend_purity,
    bounded_queues,
    docs_consistency,
    exact_json,
    lock_discipline,
    span_discipline,
    spawn_safety,
)
