"""RA005 — protocol/geometry JSON must go through the exact encoder.

The gateway's bitwise serve-vs-offline parity rests on a subtle JSON
property: floats ride the wire as their shortest round-tripping repr,
so a decoded geometry is bit-identical to the sender's and resolves to
the *same* cached ToF plan (see
:func:`repro.gateway.protocol.geometry_to_wire`).  That only holds
because every protocol message is serialized by one encoder with pinned
options (:func:`repro.gateway.protocol.pack_message`).  A second, bare
``json.dumps`` on a protocol or geometry path can silently diverge —
different separators change framing byte counts, ``allow_nan`` or a
custom ``default=`` changes float fidelity — and the parity proof
quietly stops covering it.

Scope: ``repro.gateway`` and ``repro.serve``, except the encoder module
itself (``repro.gateway.protocol``).

Operator-facing output (CLI stats dumps) is not wire data; such uses
carry a line pragma stating exactly that.
"""

from __future__ import annotations

from typing import Iterable
import ast

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    register_rule,
)

#: Packages whose JSON encoding this rule polices.
PROTOCOL_PACKAGES = ("repro.gateway", "repro.serve")

#: The one module allowed to call json.dumps — the exact encoder.
ENCODER_MODULES = ("repro.gateway.protocol",)

#: Serialization entry points that must not appear outside the encoder.
JSON_ENCODERS = frozenset({"json.dumps", "json.dump"})


class ExactFloatJsonRule(Rule):
    """Flag bare ``json.dumps``/``json.dump`` outside the protocol encoder."""

    code = "RA005"
    summary = (
        "serve/gateway code must serialize JSON through the exact "
        "protocol encoder, not bare json.dumps"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Report bare JSON serialization outside the encoder module."""
        if not module.package.startswith(PROTOCOL_PACKAGES):
            return []
        if module.package in ENCODER_MODULES:
            return []
        found: list[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) in JSON_ENCODERS:
                found.append(
                    module.violation(
                        self.code,
                        node,
                        "bare json serialization on a serving path; "
                        "wire data must go through "
                        "repro.gateway.protocol (pack_message / "
                        "geometry_to_wire) so float round-tripping "
                        "stays exact",
                    )
                )
        return found


register_rule(ExactFloatJsonRule())
