"""RA003 — no blocking calls inside the gateway's asyncio coroutines.

The gateway multiplexes every client session onto one event loop
(PR 5); a single blocking call inside a coroutine stalls *all*
sessions at once — admission, frame reads, result deliveries and the
graceful drain.  The architecture keeps blocking work on dedicated
threads (the engine pump) and crosses into the loop only through
``run_coroutine_threadsafe``; this rule pins that boundary.

Scope: ``async def`` bodies in ``repro.gateway``.

Violations:

* calls to known blocking entry points (``time.sleep``, ``open``,
  blocking socket methods, ``subprocess``/``os.system``,
  ``concurrent.futures`` ``.result()``/``.wait()``),
* synchronous file I/O methods (``read_text``/``write_bytes``/...),
* any call carrying a ``timeout=`` keyword that is not the literal
  ``0``/``0.0`` — a timeout parameter is the signature of a blocking
  wait (queue gets/puts, lock acquires, joins); the only acceptable
  form on the loop is the non-blocking ``timeout=0`` probe, as in the
  feed queue's ``put(frame, timeout=0.0)``.

Nested ``def`` functions inside a coroutine are *not* exempt only if
awaited — they run wherever they are called; the rule conservatively
checks every statement lexically inside an ``async def``, excluding
nested synchronous functions handed to executors is left to a pragma
with its justification.
"""

from __future__ import annotations

from typing import Iterable
import ast

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    is_zero_constant,
    keyword_value,
    register_rule,
)

#: The package whose coroutines this rule polices.
ASYNC_PACKAGES = ("repro.gateway",)

#: Dotted call names that always block.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "socket.getaddrinfo",
    }
)

#: Method names (last attribute) that block on sockets/files/futures.
BLOCKING_METHODS = frozenset(
    {
        "recv",
        "recv_into",
        "sendall",
        "accept",
        "connect",
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
    }
)


def _async_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(start, end) line spans of every ``async def`` body."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


class AsyncioBlockingRule(Rule):
    """Flag blocking calls lexically inside gateway coroutines."""

    code = "RA003"
    summary = (
        "gateway coroutines must never block the event loop: no "
        "sleeps, sync I/O, or non-zero-timeout waits in async def"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Report blocking calls inside ``async def`` bodies."""
        if not module.package.startswith(ASYNC_PACKAGES):
            return []
        spans = _async_spans(module.tree)
        if not spans:
            return []

        def in_async(node: ast.AST) -> bool:
            line = getattr(node, "lineno", None)
            if line is None:
                return False
            return any(start < line <= end for start, end in spans)

        # Awaited calls hand control back to the loop; they are the
        # *non*-blocking spelling and are exempt by construction.
        awaited = {
            id(node.value)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.Await)
        }

        found: list[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not in_async(node):
                continue
            if id(node) in awaited:
                continue
            name = call_name(node)
            tail = name.rsplit(".", 1)[-1] if name else None
            if name in BLOCKING_CALLS or (
                name is not None
                and any(name.endswith("." + b) for b in BLOCKING_CALLS)
            ):
                found.append(
                    module.violation(
                        self.code,
                        node,
                        f"blocking call {name}() inside async def; it "
                        f"stalls every gateway session — move it to a "
                        f"worker thread or an executor",
                    )
                )
                continue
            if tail in BLOCKING_METHODS:
                found.append(
                    module.violation(
                        self.code,
                        node,
                        f"synchronous I/O method .{tail}() inside "
                        f"async def; use the asyncio stream APIs or an "
                        f"executor",
                    )
                )
                continue
            timeout = keyword_value(node, "timeout")
            if timeout is not None and not is_zero_constant(timeout):
                label = name or "<call>"
                found.append(
                    module.violation(
                        self.code,
                        node,
                        f"{label}(timeout=...) inside async def is a "
                        f"blocking wait; on the loop only the "
                        f"non-blocking timeout=0 probe is allowed "
                        f"(asyncio.wait_for is the async spelling)",
                    )
                )
        return found


register_rule(AsyncioBlockingRule())
