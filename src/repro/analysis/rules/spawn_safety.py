"""RA004 — modules on the shard-worker import path must be spawn-safe.

Sharded serving (PR 4) starts workers with the ``spawn`` method: every
worker re-imports the ``repro`` tree from scratch and then unpickles
the beamformer it was handed.  Two things can silently break that:

1. **Import side effects.**  A module that does real work at import
   time (opens files, starts threads, sleeps, seeds global RNGs,
   mutates the environment) executes that work *once per worker
   process*, turning N shards into N surprises.  The import path of a
   worker is effectively the whole package (the pickled beamformer can
   pull in any model/layer module), so the rule covers all of
   ``repro``.

2. **Backend pickling.**  Backends cross the process boundary *by
   registry name* (:meth:`repro.backend.ArrayBackend.__reduce__`):
   the child resolves its own registered instance, because thread-local
   scratch pools and cached index tables must never ride a pickle.  An
   :class:`~repro.backend.ArrayBackend` subclass that overrides
   ``__reduce__``/``__reduce_ex__``/``__getstate__``/``__setstate__``
   breaks that contract and will hand spawned workers stale or
   unpicklable state.

Module-level *registrations* (``register_backend``,
``register_beamformer``, ``logging.getLogger``, dataclass machinery)
are exactly what spawn-safety requires and are not flagged: the rule
blacklists effectful calls rather than whitelisting idioms.
"""

from __future__ import annotations

from typing import Iterable, Iterator
import ast

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    dotted_name,
    enclosing_functions,
    register_rule,
)

#: Everything under this package must import without side effects.
SPAWN_PACKAGES = ("repro",)

#: Effectful calls that must not run at module import time.
IMPORT_EFFECT_CALLS = frozenset(
    {
        "open",
        "print",
        "input",
        "time.sleep",
        "os.system",
        "os.makedirs",
        "os.mkdir",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "socket.socket",
        "socket.create_connection",
        "threading.Thread",
        "multiprocessing.Process",
        "multiprocessing.Pool",
        "np.random.seed",
        "numpy.random.seed",
        "random.seed",
    }
)

#: Pickle-protocol hooks an ArrayBackend subclass must not override.
PICKLE_HOOKS = frozenset(
    {"__reduce__", "__reduce_ex__", "__getstate__", "__setstate__"}
)


class SpawnSafetyRule(Rule):
    """Flag import-time side effects and backend pickle overrides."""

    code = "RA004"
    summary = (
        "repro modules must be import-pure (spawn-safe workers) and "
        "ArrayBackend subclasses must pickle by registry name"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Report import-time effects and pickle-protocol overrides."""
        if not module.package.startswith(SPAWN_PACKAGES):
            return []
        found: list[Violation] = []
        # Import-time code = everything whose nearest enclosing function
        # is None: module statements, if/try/with bodies at top level,
        # and class bodies (all of which execute on import).  Function
        # bodies run only when called and are excluded.
        owners = enclosing_functions(module.tree)
        for node in ast.walk(module.tree):
            if owners.get(node) is not None:
                continue
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in IMPORT_EFFECT_CALLS:
                    found.append(
                        module.violation(
                            self.code,
                            node,
                            f"import-time call to {name}(); every "
                            f"spawned shard worker re-imports this "
                            f"module, so imports must be side-effect "
                            f"free",
                        )
                    )
            # Environment mutation at import poisons child processes
            # inconsistently (spawn re-reads the parent's env, not the
            # import-time mutation order).
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and dotted_name(target.value) == "os.environ"
                ):
                    found.append(
                        module.violation(
                            self.code,
                            target,
                            "import-time os.environ mutation; spawned "
                            "workers must see the parent's environment, "
                            "not import-order side effects",
                        )
                    )

        found.extend(self._check_backend_subclasses(module))
        return found

    def _check_backend_subclasses(
        self, module: ModuleContext
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {dotted_name(base) for base in node.bases}
            if not bases & {"ArrayBackend", "backend.ArrayBackend"}:
                continue
            for child in node.body:
                if (
                    isinstance(child, ast.FunctionDef)
                    and child.name in PICKLE_HOOKS
                ):
                    yield module.violation(
                        self.code,
                        child,
                        f"ArrayBackend subclass {node.name} overrides "
                        f"{child.name}; backends must pickle by "
                        f"registry name (the base __reduce__) so "
                        f"spawned workers resolve their own instance",
                    )


register_rule(SpawnSafetyRule())
