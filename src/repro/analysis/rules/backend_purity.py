"""RA001 — hot-path kernels must dispatch through the backend registry.

PR 3 routed every GEMM-shaped and gather-shaped kernel through
:class:`~repro.backend.ArrayBackend` so that a backend is certified by
one registry entry and the serve/offline parity proofs hold under every
registered implementation.  A new ``np.matmul``/``np.einsum`` call in a
hot-path module silently reintroduces reference-only numerics that no
conformance fixture parametrizes — exactly the regression this rule
exists to catch.

Scope: the hot-path kernel packages ``repro.nn.layers``,
``repro.beamform`` and ``repro.quant``.

What counts as a violation: a direct call to one of the *compute*
entry points below (``np.``-qualified, or via ``numpy.``/``np.linalg``).
Dtype, shape and constant uses of numpy (``np.asarray``, ``np.zeros``,
``np.sqrt`` on scalars, ``np.float32``, ...) are deliberately not
listed — the whitelist is everything outside :data:`COMPUTE_CALLS`.

Structural exemption: methods named ``backward``.  Gradients are the
training-only path; they intentionally run in reference numpy (routing
them through a reduced-precision backend would change training
numerics), and serving never executes them.
"""

from __future__ import annotations

from typing import Iterable
import ast

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    enclosing_functions,
    register_rule,
)

#: Packages whose modules are hot-path kernels.
HOT_PACKAGES = ("repro.nn.layers", "repro.beamform", "repro.quant")

#: GEMM/reduction-shaped numpy entry points that must route through
#: :class:`~repro.backend.ArrayBackend` in hot-path modules.
COMPUTE_CALLS = frozenset(
    {
        "matmul",
        "dot",
        "vdot",
        "inner",
        "outer",
        "einsum",
        "tensordot",
        "convolve",
        "correlate",
        "linalg.solve",
        "linalg.inv",
        "linalg.pinv",
        "linalg.lstsq",
        "linalg.eigh",
        "linalg.svd",
        "linalg.cholesky",
    }
)

#: Module aliases under which numpy is conventionally imported.
_NUMPY_ALIASES = ("np.", "numpy.")


def _compute_call(call: ast.Call) -> str | None:
    name = call_name(call)
    if name is None:
        return None
    for alias in _NUMPY_ALIASES:
        if name.startswith(alias):
            suffix = name[len(alias):]
            if suffix in COMPUTE_CALLS:
                return name
    return None


class BackendPurityRule(Rule):
    """Flag direct numpy compute calls in hot-path kernel modules."""

    code = "RA001"
    summary = (
        "hot-path kernel modules (nn/layers, beamform, quant) must "
        "dispatch GEMM-shaped compute through ArrayBackend, not numpy"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Report blacklisted ``np.*`` compute calls outside ``backward``."""
        if not module.package.startswith(HOT_PACKAGES):
            return []
        owners = enclosing_functions(module.tree)
        found: list[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _compute_call(node)
            if name is None:
                continue
            owner = owners.get(node)
            if (
                isinstance(owner, (ast.FunctionDef, ast.AsyncFunctionDef))
                and owner.name == "backward"
            ):
                continue  # training-only gradient path (module docstring)
            found.append(
                module.violation(
                    self.code,
                    node,
                    f"direct {name}() in a hot-path kernel module; "
                    f"route through the ArrayBackend registry "
                    f"(repro.backend.get_backend()) so every backend "
                    f"is certified by the conformance suite",
                )
            )
        return found


register_rule(BackendPurityRule())
