"""RA001 — hot-path kernels must dispatch through the backend registry.

PR 3 routed every GEMM-shaped and gather-shaped kernel through
:class:`~repro.backend.ArrayBackend` so that a backend is certified by
one registry entry and the serve/offline parity proofs hold under every
registered implementation.  A new ``np.matmul``/``np.einsum`` call in a
hot-path module silently reintroduces reference-only numerics that no
conformance fixture parametrizes — exactly the regression this rule
exists to catch.

Scope: the hot-path kernel packages ``repro.nn.layers``,
``repro.beamform`` and ``repro.quant``.

What counts as a violation: a direct call to one of the *compute*
entry points below (``np.``-qualified, or via ``numpy.``/``np.linalg``).
Dtype, shape and constant uses of numpy (``np.asarray``, ``np.zeros``,
``np.sqrt`` on scalars, ``np.float32``, ...) are deliberately not
listed — the whitelist is everything outside :data:`COMPUTE_CALLS`.

Since the backend contract grew elementwise nonlinearities
(``relu``/``softmax``/``tanh``, plus the fused ``affine_relu`` and
``attention`` entry points), forward-path activations are dispatched
kernels too: a direct ``np.exp``/``np.where``/``np.tanh``/
``np.maximum`` in :mod:`repro.nn.layers` bypasses a kernel a compiled
backend fuses, so those calls are flagged there
(:data:`ELEMENTWISE_CALLS`).  The elementwise check is scoped to the
layers package *only* — ``beamform``/``quant`` use the same numpy
functions for physics (``envelope.py`` carriers, ``apodization.py``
windows) and for quantized-datapath semantics (``qexec.py``
deliberately runs its activations on the quantization grid, not
through a backend), and those are not backend kernels.

Structural exemption: methods named ``backward`` and functions named
``*_backward`` (e.g. ``softmax_backward``).  Gradients are the
training-only path; they intentionally run in reference numpy (routing
them through a reduced-precision backend would change training
numerics), and serving never executes them.
"""

from __future__ import annotations

from typing import Iterable
import ast

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    enclosing_functions,
    register_rule,
)

#: Packages whose modules are hot-path kernels.
HOT_PACKAGES = ("repro.nn.layers", "repro.beamform", "repro.quant")

#: GEMM/reduction-shaped numpy entry points that must route through
#: :class:`~repro.backend.ArrayBackend` in hot-path modules.
COMPUTE_CALLS = frozenset(
    {
        "matmul",
        "dot",
        "vdot",
        "inner",
        "outer",
        "einsum",
        "tensordot",
        "convolve",
        "correlate",
        "linalg.solve",
        "linalg.inv",
        "linalg.pinv",
        "linalg.lstsq",
        "linalg.eigh",
        "linalg.svd",
        "linalg.cholesky",
    }
)

#: Elementwise numpy entry points that now have dispatched backend
#: kernels (``relu``/``softmax``/``tanh``); only flagged inside
#: :data:`ELEMENTWISE_PACKAGES` — see the module docstring for why
#: ``beamform``/``quant`` keep using them directly.
ELEMENTWISE_CALLS = frozenset({"exp", "where", "tanh", "maximum"})

#: Packages where the elementwise check applies.
ELEMENTWISE_PACKAGES = ("repro.nn.layers",)

#: Module aliases under which numpy is conventionally imported.
_NUMPY_ALIASES = ("np.", "numpy.")


def _flagged_call(call: ast.Call, elementwise: bool) -> str | None:
    name = call_name(call)
    if name is None:
        return None
    for alias in _NUMPY_ALIASES:
        if name.startswith(alias):
            suffix = name[len(alias):]
            if suffix in COMPUTE_CALLS:
                return name
            if elementwise and suffix in ELEMENTWISE_CALLS:
                return name
    return None


def _is_backward(owner: ast.AST | None) -> bool:
    return isinstance(
        owner, (ast.FunctionDef, ast.AsyncFunctionDef)
    ) and (
        owner.name == "backward" or owner.name.endswith("_backward")
    )


class BackendPurityRule(Rule):
    """Flag direct numpy compute calls in hot-path kernel modules."""

    code = "RA001"
    summary = (
        "hot-path kernel modules (nn/layers, beamform, quant) must "
        "dispatch GEMM-shaped compute through ArrayBackend, not numpy"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Report blacklisted ``np.*`` compute calls outside ``backward``."""
        if not module.package.startswith(HOT_PACKAGES):
            return []
        elementwise = module.package.startswith(ELEMENTWISE_PACKAGES)
        owners = enclosing_functions(module.tree)
        found: list[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _flagged_call(node, elementwise)
            if name is None:
                continue
            if _is_backward(owners.get(node)):
                continue  # training-only gradient path (module docstring)
            found.append(
                module.violation(
                    self.code,
                    node,
                    f"direct {name}() in a hot-path kernel module; "
                    f"route through the ArrayBackend registry "
                    f"(repro.backend.get_backend()) so every backend "
                    f"is certified by the conformance suite",
                )
            )
        return found


register_rule(BackendPurityRule())
