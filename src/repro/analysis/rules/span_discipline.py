"""RA008 — tracing spans in serving code are closed on every path.

A :class:`repro.obs.tracing.Span` that is opened but never closed
poisons the whole observability chain: the trace it belongs to renders
as ``open`` in the CLI, its duration is unusable in the histograms,
and the flight recorder accumulates half-finished trees that read like
crashes.  The tracing API makes leak-free usage the easy path — and
this rule makes it the *only* path in serving code:

* ``trace.span(...)`` returns a context-manager scope whose ``__exit__``
  closes the span (success or exception).  Calling it any way other
  than as the context expression of a ``with`` statement detaches the
  scope from the guarantee, so that is flagged.
* ``Span(...)`` constructed directly bypasses the trace's bookkeeping
  entirely (no id allocation, no close) and is flagged outright —
  retroactive records with both endpoints known go through
  ``trace.add_span(name, start, end)``, which can never leak.
* ``.start_span(...)`` — the begin-half of a begin/end pair that this
  codebase deliberately does not offer — is flagged so the pattern
  cannot creep in via review momentum from other tracing libraries.

Scope: ``repro.serve`` and ``repro.gateway``, the tiers that attach
spans on the frame path.  :mod:`repro.obs` itself is exempt — it is
the implementation being disciplined, not a consumer.
"""

from __future__ import annotations

from typing import Iterable
import ast

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    Violation,
    register_rule,
)

#: Packages whose span usage this rule polices.
SPAN_PACKAGES = ("repro.serve", "repro.gateway")


def _with_item_calls(tree: ast.AST) -> set[int]:
    """Ids of Call nodes used as a ``with`` item's context expression."""
    used: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                used.add(id(item.context_expr))
    return used


class SpanDisciplineRule(Rule):
    """Flag span usage that can leave a span open on some path."""

    code = "RA008"
    summary = (
        "serve/gateway code opens live spans only as "
        "`with trace.span(...):` (add_span for retroactive records; "
        "no bare Span()/start_span)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Report span calls outside the context-manager discipline."""
        if not module.package.startswith(SPAN_PACKAGES):
            return []
        found: list[Violation] = []
        with_items = _with_item_calls(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "Span":
                found.append(
                    module.violation(
                        self.code,
                        node,
                        "Span() constructed directly is never closed "
                        "by its trace; use `with trace.span(...):` "
                        "for live scopes or trace.add_span(name, "
                        "start, end) for completed records",
                    )
                )
            elif isinstance(func, ast.Attribute):
                if func.attr == "start_span":
                    found.append(
                        module.violation(
                            self.code,
                            node,
                            "start_span() begin/end pairs leak the "
                            "span on any path that skips the end; "
                            "use `with trace.span(...):` instead",
                        )
                    )
                elif func.attr == "span" and id(node) not in with_items:
                    found.append(
                        module.violation(
                            self.code,
                            node,
                            ".span(...) called outside a `with` "
                            "statement detaches the scope from its "
                            "guaranteed close; write `with "
                            "trace.span(...):` so the span ends on "
                            "every path",
                        )
                    )
        return found


register_rule(SpanDisciplineRule())
