"""RA007 — the documentation tree must track the code tree.

This is ``scripts/check_docs.py`` absorbed into the rule framework
(the script survives as a thin shim over this rule).  Two checks, both
dependency-free:

1. **Architecture coverage** — the four core docs pages
   (``architecture``, ``serving``, ``protocol``, ``benchmarking``)
   exist and are linked from ``README.md``, and every ``repro.*``
   subpackage is mentioned in ``docs/architecture.md``.  A PR that adds
   a subsystem without documenting it fails here.

2. **Public docstring floor** — every public module, class, function
   and method in the documented API packages (``repro.api``,
   ``repro.backend``, ``repro.serve``, ``repro.gateway``,
   ``repro.analysis``) carries a docstring.

The rule runs as a *project* check and gates itself on the repo layout
(``docs/`` and ``src/repro`` both present under the analysis root), so
analyzing a loose file or a fixture tree never trips it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable
import ast

from repro.analysis.engine import (
    ProjectContext,
    Rule,
    Violation,
    register_rule,
)

#: Packages whose public surface must be fully docstring'd.
DOCSTRING_PACKAGES = (
    "api", "backend", "serve", "gateway", "analysis", "obs",
)

#: Core docs pages that must exist and be linked from the README.
DOCS_PAGES = (
    "architecture.md",
    "serving.md",
    "protocol.md",
    "benchmarking.md",
    "observability.md",
)


def repro_subpackages(root: Path) -> list[str]:
    """Names of every ``repro.*`` subpackage (directories with inits)."""
    tree = root / "src" / "repro"
    return sorted(
        path.name
        for path in tree.iterdir()
        if path.is_dir() and (path / "__init__.py").exists()
    )


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_overload_stub(node: ast.AST) -> bool:
    """``@overload``/``@typing.overload`` stubs carry no body to document;
    the implementation right below them holds the docstring."""
    decorators = getattr(node, "decorator_list", [])
    return any(
        (isinstance(dec, ast.Name) and dec.id == "overload")
        or (isinstance(dec, ast.Attribute) and dec.attr == "overload")
        for dec in decorators
    )


def missing_docstrings(tree: ast.Module, relative: str) -> list[Violation]:
    """Docstring-floor findings for one parsed module."""
    problems: list[Violation] = []

    def report(line: int, message: str) -> None:
        problems.append(
            Violation(
                rule=DocsConsistencyRule.code,
                path=relative,
                line=line,
                message=message,
            )
        )

    if ast.get_docstring(tree) is None:
        report(1, "module docstring missing")
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                report(node.lineno, f"class {node.name} has no docstring")
            for child in node.body:
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    if (
                        _is_public(child.name)
                        and ast.get_docstring(child) is None
                        and not _is_overload_stub(child)
                    ):
                        report(
                            child.lineno,
                            f"method {node.name}.{child.name} has no "
                            f"docstring",
                        )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if (
                _is_public(node.name)
                and ast.get_docstring(node) is None
                and not _is_overload_stub(node)
            ):
                report(
                    node.lineno, f"function {node.name} has no docstring"
                )
    return problems


class DocsConsistencyRule(Rule):
    """Architecture coverage + public docstring floor, repo-wide."""

    code = "RA007"
    summary = (
        "docs pages must exist, be linked from README, mention every "
        "repro.* subpackage; public API surfaces need docstrings"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        """Run both docs checks when the analysis root is the repo."""
        root = project.root
        if not (root / "docs").is_dir() or not (root / "src" / "repro").is_dir():
            return []
        found: list[Violation] = []
        found.extend(self._architecture_coverage(root))
        found.extend(self._docstring_floor(root))
        return found

    def _architecture_coverage(self, root: Path) -> Iterable[Violation]:
        docs = root / "docs"
        for page in DOCS_PAGES:
            if not (docs / page).exists():
                yield Violation(
                    rule=self.code,
                    path=f"docs/{page}",
                    line=1,
                    message="core docs page is missing",
                )
        readme_path = root / "README.md"
        if readme_path.exists():
            readme = readme_path.read_text(encoding="utf-8")
            for page in DOCS_PAGES:
                if f"docs/{page}" not in readme:
                    yield Violation(
                        rule=self.code,
                        path="README.md",
                        line=1,
                        message=f"does not link docs/{page}",
                    )
        architecture_path = docs / "architecture.md"
        if architecture_path.exists():
            architecture = architecture_path.read_text(encoding="utf-8")
            for name in repro_subpackages(root):
                if f"repro.{name}" not in architecture:
                    yield Violation(
                        rule=self.code,
                        path="docs/architecture.md",
                        line=1,
                        message=f"does not mention repro.{name}",
                    )

    def _docstring_floor(self, root: Path) -> Iterable[Violation]:
        for package in DOCSTRING_PACKAGES:
            tree_root = root / "src" / "repro" / package
            if not tree_root.is_dir():
                continue
            for path in sorted(tree_root.rglob("*.py")):
                relative = str(path.relative_to(root))
                try:
                    tree = ast.parse(
                        path.read_text(encoding="utf-8"), filename=relative
                    )
                except SyntaxError:
                    continue  # reported by the runner as RA000
                yield from missing_docstrings(tree, relative)


register_rule(DocsConsistencyRule())
