"""RA006 — lock-owning classes mutate their state only under the lock.

The serve-layer concurrency primitives (:mod:`repro.serve.queues`,
:mod:`repro.serve.shm`) follow one discipline: a class that owns a
``self._lock`` mutates its instance attributes *only* inside a
``with self._lock:`` (or a Condition built on that lock) block.  A
mutation that slips outside the lock is invisible to every existing
test — it only manifests as a lost update or a torn read under real
contention, which is exactly when nobody is watching.

Scope: classes in ``repro.serve`` whose ``__init__`` creates a
``threading.Lock``/``RLock`` bound to ``self._lock``.

Mechanics: within such a class, ``self.<attr>`` assignment and
augmented-assignment targets in methods other than ``__init__`` must
appear lexically inside a ``with`` statement whose context expression
is ``self._lock`` or a Condition alias of it (an attribute assigned
``threading.Condition(self._lock)`` in ``__init__``, e.g.
``self._not_empty``).  ``__init__`` is exempt — the object is not yet
shared.  Attributes that are intentionally lock-free (e.g. a
``threading.Event`` flag set from a signal handler) carry a line
pragma with the justification.
"""

from __future__ import annotations

from typing import Iterable
import ast

from repro.analysis.engine import (
    ModuleContext,
    Rule,
    Violation,
    call_name,
    dotted_name,
    register_rule,
)

#: Packages whose lock-owning classes this rule polices.
LOCK_PACKAGES = ("repro.serve",)

#: Constructors that create a mutual-exclusion lock.
LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "Lock", "RLock"}
)

#: Constructors that wrap a lock in a condition variable.
CONDITION_CONSTRUCTORS = frozenset({"threading.Condition", "Condition"})


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guard_aliases(cls: ast.ClassDef) -> set[str]:
    """Attribute names that act as the class's ``_lock`` guard.

    Returns an empty set when the class does not own a ``_lock``.
    Conditions constructed over ``self._lock`` in ``__init__`` (or over
    no explicit lock, while the class also owns ``_lock`` — their
    internal lock is then a distinct guard the class chose) count as
    guards in their own right.
    """
    init = next(
        (
            item
            for item in cls.body
            if isinstance(item, ast.FunctionDef) and item.name == "__init__"
        ),
        None,
    )
    if init is None:
        return set()
    guards: set[str] = set()
    has_lock = False
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        ctor = call_name(node.value)
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            if attr == "_lock" and ctor in LOCK_CONSTRUCTORS:
                has_lock = True
                guards.add(attr)
            elif ctor in CONDITION_CONSTRUCTORS:
                guards.add(attr)
    if not has_lock:
        return set()
    return guards


def _guarded_lines(
    func: ast.FunctionDef, guards: set[str]
) -> set[int]:
    """Line numbers lexically inside a ``with self.<guard>:`` block."""
    lines: set[int] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            # `with self._lock:` and `with self._not_empty:` both
            # acquire the underlying lock; so does an explicit
            # `with self._lock.acquire_timeout(...)`-style call on it.
            target = expr.func.value if isinstance(expr, ast.Call) and isinstance(
                expr.func, ast.Attribute
            ) else expr
            attr = _self_attr(target)
            if attr in guards:
                for inner in ast.walk(node):
                    line = getattr(inner, "lineno", None)
                    if line is not None:
                        lines.add(line)
                break
    return lines


class LockDisciplineRule(Rule):
    """Flag unguarded attribute mutation in ``_lock``-owning classes."""

    code = "RA006"
    summary = (
        "classes owning a _lock (repro.serve) must mutate their "
        "attributes only inside `with self._lock:` blocks"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Report self-attribute mutations outside the owning lock."""
        if not module.package.startswith(LOCK_PACKAGES):
            return []
        found: list[Violation] = []
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guards = _guard_aliases(cls)
            if not guards:
                continue
            for func in cls.body:
                if not isinstance(func, ast.FunctionDef):
                    continue
                if func.name == "__init__":
                    continue  # not yet shared with other threads
                guarded = _guarded_lines(func, guards)
                for node in ast.walk(func):
                    targets: list[ast.expr] = []
                    if isinstance(node, ast.Assign):
                        targets = list(node.targets)
                    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                        targets = [node.target]
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is None or attr in guards:
                            continue
                        line = getattr(target, "lineno", None)
                        if line is not None and line in guarded:
                            continue
                        found.append(
                            module.violation(
                                self.code,
                                node,
                                f"{cls.name}.{func.name} mutates "
                                f"self.{attr} outside `with "
                                f"self._lock:`; {cls.name} owns a lock, "
                                f"so every mutation must hold it",
                            )
                        )
        return found


register_rule(LockDisciplineRule())
