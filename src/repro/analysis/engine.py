"""The reprolint engine: rules, pragmas, the runner and its reports.

The repo's correctness story rests on invariants that ordinary tests
only catch when a test *happens* to exercise a violation: hot kernels
must dispatch through the :class:`~repro.backend.ArrayBackend` registry,
serving queues must be bounded, the gateway's asyncio loop must never
block, shard workers must be spawn-safe, protocol JSON must go through
the exact-float encoder, and lock-owning classes must mutate shared
state under their lock.  This module turns those conventions into
machine-checked rules.

Anatomy
-------

* :class:`Violation` — one finding: rule code, file, line, message.
* :class:`Rule` — the extension point.  A rule declares its ``code``
  (``"RAxxx"``), a one-line ``summary``, and implements
  :meth:`Rule.check_module` (per-file AST checks) and/or
  :meth:`Rule.check_project` (repo-level checks such as docs
  consistency).  Register instances with :func:`register_rule`; the
  bundled rules live in :mod:`repro.analysis.rules` and register on
  import.
* :class:`ModuleContext` / :class:`ProjectContext` — everything a rule
  may look at: source text, parsed AST, the module's dotted package
  path, the repo root.
* :func:`run_analysis` — collect violations over a set of files, apply
  pragma suppressions, and return the surviving findings.

Pragmas
-------

A violation can be suppressed *only with a written justification*::

    self._items = deque()  # repro: noqa[RA002] -- capacity enforced by BoundedQueue logic

suppresses rule RA002 on that line.  A whole file opts out of a rule
with a standalone comment line::

    # repro: noqa-file[RA001] -- gradient reference path, see module docstring

Both forms *require* the ``-- reason`` tail: a pragma without one is
itself reported (code ``RA000``), as is a pragma that suppresses
nothing (so stale opt-outs cannot accumulate silently).  Multiple codes
may share one pragma: ``noqa[RA002,RA006]``.

Running
-------

``python -m repro.analysis src/repro`` is the CI gate; see
:mod:`repro.analysis.__main__` for the CLI and ``docs/static-analysis.md``
for the rule catalog and the guide to adding a rule.
"""

from __future__ import annotations

import abc
import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Pragma grammar (see module docstring).  The ``--`` separated reason
#: is mandatory; its absence is reported as RA000.
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<filewide>-file)?"
    r"\[(?P<codes>[A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)

#: The reserved code under which pragma misuse itself is reported.
PRAGMA_RULE_CODE = "RA000"


@dataclass(frozen=True)
class Violation:
    """One finding of one rule at one source location.

    Attributes:
        rule: the rule code, e.g. ``"RA002"``.
        path: repo-relative (or as-given) path of the offending file.
        line: 1-indexed source line the finding anchors to.
        message: human-readable statement of the violation.
    """

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        """``path:line: CODE message`` — the text-report line."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        """JSON-report shape of this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# repro: noqa`` comment."""

    line: int
    codes: tuple[str, ...]
    reason: str | None
    filewide: bool


@dataclass
class ModuleContext:
    """One Python file as a rule sees it.

    Attributes:
        path: filesystem path of the file.
        relative: the path as reported in violations (repo-relative
            when the file lives under the analysis root).
        package: dotted module path (``"repro.serve.queues"``) when the
            file lives under a recognizable ``repro`` tree, else the
            bare stem.  Rules scope themselves by prefix-matching this.
        source: full source text.
        tree: the parsed :class:`ast.Module`.
    """

    path: Path
    relative: str
    package: str
    source: str
    tree: ast.Module
    _lines: list[str] | None = field(default=None, repr=False)

    @property
    def lines(self) -> list[str]:
        """Source split into lines (lazily, cached)."""
        if self._lines is None:
            self._lines = self.source.splitlines()
        return self._lines

    def violation(self, rule: str, node_or_line, message: str) -> Violation:
        """Build a :class:`Violation` anchored at an AST node or line."""
        line = getattr(node_or_line, "lineno", node_or_line)
        return Violation(
            rule=rule, path=self.relative, line=int(line), message=message
        )

    def pragmas(self) -> list[Pragma]:
        """Every ``# repro: noqa`` pragma in this file, in line order.

        Only real comment tokens count — pragma *examples* inside
        docstrings or string literals are not pragmas.
        """
        found: list[Pragma] = []
        for number, text in _comment_tokens(self.source):
            match = PRAGMA_RE.search(text)
            if match is None:
                continue
            codes = tuple(
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            found.append(
                Pragma(
                    line=number,
                    codes=codes,
                    reason=match.group("reason"),
                    filewide=match.group("filewide") is not None,
                )
            )
        return found


def _comment_tokens(source: str) -> Iterator[tuple[int, str]]:
    """``(line, text)`` for every comment token in ``source``.

    Falls back to nothing on tokenize errors — the AST parse (which
    gates separately) is the authority on whether the file is valid.
    """
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError):
        return


@dataclass
class ProjectContext:
    """Repo-level view for rules that check more than one file.

    Attributes:
        root: the repository root (where ``README.md`` lives).
        modules: every analyzed :class:`ModuleContext`.
    """

    root: Path
    modules: list[ModuleContext]


class Rule(abc.ABC):
    """One mechanically checkable repo invariant.

    Subclasses set :attr:`code` and :attr:`summary` and override at
    least one of :meth:`check_module` / :meth:`check_project`.  Rules
    must be pure functions of their inputs — the engine may call them
    in any order, and the pragma layer (not the rule) decides what is
    reported.
    """

    #: Unique code, ``RA`` + 3 digits.  RA000 is reserved for pragma
    #: misuse reported by the engine itself.
    code: str = "RA999"

    #: One-line description shown by ``--list-rules``.
    summary: str = ""

    def check_module(self, module: ModuleContext) -> Iterable[Violation]:
        """Per-file findings (default: none)."""
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Violation]:
        """Repo-level findings (default: none)."""
        return ()


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register ``rule`` under its code (duplicate codes are an error)."""
    if not re.fullmatch(r"RA\d{3}", rule.code) or rule.code == PRAGMA_RULE_CODE:
        raise ValueError(f"invalid rule code {rule.code!r}")
    if rule.code in _RULES:
        raise ValueError(f"rule {rule.code} is already registered")
    _RULES[rule.code] = rule
    return rule


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by code.

    Importing :mod:`repro.analysis.rules` registers the bundled rules;
    the import lives here (not at module import) so the engine core
    stays usable for unit tests with a custom rule set.
    """
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return tuple(_RULES[code] for code in sorted(_RULES))


# --------------------------------------------------------------------------
# File discovery + context building
# --------------------------------------------------------------------------


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into the sorted set of ``*.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def module_package(path: Path) -> str:
    """Dotted package path of ``path`` under its ``repro`` tree.

    ``src/repro/serve/queues.py`` → ``repro.serve.queues``;
    ``repro/serve/__init__.py`` → ``repro.serve``; files outside any
    ``repro`` directory fall back to their stem, so rules scoped to
    ``repro.*`` simply never match them.
    """
    parts = list(path.parts)
    name = path.stem
    directories = parts[:-1]
    if "repro" in directories:
        # Rightmost "repro" directory anchors the dotted path.
        anchor = len(directories) - 1 - directories[::-1].index("repro")
        dotted = directories[anchor:] + (
            [] if name == "__init__" else [name]
        )
        return ".".join(dotted)
    return name


def load_module(path: Path, root: Path | None = None) -> ModuleContext:
    """Read + parse one file into a :class:`ModuleContext`.

    Raises:
        SyntaxError: the file does not parse (callers surface this as a
            report-level error; broken syntax gates CI regardless).
    """
    source = path.read_text(encoding="utf-8")
    relative = str(path)
    if root is not None:
        try:
            relative = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            relative = str(path)
    return ModuleContext(
        path=path,
        relative=relative,
        package=module_package(path),
        source=source,
        tree=ast.parse(source, filename=relative),
    )


# --------------------------------------------------------------------------
# Pragma application
# --------------------------------------------------------------------------


def apply_pragmas(
    module: ModuleContext,
    violations: list[Violation],
    active: Iterable[str] | None = None,
) -> list[Violation]:
    """Filter ``violations`` through the module's pragmas.

    Returns the surviving violations plus any RA000 findings about the
    pragmas themselves (missing justification, suppressing nothing).

    ``active`` is the set of rule codes that actually ran (``None``
    means all of them).  A ``--select``-narrowed run must not police
    the other rules' pragmas: a pragma naming no active code is
    invisible to this run, and staleness ("suppresses nothing") is
    only reported when *every* code the pragma names was checked —
    otherwise an unselected rule might be the one it suppresses.
    """
    pragmas = module.pragmas()
    if not pragmas:
        return violations
    active_set = None if active is None else set(active)

    surviving: list[Violation] = []
    used: set[int] = set()  # indices into `pragmas`

    def suppressors(violation: Violation) -> Iterator[int]:
        for index, pragma in enumerate(pragmas):
            if pragma.reason is None:
                continue  # an unjustified pragma suppresses nothing
            if violation.rule not in pragma.codes:
                continue
            if pragma.filewide or pragma.line == violation.line:
                yield index

    for violation in violations:
        matched = list(suppressors(violation))
        if matched:
            used.update(matched)
        else:
            surviving.append(violation)

    for index, pragma in enumerate(pragmas):
        named = set(pragma.codes)
        if active_set is not None and not (named & active_set):
            continue  # none of its rules ran: not this run's business
        if pragma.reason is None:
            surviving.append(
                module.violation(
                    PRAGMA_RULE_CODE,
                    pragma.line,
                    "pragma needs a justification: write "
                    "'# repro: noqa[%s] -- <why this is safe>'"
                    % ",".join(pragma.codes),
                )
            )
        elif index not in used:
            if active_set is not None and not named <= active_set:
                continue  # staleness unprovable: a named rule didn't run
            surviving.append(
                module.violation(
                    PRAGMA_RULE_CODE,
                    pragma.line,
                    "pragma suppresses nothing (codes %s); remove it"
                    % ",".join(pragma.codes),
                )
            )
    return surviving


# --------------------------------------------------------------------------
# Runner + reports
# --------------------------------------------------------------------------


@dataclass
class AnalysisReport:
    """Outcome of one :func:`run_analysis` pass."""

    violations: list[Violation]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when no violation survived pragma filtering."""
        return not self.violations

    def render_text(self) -> str:
        """The human report: one line per finding plus a summary."""
        lines = [violation.render() for violation in self.violations]
        lines.append(
            f"repro.analysis: {len(self.violations)} violation(s) in "
            f"{self.files_checked} file(s) "
            f"[rules: {', '.join(self.rules_run)}]"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """The machine report (stable shape, used by CI annotations)."""
        return json.dumps(
            {
                "ok": self.ok,
                "files_checked": self.files_checked,
                "rules": list(self.rules_run),
                "violations": [
                    violation.as_dict() for violation in self.violations
                ],
            },
            indent=2,
            sort_keys=True,
        )


def run_analysis(
    paths: Sequence[Path],
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
    select: Sequence[str] | None = None,
) -> AnalysisReport:
    """Run ``rules`` over every Python file reachable from ``paths``.

    Args:
        paths: files and/or directories to analyze.
        rules: rule instances to run; default :func:`all_rules`.
        root: repository root for project-level rules and path
            reporting; default the current working directory.
        select: restrict to these rule codes (e.g. ``["RA002"]``).

    Returns:
        An :class:`AnalysisReport`; ``report.ok`` is the gate.
    """
    root = (root or Path.cwd()).resolve()
    chosen = list(all_rules() if rules is None else rules)
    if select:
        wanted = set(select)
        unknown = wanted - {rule.code for rule in chosen}
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        chosen = [rule for rule in chosen if rule.code in wanted]

    modules: list[ModuleContext] = []
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        try:
            module = load_module(path, root=root)
        except SyntaxError as exc:
            violations.append(
                Violation(
                    rule=PRAGMA_RULE_CODE,
                    path=str(path),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        modules.append(module)

    for module in modules:
        found: list[Violation] = []
        for rule in chosen:
            found.extend(rule.check_module(module))
        violations.extend(
            apply_pragmas(
                module, found, active=[rule.code for rule in chosen]
            )
        )

    project = ProjectContext(root=root, modules=modules)
    for rule in chosen:
        violations.extend(rule.check_project(project))

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return AnalysisReport(
        violations=violations,
        files_checked=len(modules),
        rules_run=tuple(rule.code for rule in chosen),
    )


# --------------------------------------------------------------------------
# Shared AST helpers used by several rules
# --------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``ast.Attribute``/``ast.Name`` chains as ``"a.b.c"`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """The dotted name a call invokes, if statically resolvable."""
    return dotted_name(call.func)


def enclosing_functions(
    tree: ast.Module,
) -> dict[ast.AST, ast.AST | None]:
    """Map every node to its nearest enclosing function def (or None)."""
    parents: dict[ast.AST, ast.AST | None] = {}

    def visit(node: ast.AST, function: ast.AST | None) -> None:
        for child in ast.iter_child_nodes(node):
            inner = function
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                inner = node
            parents[child] = inner
            visit(child, inner)

    parents[tree] = None
    visit(tree, None)
    return parents


def keyword_value(call: ast.Call, name: str) -> ast.expr | None:
    """The AST value of keyword ``name`` on ``call`` (None if absent)."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_zero_constant(node: ast.expr | None) -> bool:
    """True for the literal ``0`` / ``0.0`` (the non-blocking timeout)."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )
