"""repro.api — the single entry point for all beamforming.

The paper's three execution paths (classical, learned, FPGA-quantized)
share one contract: dataset in, complex IQ image out.  This package
exposes that contract as :class:`Beamformer` with concrete adapters for
every datapath and a string-spec factory:

    from repro.api import create_beamformer

    bf = create_beamformer("mvdr")
    iq = bf.beamform(dataset)

    quantized = create_beamformer("tiny_vbf@20 bits")
    images = quantized.beamform_batch(frames)   # one ToF plan, N frames

Under the hood every adapter fetches its per-pixel delay tables from the
LRU-cached :class:`~repro.beamform.tof.TofPlan`, so repeated frames on
one acquisition geometry skip the delay recomputation entirely (the
architecture and cache contract are documented in DESIGN.md).
"""

from repro.api.base import (
    Beamformer,
    dataset_plan_key,
    dataset_tof_plan,
    dataset_tofc,
    group_indices_by_geometry,
    normalized_tofc,
)
from repro.api.adapters import (
    DasBeamformer,
    LearnedBeamformer,
    MvdrBeamformer,
    QuantizedBeamformer,
)
from repro.api.factory import (
    create_beamformer,
    parse_spec,
    register_beamformer,
    registered_beamformers,
)

__all__ = [
    "Beamformer",
    "DasBeamformer",
    "MvdrBeamformer",
    "LearnedBeamformer",
    "QuantizedBeamformer",
    "create_beamformer",
    "parse_spec",
    "register_beamformer",
    "registered_beamformers",
    "dataset_plan_key",
    "dataset_tof_plan",
    "dataset_tofc",
    "group_indices_by_geometry",
    "normalized_tofc",
]
