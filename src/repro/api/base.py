"""The `Beamformer` abstraction: one interface over every datapath.

Every beamforming path in the repo — classical DAS/MVDR, the three
learned models, and the quantized FPGA datapath — consumes the same
analytic ToFC cube and produces the same ``(nz, nx)`` complex IQ image.
:class:`Beamformer` makes that contract explicit so callers (experiment
runners, benches, serving loops) never dispatch on strings or carry
model-kind metadata out-of-band.

Input preparation is shared here so all adapters get identical numerics:
the ToFC cube always comes from the LRU-cached :class:`TofPlan`
(:func:`repro.beamform.tof.get_tof_plan`), which means any sequence of
frames on one acquisition geometry — a ``beamform_batch`` call, a bench
sweep, repeated serving traffic — computes the per-pixel delay tables
exactly once.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

from repro.backend import Array, ArrayBackend, use_backend
from repro.beamform.tof import TofPlan, get_tof_plan, plan_cache_key


def dataset_plan_key(dataset: Any) -> tuple[Any, ...]:
    """Cheap acquisition-geometry identity of a dataset (no plan build).

    Shares :func:`repro.beamform.tof.plan_cache_key`'s definition, so two
    datasets with equal keys are guaranteed to resolve to the same cached
    :class:`TofPlan`.  Batch execution and the serving scheduler both
    group frames by this key.
    """
    key: tuple[Any, ...] = plan_cache_key(
        dataset.probe,
        dataset.grid,
        dataset.angle_rad,
        dataset.sound_speed_m_s,
        getattr(dataset, "t_start_s", 0.0),
        int(np.asarray(dataset.rf).shape[0]),
    )
    return key


def group_indices_by_geometry(datasets: Sequence[Any]) -> list[list[int]]:
    """Partition dataset indices into same-geometry runs, in first-seen
    order; order within each group follows the input order."""
    groups: dict[tuple[Any, ...], list[int]] = {}
    for index, dataset in enumerate(datasets):
        groups.setdefault(dataset_plan_key(dataset), []).append(index)
    return list(groups.values())


def dataset_tof_plan(dataset: Any) -> TofPlan:
    """The (cached) delay plan for a dataset's acquisition geometry."""
    return get_tof_plan(
        dataset.probe,
        dataset.grid,
        int(np.asarray(dataset.rf).shape[0]),
        angle_rad=dataset.angle_rad,
        sound_speed_m_s=dataset.sound_speed_m_s,
        t_start_s=getattr(dataset, "t_start_s", 0.0),
    )


def dataset_tofc(dataset: Any) -> Array:
    """Analytic ToFC cube of a dataset through the cached plan."""
    tofc: Array = dataset_tof_plan(dataset).apply_analytic(dataset.rf)
    return tofc


def normalized_tofc(dataset: Any) -> Array:
    """ToFC cube normalized to [-1, 1] — the learned models' convention.

    Raises:
        ValueError: when the dataset contains no signal at all (a silent
            ToFC cube cannot be normalized; this guard applies to the
            float *and* quantized datapaths).
    """
    tofc = dataset_tofc(dataset)
    peak = np.abs(tofc).max()
    if peak == 0.0:
        name = getattr(dataset, "name", "<unnamed>")
        raise ValueError(f"dataset {name} has silent ToFC data")
    normalized: Array = tofc / peak
    return normalized


class Beamformer(abc.ABC):
    """Abstract single-angle plane-wave beamformer.

    Concrete adapters live in :mod:`repro.api.adapters`; build them
    directly or through :func:`repro.api.create_beamformer`.
    """

    #: Short machine-readable identity, e.g. ``"das"`` or ``"tiny_vbf"``.
    name: str = "beamformer"

    #: Compute backend bound to this instance (a registered name, an
    #: :class:`~repro.backend.ArrayBackend`, or ``None`` to inherit the
    #: ambient backend — see :mod:`repro.backend` for the precedence).
    backend: "str | ArrayBackend | None" = None

    def backend_scope(self) -> use_backend:
        """Context manager activating this instance's bound backend.

        A ``None`` binding yields a no-op scope, so adapters wrap their
        hot paths unconditionally::

            with self.backend_scope():
                ...kernels dispatch through the bound backend...
        """
        return use_backend(self.backend)

    @abc.abstractmethod
    def beamform(self, dataset: Any) -> Array:
        """Beamform one dataset -> ``(nz, nx)`` complex IQ image.

        ``dataset`` is any object exposing ``rf``, ``probe``, ``grid``,
        ``angle_rad`` and ``sound_speed_m_s`` (e.g.
        :class:`repro.ultrasound.datasets.PlaneWaveDataset`).
        """

    def beamform_batch(self, datasets: Sequence[Any]) -> list[Array]:
        """Beamform many datasets -> list of complex IQ images.

        The default implementation loops over :meth:`beamform`, but
        *grouped by acquisition geometry* (:func:`dataset_plan_key`)
        rather than in input order: a batch that interleaves more
        geometries than the plan cache holds would otherwise rebuild its
        delay tables on every frame.  Results always come back in input
        order.  Adapters that can exploit true batch execution (stacking
        frames through one model forward) override this.
        """
        datasets = list(datasets)
        images: dict[int, Array] = {}
        for group in group_indices_by_geometry(datasets):
            for index in group:
                images[index] = self.beamform(datasets[index])
        return [images[index] for index in range(len(datasets))]

    @abc.abstractmethod
    def describe(self) -> dict[str, Any]:
        """Self-description: ``name``, ``backend`` and the knobs that
        select this beamformer (scheme, scale, f-number, ...)."""

    def __repr__(self) -> str:
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in self.describe().items()
            if key != "name"
        )
        return f"{type(self).__name__}({params})"
