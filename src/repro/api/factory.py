"""String-spec factory and registry for beamformers.

A *spec* selects a beamformer the way a config file or CLI flag would:

====================  ===============================================
spec                  beamformer
====================  ===============================================
``"das"``             :class:`~repro.api.adapters.DasBeamformer`
``"mvdr"``            :class:`~repro.api.adapters.MvdrBeamformer`
``"tiny_vbf"``        :class:`~repro.api.adapters.LearnedBeamformer`
``"tiny_cnn"``        (idem, Tiny-CNN baseline)
``"fcnn"``            (idem, FCNN baseline)
``"tiny_vbf@float"``  :class:`~repro.api.adapters.QuantizedBeamformer`
``"tiny_vbf@20 bits"``  (idem, any Table-III scheme after ``@``)
====================  ===============================================

The registry is extensible: :func:`register_beamformer` adds new names
(experimental models, remote backends, ...) without touching callers
that dispatch through :func:`create_beamformer`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.api.adapters import (
    DasBeamformer,
    LearnedBeamformer,
    MvdrBeamformer,
    QuantizedBeamformer,
)
from repro.api.base import Beamformer
from repro.models.registry import MODEL_KINDS

#: A factory receives the parsed spec parts plus passthrough kwargs and
#: returns a ready :class:`Beamformer`.
BeamformerFactory = Callable[..., Beamformer]

_REGISTRY: dict[str, BeamformerFactory] = {}


def register_beamformer(
    name: str, factory: BeamformerFactory, overwrite: bool = False
) -> None:
    """Register ``factory`` under ``name`` for :func:`create_beamformer`.

    The factory is called as ``factory(scheme=..., scale=..., seed=...,
    model=..., **kwargs)``; ``scheme`` is the part after ``@`` in the
    spec (``None`` when absent) and factories that do not support
    quantized execution must reject a non-``None`` scheme.
    """
    if not name or "@" in name:
        raise ValueError(f"invalid beamformer name {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"beamformer {name!r} already registered")
    _REGISTRY[name] = factory


def registered_beamformers() -> tuple[str, ...]:
    """Names currently creatable through :func:`create_beamformer`."""
    return tuple(sorted(_REGISTRY))


def parse_spec(spec: str) -> tuple[str, str | None]:
    """Split ``"name"`` / ``"name@scheme"`` into its parts."""
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"beamformer spec must be a non-empty str, "
                         f"got {spec!r}")
    name, sep, scheme = spec.partition("@")
    name = name.strip()
    scheme = scheme.strip()
    if not name or (sep and not scheme):
        raise ValueError(f"malformed beamformer spec {spec!r}")
    return name, (scheme if sep else None)


def create_beamformer(
    spec: str,
    scale: str = "small",
    seed: int = 0,
    model: Any = None,
    **kwargs: Any,
) -> Beamformer:
    """Build any registered beamformer from its string spec.

    Args:
        spec: ``"name"`` or ``"name@scheme"`` (see module docstring).
        scale: model scale for learned/quantized specs (``"small"`` or
            ``"paper"``); ignored by classical ones.
        seed: training seed for learned/quantized specs.
        model: optional pre-trained :class:`~repro.nn.Model` to wrap
            instead of loading from the weight cache.
        **kwargs: forwarded to the factory (e.g. ``f_number`` for DAS,
            ``config`` for MVDR, ``backend=`` — a registered
            :mod:`repro.backend` name such as ``"numpy-fast"`` — for
            every built-in adapter, and ``pe=`` — ``"emu"`` or
            ``"emu-per-level"`` — to run a quantized
            ``tiny_vbf@<scheme>`` spec on the bit-accurate integer PE
            emulator instead of the modeled float datapath).

    Returns:
        A ready-to-use :class:`Beamformer`.
    """
    name, scheme = parse_spec(spec)
    if name not in _REGISTRY:
        known = ", ".join(registered_beamformers())
        raise ValueError(
            f"unknown beamformer {name!r}; registered: {known}"
        )
    return _REGISTRY[name](
        scheme=scheme, scale=scale, seed=seed, model=model, **kwargs
    )


# --------------------------------------------------------------------------
# Built-in registrations
# --------------------------------------------------------------------------


def _classical_factory(cls: type[Beamformer]) -> BeamformerFactory:
    def factory(
        scheme: str | None = None,
        scale: str | None = None,
        seed: int | None = None,
        model: Any = None,
        **kwargs: Any,
    ) -> Beamformer:
        if scheme is not None:
            raise ValueError(
                f"{cls.name!r} has no quantized datapath; '@{scheme}' "
                "specs apply to 'tiny_vbf' only"
            )
        if model is not None:
            raise ValueError(f"{cls.name!r} does not take a model")
        if kwargs.get("pe") is not None:
            raise ValueError(
                f"{cls.name!r} has no PE datapath; pe= applies to "
                "quantized 'tiny_vbf@<scheme>' specs only"
            )
        kwargs.pop("pe", None)
        return cls(**kwargs)

    return factory


def _learned_factory(kind: str) -> BeamformerFactory:
    def factory(
        scheme: str | None = None,
        scale: str = "small",
        seed: int = 0,
        model: Any = None,
        **kwargs: Any,
    ) -> Beamformer:
        if scheme is not None:
            if kind != "tiny_vbf":
                raise ValueError(
                    f"quantized execution exists for 'tiny_vbf' only, "
                    f"not {kind!r}"
                )
            return QuantizedBeamformer(
                scheme, model=model, scale=scale, seed=seed, **kwargs
            )
        if kwargs.get("pe") is not None:
            raise ValueError(
                "pe= selects the emulated PE datapath and requires a "
                f"quantized spec ('{kind}@<scheme>'), not {kind!r}"
            )
        kwargs.pop("pe", None)
        return LearnedBeamformer(
            kind, model=model, scale=scale, seed=seed, **kwargs
        )

    return factory


register_beamformer("das", _classical_factory(DasBeamformer))
register_beamformer("mvdr", _classical_factory(MvdrBeamformer))
for _kind in MODEL_KINDS:
    register_beamformer(_kind, _learned_factory(_kind))
