"""Concrete :class:`~repro.api.base.Beamformer` adapters.

====================  ===================================================
adapter               wraps
====================  ===================================================
``DasBeamformer``     boxcar-apodized Delay-and-Sum (paper baseline)
``MvdrBeamformer``    MVDR with spatial smoothing + diagonal loading
``LearnedBeamformer`` a trained model (Tiny-VBF / Tiny-CNN / FCNN) plus
                      its input layout, loaded from the weight cache
``QuantizedBeamformer``  Tiny-VBF through the simulated FPGA datapath
                      (:class:`~repro.fpga.accelerator.TinyVbfAccelerator`)
                      under a Table-III quantization scheme
====================  ===================================================

All adapters prepare their input through the shared plan-cached helpers
in :mod:`repro.api.base`, so the float and quantized datapaths see the
same normalization (including the silent-frame guard) and repeated
frames on one geometry never recompute the delay tables.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.backend import Array, ArrayBackend, resolve_backend
from repro.api.base import (
    Beamformer,
    dataset_tofc,
    group_indices_by_geometry,
    normalized_tofc,
)
from repro.beamform.apodization import boxcar_rx_apodization
from repro.beamform.das import das_beamform
from repro.beamform.mvdr import MvdrConfig, mvdr_beamform
from repro.models.common import stacked_to_complex
from repro.models.registry import MODEL_KINDS, model_input
from repro.nn import Model
from repro.quant.schemes import SCHEMES, QuantizationScheme
from repro.utils.validation import require_in


def _backend_label(backend: "str | ArrayBackend | None") -> str:
    """Human-readable backend identity for :meth:`Beamformer.describe`."""
    if backend is None:
        return "default"
    return backend.name if isinstance(backend, ArrayBackend) else backend


def _resolve_model(
    kind: str, model: Model | None, scale: str, seed: int
) -> Model:
    """Use the supplied model or load (training on first use) the cached
    one.  Imported lazily: repro.training pulls this package back in."""
    if model is not None:
        return model
    from repro.training.cache import get_trained_model

    trained: Model = get_trained_model(kind, scale=scale, seed=seed)
    return trained


class DasBeamformer(Beamformer):
    """Boxcar-apodized Delay-and-Sum over the cached ToF plan.

    Boxcar is the paper's data-independent DAS baseline; its higher
    sidelobes are exactly the contrast deficit the learned beamformers
    are meant to fix.
    """

    name = "das"

    def __init__(
        self,
        f_number: float = 1.75,
        backend: "str | ArrayBackend | None" = None,
    ) -> None:
        self.f_number = f_number
        self.backend = resolve_backend(backend)
        self._apod_key: tuple[Any, ...] | None = None
        self._apod: Array | None = None

    def _apodization(self, dataset: Any) -> Array:
        key = (
            dataset.probe,
            dataset.grid.x_m.tobytes(),
            dataset.grid.z_m.tobytes(),
            self.f_number,
        )
        if key != self._apod_key:
            self._apod = boxcar_rx_apodization(
                dataset.probe, dataset.grid, f_number=self.f_number
            )
            self._apod_key = key
        apod = self._apod
        assert apod is not None  # set whenever _apod_key matches
        return apod

    def beamform(self, dataset: Any) -> Array:
        """Apodized delay-and-sum of one dataset -> complex IQ image."""
        with self.backend_scope():
            image: Array = das_beamform(
                dataset_tofc(dataset), self._apodization(dataset)
            )
            return image

    def describe(self) -> dict[str, Any]:
        """Identity and knobs: ``{name, backend, f_number, ...}``."""
        return {"name": self.name, "backend": "classical",
                "compute_backend": _backend_label(self.backend),
                "f_number": self.f_number}


class MvdrBeamformer(Beamformer):
    """Minimum-variance beamformer (the paper's training ground truth)."""

    name = "mvdr"

    def __init__(
        self,
        config: MvdrConfig | None = None,
        backend: "str | ArrayBackend | None" = None,
    ) -> None:
        self.config = config
        self.backend = resolve_backend(backend)

    def beamform(self, dataset: Any) -> Array:
        """Minimum-variance beamform of one dataset -> complex IQ."""
        with self.backend_scope():
            image: Array = mvdr_beamform(dataset_tofc(dataset), self.config)
            return image

    def describe(self) -> dict[str, Any]:
        """Identity and the effective :class:`MvdrConfig` knobs."""
        config = self.config or MvdrConfig()
        return {
            "name": self.name,
            "backend": "classical",
            "compute_backend": _backend_label(self.backend),
            "subaperture": config.subaperture,
            "diagonal_loading": config.diagonal_loading,
            "axial_smoothing": config.axial_smoothing,
        }


class LearnedBeamformer(Beamformer):
    """A trained model plus its input layout behind the uniform API.

    The model-kind string that legacy callers had to carry out-of-band
    (``predict_iq(model, kind, dataset)``) is bound at construction, so
    a ``LearnedBeamformer`` can be passed anywhere a classical one can.
    """

    def __init__(
        self,
        kind: str,
        model: Model | None = None,
        scale: str = "small",
        seed: int = 0,
        backend: "str | ArrayBackend | None" = None,
    ) -> None:
        require_in("kind", kind, MODEL_KINDS)
        self.kind = kind
        self.name = kind
        self.scale = scale
        self.seed = seed
        self.backend = resolve_backend(backend)
        self.model = _resolve_model(kind, model, scale, seed)

    def _forward(self, x: Array) -> Array:
        y: Array = self.model.forward(x, training=False)
        return y

    def beamform(self, dataset: Any) -> Array:
        """Model-predicted complex IQ image for one dataset."""
        with self.backend_scope():
            x = model_input(self.kind, normalized_tofc(dataset))
            image: Array = stacked_to_complex(self._forward(x)[0])
            return image

    def beamform_batch(self, datasets: Sequence[Any]) -> list[Array]:
        """Stack same-geometry frames through one model forward pass.

        Frames are still normalized per frame (the training convention).
        Mixed-geometry batches are partitioned by
        :func:`~repro.api.base.group_indices_by_geometry` and each group
        gets its own stacked forward, so plan locality and batch
        execution survive interleaved geometries; results come back in
        input order.
        """
        datasets = list(datasets)
        images: dict[int, Array] = {}
        with self.backend_scope():
            for group in group_indices_by_geometry(datasets):
                if len(group) == 1:
                    images[group[0]] = self.beamform(datasets[group[0]])
                    continue
                stacked = np.stack(
                    [normalized_tofc(datasets[index]) for index in group]
                )
                iq = self._forward(model_input(self.kind, stacked))
                for index, frame in zip(group, iq):
                    images[index] = stacked_to_complex(frame)
        return [images[index] for index in range(len(datasets))]

    def describe(self) -> dict[str, Any]:
        """Identity and knobs: ``{name, backend, kind, scale, ...}``."""
        return {
            "name": self.name,
            "backend": "learned",
            "compute_backend": _backend_label(self.backend),
            "kind": self.kind,
            "scale": self.scale,
            "seed": self.seed,
            "n_parameters": self.model.n_parameters,
        }


class QuantizedBeamformer(LearnedBeamformer):
    """Tiny-VBF through the simulated FPGA datapath (Table III schemes).

    Shares :class:`LearnedBeamformer`'s input preparation — including
    the silent-frame normalization guard — and swaps the float forward
    pass for the bit-accurate quantized one.  ``pe=`` selects the
    substrate: ``None`` keeps the modeled fake-quantized path,
    ``"emu"`` runs the round-at-the-end integer PE emulator and
    ``"emu-per-level"`` its per-level-rounding variant (see
    :mod:`repro.fpga.emu` and docs/fpga-emulation.md).
    """

    def __init__(
        self,
        scheme: str | QuantizationScheme = "float",
        model: Model | None = None,
        scale: str = "small",
        seed: int = 0,
        backend: "str | ArrayBackend | None" = None,
        pe: str | None = None,
    ) -> None:
        from repro.fpga.accelerator import TinyVbfAccelerator
        from repro.quant.qexec import resolve_pe_mode

        if isinstance(scheme, str):
            require_in("scheme", scheme, tuple(SCHEMES))
            scheme = SCHEMES[scheme]
        super().__init__(
            "tiny_vbf", model=model, scale=scale, seed=seed,
            backend=backend,
        )
        self.scheme = scheme
        self.name = f"tiny_vbf@{scheme.name}"
        self.accelerator = TinyVbfAccelerator(self.model, scheme)
        self._pe_mode = resolve_pe_mode(pe)
        self.pe = pe

    def _forward(self, x: Array) -> Array:
        if self._pe_mode is not None:
            from repro.backend.pe_emu import emulated_pe_scope

            with emulated_pe_scope(self.scheme, self._pe_mode):
                emulated: Array = self.accelerator.run(x)
                return emulated
        y: Array = self.accelerator.run(x)
        return y

    def beamform_batch(self, datasets: Sequence[Any]) -> list[Array]:
        """Geometry-grouped per-frame execution (no stacked forward).

        The modeled FPGA is a frame-serial device — it has no batch
        dimension, and the heavy after-every-op re-quantization makes a
        stacked software pass strictly slower than the loop.  The
        grouped default still preserves ToF-plan locality per geometry.
        """
        return Beamformer.beamform_batch(self, datasets)

    def describe(self) -> dict[str, Any]:
        """The learned description plus scheme and PE execution mode."""
        description = super().describe()
        description.update(
            name=self.name, backend="fpga", scheme=self.scheme.name,
            pe=self.pe or "modeled",
        )
        return description
