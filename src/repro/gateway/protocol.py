"""Wire format of the gateway: length-prefixed JSON headers + raw arrays.

Every message on a gateway connection is one *frame*::

    +----------------+----------------------+------------------------+
    | header length  | header (UTF-8 JSON)  | payload (raw bytes)    |
    | 4 bytes, !I    | `header length` B    | header["nbytes"] B     |
    +----------------+----------------------+------------------------+

The header is a flat JSON object with at least ``"type"`` (the message
kind) and ``"nbytes"`` (payload length, 0 when absent).  Array payloads
— RF frames client→server, IQ images server→client — travel as their
raw contiguous bytes; the header carries ``shape`` and ``dtype``
(NumPy dtype *string*, e.g. ``"<f8"``, which preserves byte order), so
the receiving side rebuilds the array without pickling and the round
trip is byte-exact.  Everything else (geometry negotiation, telemetry,
errors) is plain JSON.

Versioning rules
----------------

``PROTOCOL_VERSION`` is a single integer carried in the ``hello``
header (``"v"``).  The server accepts exactly its own version and
answers anything else with an ``error`` of code ``version_mismatch``
naming the version it speaks — clients fail fast instead of
misparsing.  Compatible additions (new optional header fields, new
message types) do not bump the version; changes to the framing, to
existing header fields, or to the meaning of a message type do.

Message types (client → server):

* ``hello`` — opens the session; carries ``v`` and the session
  ``geometry`` (see :func:`geometry_to_wire`).  An optional
  ``"observe": true`` opens a read-only *observer* session instead
  (no geometry, no frames, exempt from the session cap) — what the
  ``python -m repro.obs`` monitoring CLI speaks.
* ``frame`` — one RF frame: ``seq`` (client-chosen id echoed back on
  the result), ``shape``/``dtype``/``nbytes`` + payload.
* ``stats`` — request a telemetry snapshot.
* ``metrics`` — request the metrics registry: the reply header
  carries the JSON form, the payload the Prometheus text exposition.
* ``traces`` — request recently completed traces (optional ``n``,
  default 16).
* ``bye`` — graceful goodbye; the server answers ``bye_ok`` after the
  session's in-flight frames have completed.

Message types (server → client):

* ``hello_ok`` — session admitted: ``session`` id and the negotiated
  ``max_inflight`` credit.
* ``result`` — one beamformed IQ image: ``seq``, ``shape``/``dtype``/
  ``nbytes`` + payload.  Results may arrive out of submission order;
  match by ``seq``.
* ``reject`` — frame ``seq`` was *not* admitted (``code`` one of
  :data:`REJECT_CODES`); the stream stays usable.
* ``stats_ok`` — telemetry snapshot (``stats`` object).
* ``metrics_ok`` — metrics snapshot: ``metrics`` object in the header
  plus the UTF-8 Prometheus exposition as the payload.
* ``traces_ok`` — completed traces (``traces`` list of span trees).
* ``bye_ok`` — goodbye acknowledged; the server closes after sending.
* ``error`` — fatal session error (``code`` one of
  :data:`ERROR_CODES`); the server closes the connection after
  sending it.

This module is transport-agnostic on purpose: the byte-level helpers
(:func:`pack_message`, :func:`split_header`) are shared by the asyncio
server and the blocking-socket client, which each add their own I/O
loop on top.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.beamform.geometry import ImagingGrid
from repro.ultrasound.probe import LinearProbe

#: Protocol revision spoken by this tree (see module docstring for the
#: bump rules).
PROTOCOL_VERSION = 1

#: Hard cap on the JSON header, generous for any geometry this repo can
#: produce (a paper-scale grid is ~10 KB of coordinates) while keeping a
#: garbage length prefix from allocating gigabytes.
MAX_HEADER_BYTES = 4 * 1024 * 1024

#: Hard cap on a message payload (a paper-scale RF frame is ~2 MB).
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024

_LEN = struct.Struct("!I")

#: Fatal error codes carried by ``error`` messages.
ERROR_CODES = (
    "malformed",          # unparseable framing or header
    "version_mismatch",   # hello spoke a different PROTOCOL_VERSION
    "bad_geometry",       # hello geometry failed validation
    "bad_frame",          # frame violates the negotiated geometry
    "session_cap",        # max concurrent sessions reached
    "draining",           # server is shutting down; no new work
    "internal",           # unexpected server-side failure
)

#: Non-fatal per-frame reject codes carried by ``reject`` messages.
REJECT_CODES = (
    "inflight_cap",       # session exceeded its in-flight credit
    "overloaded",         # gateway feed queue is full (global pressure)
    "draining",           # frame arrived while the server drains
    "bad_frame",          # silent/non-finite frame refused at the door
)


class ProtocolError(Exception):
    """A peer violated the wire format (framing, header, or payload)."""

    def __init__(self, code: str, message: str) -> None:
        """Record the error ``code`` (one of :data:`ERROR_CODES`) and a
        human-readable ``message``."""
        super().__init__(message)
        self.code = code


def pack_message(header: dict, payload: bytes = b"") -> bytes:
    """Serialize one message frame (header length + JSON + payload).

    Args:
        header: flat JSON-serializable dict; ``nbytes`` is filled in
            from ``payload`` (a mismatching existing value is an error).
        payload: raw payload bytes (may be empty).

    Returns:
        The exact bytes to put on the wire.

    Raises:
        ProtocolError: the header does not fit ``MAX_HEADER_BYTES`` or
            declares an ``nbytes`` that contradicts ``payload``.
    """
    declared = header.get("nbytes", len(payload))
    if declared != len(payload):
        raise ProtocolError(
            "malformed",
            f"header nbytes={declared} but payload is "
            f"{len(payload)} bytes",
        )
    header = dict(header, nbytes=len(payload))
    blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_HEADER_BYTES:
        raise ProtocolError(
            "malformed",
            f"header of {len(blob)} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte cap",
        )
    return _LEN.pack(len(blob)) + blob + payload


def header_length(prefix: bytes) -> int:
    """Decode and validate the 4-byte length prefix of a message.

    Raises:
        ProtocolError: the declared header length exceeds
            ``MAX_HEADER_BYTES`` (or is zero) — the framing is garbage
            and the connection cannot be resynchronized.
    """
    (length,) = _LEN.unpack(prefix)
    if length == 0 or length > MAX_HEADER_BYTES:
        raise ProtocolError(
            "malformed",
            f"header length {length} outside (0, {MAX_HEADER_BYTES}]",
        )
    return length


def parse_header(blob: bytes) -> dict:
    """Parse and validate one JSON header blob.

    Raises:
        ProtocolError: the blob is not a JSON object, lacks ``type``,
            or declares an out-of-range ``nbytes``.
    """
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("malformed", f"unparseable header: {exc}")
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(
            "malformed", "header must be a JSON object with a 'type'"
        )
    nbytes = header.get("nbytes", 0)
    if (
        not isinstance(nbytes, int)
        or nbytes < 0
        or nbytes > MAX_PAYLOAD_BYTES
    ):
        raise ProtocolError(
            "malformed",
            f"payload length {nbytes!r} outside [0, {MAX_PAYLOAD_BYTES}]",
        )
    return header


# --------------------------------------------------------------------------
# Array payloads
# --------------------------------------------------------------------------


def array_header(kind: str, array: np.ndarray, **extra) -> dict:
    """Header fields describing ``array`` as a raw-bytes payload."""
    array = np.ascontiguousarray(array)
    return {
        "type": kind,
        "shape": list(array.shape),
        "dtype": array.dtype.str,
        "nbytes": array.nbytes,
        **extra,
    }


def array_payload(array: np.ndarray) -> bytes:
    """The raw contiguous bytes of ``array`` (C order)."""
    return np.ascontiguousarray(array).tobytes()


def decode_array(header: dict, payload: bytes) -> np.ndarray:
    """Rebuild the array a header + payload pair describes.

    The result is a read-only view over ``payload`` (zero copy); byte
    content is exactly what the sender serialized.

    Raises:
        ProtocolError: shape/dtype are missing or inconsistent with the
            payload length.
    """
    try:
        dtype = np.dtype(header["dtype"])
        shape = tuple(int(n) for n in header["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            "malformed", f"array header missing shape/dtype: {exc}"
        )
    if dtype.hasobject:
        raise ProtocolError(
            "malformed", "object dtypes cannot travel as raw bytes"
        )
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    if expected != len(payload):
        raise ProtocolError(
            "malformed",
            f"array {shape}/{dtype.str} needs {expected} bytes, "
            f"payload has {len(payload)}",
        )
    return np.frombuffer(payload, dtype=dtype).reshape(shape)


# --------------------------------------------------------------------------
# Geometry negotiation
# --------------------------------------------------------------------------


def geometry_to_wire(
    probe: LinearProbe,
    grid: ImagingGrid,
    angle_rad: float,
    sound_speed_m_s: float,
    t_start_s: float,
    rf_shape: tuple[int, int],
    rf_dtype: str,
) -> dict:
    """Encode one acquisition geometry as a JSON-safe dict.

    Floats ride JSON as their shortest round-tripping repr, so the
    decoded values are bit-identical to the originals — the decoded
    geometry therefore resolves to the *same* cached ToF plan as the
    sender's, which is what makes gateway output bitwise equal to
    offline ``beamform``.
    """
    return {
        "probe": {
            "n_elements": probe.n_elements,
            "pitch_m": probe.pitch_m,
            "element_width_m": probe.element_width_m,
            "center_frequency_hz": probe.center_frequency_hz,
            "sampling_frequency_hz": probe.sampling_frequency_hz,
        },
        "grid": {
            "x_m": [float(x) for x in grid.x_m],
            "z_m": [float(z) for z in grid.z_m],
        },
        "angle_rad": float(angle_rad),
        "sound_speed_m_s": float(sound_speed_m_s),
        "t_start_s": float(t_start_s),
        "rf_shape": [int(n) for n in rf_shape],
        "rf_dtype": str(rf_dtype),
    }


def dataset_geometry(dataset) -> dict:
    """The wire geometry of a dataset-like object (see
    :meth:`repro.api.base.Beamformer.beamform` for the duck type)."""
    rf = np.asarray(dataset.rf)
    return geometry_to_wire(
        dataset.probe,
        dataset.grid,
        dataset.angle_rad,
        dataset.sound_speed_m_s,
        getattr(dataset, "t_start_s", 0.0),
        rf.shape,
        rf.dtype.str,
    )


class SessionGeometry:
    """A decoded, validated session geometry.

    Attributes:
        probe: the rebuilt :class:`~repro.ultrasound.probe.LinearProbe`.
        grid: the rebuilt :class:`~repro.beamform.geometry.ImagingGrid`.
        angle_rad / sound_speed_m_s / t_start_s: acquisition scalars.
        rf_shape: required ``(n_samples, n_elements)`` of every frame.
        rf_dtype: required NumPy dtype of every frame.
    """

    def __init__(
        self,
        probe: LinearProbe,
        grid: ImagingGrid,
        angle_rad: float,
        sound_speed_m_s: float,
        t_start_s: float,
        rf_shape: tuple[int, int],
        rf_dtype: np.dtype,
    ) -> None:
        """Store the decoded fields (built via :func:`geometry_from_wire`)."""
        self.probe = probe
        self.grid = grid
        self.angle_rad = angle_rad
        self.sound_speed_m_s = sound_speed_m_s
        self.t_start_s = t_start_s
        self.rf_shape = rf_shape
        self.rf_dtype = rf_dtype


def geometry_from_wire(wire: dict) -> SessionGeometry:
    """Decode and validate a ``hello`` geometry dict.

    Raises:
        ProtocolError: code ``bad_geometry`` on any missing field or a
            value the probe/grid constructors reject.
    """
    try:
        probe = LinearProbe(
            n_elements=int(wire["probe"]["n_elements"]),
            pitch_m=float(wire["probe"]["pitch_m"]),
            element_width_m=float(wire["probe"]["element_width_m"]),
            center_frequency_hz=float(
                wire["probe"]["center_frequency_hz"]
            ),
            sampling_frequency_hz=float(
                wire["probe"]["sampling_frequency_hz"]
            ),
        )
        grid = ImagingGrid(
            x_m=np.asarray(wire["grid"]["x_m"], dtype=float),
            z_m=np.asarray(wire["grid"]["z_m"], dtype=float),
        )
        rf_shape = tuple(int(n) for n in wire["rf_shape"])
        rf_dtype = np.dtype(str(wire["rf_dtype"]))
        if len(rf_shape) != 2 or min(rf_shape) < 1:
            raise ValueError(f"rf_shape must be 2-D, got {rf_shape}")
        if rf_dtype.hasobject:
            raise ValueError("rf_dtype cannot be an object dtype")
        if rf_shape[1] != probe.n_elements:
            raise ValueError(
                f"rf_shape {rf_shape} disagrees with "
                f"{probe.n_elements} probe elements"
            )
        return SessionGeometry(
            probe=probe,
            grid=grid,
            angle_rad=float(wire["angle_rad"]),
            sound_speed_m_s=float(wire["sound_speed_m_s"]),
            t_start_s=float(wire.get("t_start_s", 0.0)),
            rf_shape=rf_shape,
            rf_dtype=rf_dtype,
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("bad_geometry", f"invalid geometry: {exc}")


# --------------------------------------------------------------------------
# Blocking-socket I/O (used by the pure-Python client)
# --------------------------------------------------------------------------


def send_message(sock, header: dict, payload: bytes = b"") -> None:
    """Write one message frame to a blocking socket."""
    sock.sendall(pack_message(header, payload))


def _recv_exact(sock, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed with {remaining} of {count} bytes "
                f"outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock) -> tuple[dict, bytes]:
    """Read one message frame from a blocking socket.

    Returns:
        ``(header, payload)``.

    Raises:
        ConnectionError: the peer closed mid-message.
        ProtocolError: the peer sent garbage framing.
    """
    length = header_length(_recv_exact(sock, _LEN.size))
    header = parse_header(_recv_exact(sock, length))
    payload = _recv_exact(sock, header.get("nbytes", 0))
    return header, payload
