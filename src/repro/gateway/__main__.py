"""CLI for the gateway: serve beamforming over TCP.

Examples::

    # DAS gateway on port 7355, threaded engine
    PYTHONPATH=src python -m repro.gateway --port 7355

    # Untrained Tiny-VBF over a 4-shard engine, shm transport
    PYTHONPATH=src python -m repro.gateway --port 7355 \\
        --beamformer tiny_vbf --untrained --engine sharded --workers 4

    # Loopback smoke: pick an ephemeral port, print it, serve
    PYTHONPATH=src python -m repro.gateway --port 0

The server runs until interrupted (Ctrl-C / SIGTERM), then drains:
admitted frames complete, results are delivered, sessions close.  The
final telemetry snapshot is printed as JSON on stdout; progress log
lines go to stderr via the ``repro.gateway`` logger.

The same gateway can be started from the serve CLI with
``python -m repro.serve --gateway PORT`` (sharing all its engine
flags); this entry point just adds the gateway-specific knobs.
"""

from __future__ import annotations

import argparse
import json
import logging
import signal
import sys
import threading

from repro.gateway.server import GatewayServer
from repro.serve.__main__ import (
    add_beamformer_args,
    add_control_args,
    add_engine_args,
    add_gateway_args,
    add_obs_args,
    make_beamformer,
    make_controller,
    make_observability,
)
from repro.serve.engine import ServeEngine
from repro.serve.sharding import ShardedServeEngine


def build_parser() -> argparse.ArgumentParser:
    """The gateway CLI: the serve engine flags plus network knobs."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description=(
            "Serve beamforming over TCP: many client sessions "
            "multiplexed onto one micro-batching engine."
        ),
    )
    add_beamformer_args(parser)
    add_engine_args(parser)
    add_gateway_args(parser)
    add_control_args(parser)
    add_obs_args(parser)
    parser.add_argument(
        "--port",
        type=int,
        default=7355,
        help="bind port (0 picks an ephemeral port, printed on start)",
    )
    return parser


def make_engine(args: argparse.Namespace):
    """Build the serving engine the gateway fronts (no image retention).

    The engine carries the CLI's :class:`repro.obs.Observability`
    bundle; :class:`GatewayServer` adopts it from ``engine.obs``, so
    one registry/tracer/event-log spans gateway and engine.
    """
    obs = make_observability(args)
    if args.profile_kernels and args.engine != "sharded":
        from repro.obs.profile import enable_kernel_profiling

        enable_kernel_profiling(obs.metrics, backend=args.backend)
    beamformer = make_beamformer(args)
    if args.engine == "sharded":
        return ShardedServeEngine(
            beamformer,
            n_workers=args.workers,
            transport=args.transport,
            max_batch=args.max_batch,
            max_latency_ms=args.max_latency_ms,
            queue_capacity=args.queue_capacity,
            backpressure="block",
            shard_policy=args.shard_policy,
            restart_workers=args.restart_workers,
            log_every_s=args.log_every,
            keep_images=False,
            observability=obs,
            profile_kernels=args.profile_kernels,
        )
    return ServeEngine(
        beamformer,
        max_batch=args.max_batch,
        max_latency_ms=args.max_latency_ms,
        queue_capacity=args.queue_capacity,
        backpressure="block",
        n_workers=args.workers,
        log_every_s=args.log_every,
        keep_images=False,
        observability=obs,
    )


def run_gateway(args: argparse.Namespace) -> int:
    """Start a gateway from parsed CLI args; block until interrupted.

    Both SIGINT (Ctrl-C) and SIGTERM (container/systemd stop) trigger
    the graceful drain.
    """
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO,
        format="%(asctime)s %(name)s: %(message)s",
    )

    if args.backpressure != "block":
        print(
            "gateway mode requires --backpressure block: loss is "
            "applied at admission via explicit rejects, never by "
            "silent engine-side drops",
            file=sys.stderr,
        )
        return 2

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    engine = make_engine(args)
    server = GatewayServer(
        engine,
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        max_inflight=args.max_inflight,
        feed_capacity=args.feed_capacity,
    )
    # The gateway recreates its telemetry per start(); a callable keeps
    # the controller reading the live instance.
    controller = make_controller(
        args,
        lambda: server.telemetry,
        engine=engine,
        gateway=server,
        observability=engine.obs,
    )
    try:
        server.start()
        if controller is not None:
            controller.start()
            print(
                f"control loop on: SLO p99 <= {args.slo_p99:g}s, "
                f"tick {args.control_interval:g}s"
                + (", autoscale" if args.autoscale else ""),
                file=sys.stderr,
                flush=True,
            )
        print(
            f"gateway ready on {args.host}:{server.port}",
            file=sys.stderr,
            flush=True,
        )
        try:
            threading.Event().wait()  # serve until interrupted
        except KeyboardInterrupt:
            print("draining...", file=sys.stderr, flush=True)
    except KeyboardInterrupt:
        # A signal that landed outside the wait (startup race) or a
        # second interrupt during the drain; fall through — the
        # finally still drains whatever was started.
        pass
    finally:
        if controller is not None:
            controller.stop()
        server.stop()  # idempotent; no-op if start never completed
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    payload = server.stats()
    if controller is not None:
        payload["control"] = controller.status()
    print(json.dumps(payload, indent=2))  # repro: noqa[RA005] -- operator-facing CLI stats, not wire data
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.gateway``."""
    return run_gateway(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
