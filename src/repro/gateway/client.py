"""`GatewayClient` — pure-Python blocking client for the gateway.

The client speaks the wire protocol of :mod:`repro.gateway.protocol`
over one plain ``socket`` per session: no asyncio, no third-party
dependencies, importable anywhere (a probe-side acquisition script, a
test, another service).  One connection is one *session* bound to one
acquisition geometry; open several clients (e.g. from threads) for
concurrent sessions.

Typical use::

    from repro.gateway import GatewayClient
    from repro.gateway.protocol import dataset_geometry

    with GatewayClient(host, port) as client:
        client.connect(dataset_geometry(dataset))
        for image in client.stream([f.rf for f in frames]):
            ...                      # complex IQ, submission order
        print(client.stats()["engine"]["throughput_frames_per_s"])

Lower level, the client pipelines explicitly: :meth:`submit` sends one
frame without waiting, :meth:`result` blocks until a given sequence
number's image (results may return out of submission order — e.g. from
a sharded engine — and are matched by ``seq``).  A server ``reject``
surfaces as :class:`GatewayRejected`; a fatal server ``error`` as
:class:`GatewayError` with the protocol error code.
"""

from __future__ import annotations

import select
import socket
from typing import Iterable, Iterator

import numpy as np

from repro.gateway.protocol import (
    PROTOCOL_VERSION,
    array_header,
    array_payload,
    decode_array,
    recv_message,
    send_message,
)


class GatewayError(RuntimeError):
    """The server answered with a fatal protocol ``error`` message."""

    def __init__(self, code: str, message: str) -> None:
        """Record the protocol error ``code`` and server message."""
        super().__init__(f"[{code}] {message}")
        self.code = code


class GatewayRejected(RuntimeError):
    """A submitted frame was rejected (admission control)."""

    def __init__(self, seq: int, code: str, message: str) -> None:
        """Record the rejected frame's ``seq`` and the reject ``code``."""
        super().__init__(f"frame {seq}: [{code}] {message}")
        self.seq = seq
        self.code = code


class GatewayClient:
    """One gateway session over one blocking TCP connection.

    Args:
        host: gateway address.
        port: gateway port.
        timeout: socket timeout in seconds applied to every blocking
            operation (``socket.timeout`` propagates on expiry).

    The client is a context manager; leaving the ``with`` block sends
    ``bye`` (waiting for in-flight results to drain server-side) and
    closes the socket.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 60.0
    ) -> None:
        """Store the endpoint; nothing connects until :meth:`connect`."""
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self.session: int | None = None
        self.max_inflight: int | None = None
        self._next_seq = 0
        self._inflight: set[int] = set()
        self._results: dict[int, np.ndarray] = {}
        self._rejects: dict[int, tuple[str, str]] = {}
        self._stats: dict | None = None
        self._metrics: tuple[dict, str] | None = None
        self._traces: list | None = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def connect(self, geometry: dict | None = None) -> "GatewayClient":
        """Open the connection and negotiate the session geometry.

        Args:
            geometry: the wire geometry dict — build it with
                :func:`repro.gateway.protocol.dataset_geometry` (from a
                dataset) or :func:`~repro.gateway.protocol.geometry_to_wire`
                (from raw probe/grid parts).  ``None`` opens an
                *observer* session instead: no geometry, no frame
                credit — only the control verbs (``stats``,
                ``metrics``, ``traces``) work.  The obs CLI
                (``python -m repro.obs``) tails gateways this way.

        Returns:
            ``self``, with :attr:`session` and :attr:`max_inflight` set
            from the server's ``hello_ok``.

        Raises:
            GatewayError: the server refused the session
                (``version_mismatch``, ``session_cap``, ``draining``,
                ``bad_geometry``).
        """
        if self._sock is not None:
            raise RuntimeError("client is already connected")
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        hello: dict = {"type": "hello", "v": PROTOCOL_VERSION}
        if geometry is None:
            hello["observe"] = True
        else:
            hello["geometry"] = geometry
        send_message(self._sock, hello)
        header, _ = recv_message(self._sock)
        if header["type"] == "error":
            raise GatewayError(header["code"], header.get("message", ""))
        if header["type"] != "hello_ok":
            raise GatewayError(
                "malformed", f"unexpected handshake reply {header!r}"
            )
        self.session = header["session"]
        self.max_inflight = header["max_inflight"]
        return self

    def close(self) -> int | None:
        """Say ``bye`` (draining in-flight results) and disconnect.

        Returns:
            The server's served-frame count from ``bye_ok``, or ``None``
            if the connection was already gone (or failed during the
            goodbye — close never raises for a dead peer, so a
            ``with`` body's own exception is never masked).
        """
        if self._sock is None or self._closed:
            return None
        self._closed = True
        served = None
        try:
            send_message(self._sock, {"type": "bye"})
            while True:
                header, payload = recv_message(self._sock)
                if header["type"] == "bye_ok":
                    served = header.get("served")
                    break
                self._dispatch(header, payload)
        except (ConnectionError, OSError, GatewayError):
            pass
        finally:
            self._sock.close()
            self._sock = None
        return served

    def __enter__(self) -> "GatewayClient":
        """No-op (connect separately, geometry in hand); returns self."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the session on ``with`` exit."""
        self.close()

    # -- streaming -------------------------------------------------------

    def submit(self, rf: np.ndarray, seq: int | None = None) -> int:
        """Send one RF frame without waiting for its result.

        Args:
            rf: the frame, matching the negotiated ``rf_shape`` and
                ``rf_dtype``.
            seq: client-chosen id (default: auto-increment).

        Returns:
            The frame's sequence number (echoed back on its result).
        """
        self._require_session()
        if seq is None:
            seq = self._next_seq
        self._next_seq = max(self._next_seq, seq) + 1
        rf = np.asarray(rf)
        send_message(
            self._sock,
            array_header("frame", rf, seq=seq),
            array_payload(rf),
        )
        self._inflight.add(seq)
        return seq

    def result(self, seq: int) -> np.ndarray:
        """Block until frame ``seq``'s beamformed image arrives.

        Raises:
            GatewayRejected: the server rejected the frame.
            GatewayError: the session failed fatally.
        """
        self._require_session()
        while True:
            if seq in self._results:
                self._inflight.discard(seq)
                return self._results.pop(seq)
            if seq in self._rejects:
                self._inflight.discard(seq)
                code, message = self._rejects.pop(seq)
                raise GatewayRejected(seq, code, message)
            self._pump()

    def poll(self) -> None:
        """Drain server messages already buffered, without blocking.

        A paced producer that defers :meth:`result` calls must still
        read the socket, or delivered images pile up in the kernel
        buffer until the server's writes — and then its reads, and
        then the client's :meth:`submit` — all stall.  Calling
        ``poll`` between submits keeps the pipe flowing; afterwards,
        :meth:`has_result` says which pending frames :meth:`result`
        would now return instantly.
        """
        self._require_session()
        while True:
            ready, _, _ = select.select([self._sock], [], [], 0)
            if not ready:
                return
            self._pump()

    def has_result(self, seq: int) -> bool:
        """Whether frame ``seq``'s outcome (image or reject) is here.

        Only reflects messages already read — call :meth:`poll` first
        to drain the socket without blocking.
        """
        return seq in self._results or seq in self._rejects

    def stream(
        self,
        rf_frames: Iterable[np.ndarray],
        window: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Pipeline frames through the gateway; yield images in order.

        Keeps up to ``window`` frames in flight (default: the session's
        negotiated ``max_inflight``), so acquisition and beamforming
        overlap without tripping the server's in-flight credit.

        Yields:
            One complex IQ image per input frame, in submission order.

        Raises:
            GatewayRejected: a frame was rejected server-side (with a
                window within the credit this indicates global
                ``overloaded`` pressure).
        """
        self._require_session()
        window = window or self.max_inflight or 1
        pending: list[int] = []
        for rf in rf_frames:
            if len(pending) >= window:
                yield self.result(pending.pop(0))
            pending.append(self.submit(rf))
        while pending:
            yield self.result(pending.pop(0))

    # -- control ---------------------------------------------------------

    def stats(self) -> dict:
        """Fetch a live telemetry snapshot from the server.

        Returns:
            The server's ``stats_ok`` payload: ``{"server", "engine":
            <ServeTelemetry.stats()>, "gateway": <session counters>}``.
        """
        self._require_session()
        self._stats = None
        send_message(self._sock, {"type": "stats"})
        while self._stats is None:
            self._pump()
        return self._stats

    def metrics(self) -> dict:
        """Fetch the server's metric registry (both export formats).

        Returns:
            ``{"json": <MetricsRegistry.as_dict()>, "prometheus":
            <text exposition str>}`` — the JSON rides in the
            ``metrics_ok`` header, the Prometheus text in its payload.
        """
        self._require_session()
        self._metrics = None
        send_message(self._sock, {"type": "metrics"})
        while self._metrics is None:
            self._pump()
        json_view, text = self._metrics
        return {"json": json_view, "prometheus": text}

    def traces(self, n: int = 16) -> list:
        """Fetch the server's most recently completed traces.

        Args:
            n: maximum number of traces to return (newest last).

        Returns:
            A list of trace dicts (:meth:`repro.obs.Trace.as_dict`
            shape) — render with :func:`repro.obs.render_trace`.
        """
        self._require_session()
        self._traces = None
        send_message(self._sock, {"type": "traces", "n": n})
        while self._traces is None:
            self._pump()
        return self._traces

    # -- internals -------------------------------------------------------

    def _require_session(self) -> None:
        if self._sock is None or self.session is None:
            raise RuntimeError(
                "client is not connected (call connect(geometry))"
            )

    def _pump(self) -> None:
        """Read and dispatch exactly one server message."""
        header, payload = recv_message(self._sock)
        self._dispatch(header, payload)

    def _dispatch(self, header: dict, payload: bytes) -> None:
        kind = header["type"]
        if kind == "result":
            # Copy: decode_array views the payload buffer; results may
            # be held while many more messages stream past.
            self._results[header["seq"]] = decode_array(
                header, payload
            ).copy()
        elif kind == "reject":
            self._rejects[header["seq"]] = (
                header.get("code", "unknown"),
                header.get("message", ""),
            )
        elif kind == "stats_ok":
            self._stats = header.get("stats", {})
        elif kind == "metrics_ok":
            self._metrics = (
                header.get("metrics", {}),
                payload.decode("utf-8"),
            )
        elif kind == "traces_ok":
            self._traces = header.get("traces", [])
        elif kind == "error":
            raise GatewayError(
                header.get("code", "internal"),
                header.get("message", ""),
            )
        else:
            raise GatewayError(
                "malformed", f"unexpected server message {kind!r}"
            )
