"""The gateway server: a TCP frontend over one serving engine.

:class:`GatewayServer` multiplexes many concurrent client sessions onto
a single :class:`~repro.serve.engine.ServeEngine` or
:class:`~repro.serve.sharding.ShardedServeEngine`:

::

    client sessions ──▶ asyncio loop thread ──▶ feed queue ──▶ engine
     (TCP, many)         (admission control)     (bounded)     (pump thread)
                 ◀── result delivery  ◀── sink callback ◀──────┘

* The **asyncio loop thread** owns every socket.  Each connection runs
  one reader coroutine: ``hello`` negotiates the session's acquisition
  geometry (decoded once, shared by every frame of the session), then
  ``frame`` messages are validated, wrapped as :class:`GatewayFrame`
  and pushed into the feed queue without ever blocking the loop.
* The **pump thread** runs ``engine.serve`` over a generator that
  drains the feed queue — the engine neither knows nor cares that its
  source is a network; micro-batching, geometry grouping, shard
  routing and telemetry all apply unchanged.  Because a
  :class:`GatewayFrame` carries the session's decoded probe/grid, the
  existing geometry-aware paths (``MicroBatcher`` groups, the
  ``ShardRouter`` ``geometry`` policy) see gateway traffic exactly
  like in-process traffic.
* The engine **sink** hands each image back to the loop thread
  (``run_coroutine_threadsafe``), which writes the ``result`` message
  on the owning session — out-of-order across sessions, matched by
  the client-chosen ``seq``.

Admission control is explicit, never buffered away:

* ``max_sessions`` concurrent sessions; a ``hello`` beyond the cap is
  answered ``error(session_cap)`` and closed.
* ``max_inflight`` frames per session (negotiated in ``hello_ok``); a
  frame beyond the credit is answered ``reject(inflight_cap)``.
* a full feed queue (global pressure) answers ``reject(overloaded)``.

Shutdown drains gracefully: :meth:`GatewayServer.stop` stops accepting,
rejects new work with ``draining``, closes the feed queue — the engine
flushes every admitted frame (its no-frame-loss contract) — waits for
every result delivery, then closes the sessions.  Every admitted frame
gets exactly one ``result``/``reject`` answer.

See ``docs/protocol.md`` for the wire format and ``docs/serving.md``
for the operator runbook.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from dataclasses import dataclass

import numpy as np

from repro.gateway.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    array_header,
    array_payload,
    decode_array,
    geometry_from_wire,
    header_length,
    pack_message,
    parse_header,
)
from repro.obs import Observability
from repro.serve.queues import BoundedQueue, QueueClosed, QueueTimeout
from repro.serve.telemetry import ServeTelemetry

logger = logging.getLogger("repro.gateway")


@dataclass(frozen=True)
class GatewayFrame:
    """One admitted wire frame, shaped like a dataset.

    Exposes exactly the attributes the serving/beamforming stack reads
    (``rf``, ``probe``, ``grid``, ``angle_rad``, ``sound_speed_m_s``,
    ``t_start_s``, ``name`` — the duck type of
    :meth:`repro.api.base.Beamformer.beamform`), so the engines, the
    ``MicroBatcher`` and the sharded transport treat gateway traffic
    identically to in-process datasets.  ``session``/``client_seq``
    route the finished image back to its socket.
    """

    name: str
    probe: object
    grid: object
    angle_rad: float
    sound_speed_m_s: float
    t_start_s: float
    rf: np.ndarray
    session: int
    client_seq: int
    #: the frame's :class:`repro.obs.Trace` when sampled at ingress
    #: (``None`` otherwise).  The engines see it via the generic
    #: ``trace`` attribute and attach their spans; the gateway owns the
    #: trace and finishes it at response delivery.
    trace: object = None


class _Session:
    """Loop-thread-owned state of one connected client."""

    def __init__(
        self,
        session_id: int,
        writer: asyncio.StreamWriter,
        geometry,
        max_inflight: int,
        observer: bool = False,
    ) -> None:
        """Bind the session to its socket writer and geometry.

        An *observer* session (``geometry`` is ``None``) may only read
        — ``stats``/``metrics``/``traces``/``bye`` — and does not count
        against the session cap, so the monitoring CLI can always
        scrape a saturated gateway.
        """
        self.id = session_id
        self.writer = writer
        self.geometry = geometry
        self.observer = observer
        self.max_inflight = max_inflight
        self.inflight = 0
        self.frames_in = 0
        self.results_out = 0
        self.rejected = 0
        self.closed = False
        self.bye_requested = False
        self.write_lock = asyncio.Lock()
        self.done = asyncio.Event()

    def counters(self) -> dict:
        """JSON-safe per-session counters for the ``stats`` endpoint."""
        return {
            "frames_in": self.frames_in,
            "results_out": self.results_out,
            "rejected": self.rejected,
            "inflight": self.inflight,
            "closed": self.closed,
        }


async def _read_message(reader: asyncio.StreamReader) -> tuple[dict, bytes]:
    """Read one protocol frame from an asyncio stream."""
    prefix = await reader.readexactly(4)
    length = header_length(prefix)
    header = parse_header(await reader.readexactly(length))
    payload = await reader.readexactly(header.get("nbytes", 0))
    return header, payload


class GatewayServer:
    """Network frontend multiplexing client sessions onto one engine.

    Args:
        engine: a started-or-startable
            :class:`~repro.serve.engine.ServeEngine` or
            :class:`~repro.serve.sharding.ShardedServeEngine`.  Build
            it with ``keep_images=False`` (the CLI does) so an
            unbounded gateway run holds no per-frame state, and with
            ``backpressure="block"`` — the gateway applies loss
            *before* the engine via explicit rejects, so engine-side
            drops would only orphan sessions' in-flight accounting.
        host: bind address (default loopback).
        port: bind port; ``0`` picks an ephemeral port (see
            :attr:`port` after :meth:`start`).
        max_sessions: concurrent-session admission cap.
        max_inflight: per-session in-flight frame credit, echoed to the
            client in ``hello_ok``.
        feed_capacity: bound of the loop→engine feed queue; when full,
            frames are rejected ``overloaded`` instead of buffering.
        send_timeout_s: per-message socket-write deadline.  A client
            that stops reading has its session closed after this long
            instead of parking deliveries (and the shutdown drain)
            behind its full socket buffer.
        name: server identity echoed in ``hello_ok``.
        observability: the :class:`repro.obs.Observability` bundle
            (metrics registry, tracer, event log, flight recorder).
            Defaults to the *engine's* bundle when it has one, so
            gateway counters, engine histograms and worker kernel
            timings all land in one registry and one ``metrics``
            scrape; frames sampled by the tracer get a gateway-owned
            trace spanning ingress → engine → response.

    The server is a context manager::

        with GatewayServer(engine, port=0) as gateway:
            ... connect GatewayClient(s) to gateway.port ...
        # exiting drains: admitted frames complete, sessions close
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 8,
        max_inflight: int = 8,
        feed_capacity: int = 64,
        send_timeout_s: float = 30.0,
        name: str = "tiny-vbf-gateway",
        observability: Observability | None = None,
    ) -> None:
        """Validate the knobs; nothing binds until :meth:`start`."""
        if max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if send_timeout_s <= 0:
            raise ValueError(
                f"send_timeout_s must be > 0, got {send_timeout_s}"
            )
        self.engine = engine
        self.host = host
        self.requested_port = port
        self.max_sessions = max_sessions
        self.max_inflight = max_inflight
        self.feed_capacity = feed_capacity
        self.send_timeout_s = send_timeout_s
        self.name = name
        self.obs = (
            observability
            or getattr(engine, "obs", None)
            or Observability.create(clock=engine.clock)
        )
        self._m_sessions = self.obs.metrics.counter(
            "repro_gateway_sessions_total",
            "Gateway sessions by lifecycle event.",
            labels=("event",),
        )
        self._m_frames = self.obs.metrics.counter(
            "repro_gateway_frames_total",
            "Gateway wire frames by admission outcome.",
            labels=("event",),
        )
        self._m_results = self.obs.metrics.counter(
            "repro_gateway_results_total",
            "Gateway result deliveries by outcome.",
            labels=("event",),
        )

        self._feed: BoundedQueue | None = None
        self._telemetry: ServeTelemetry | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._pump_thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stopped_loop: asyncio.Future | None = None
        self._ready = threading.Event()
        self._drain_begun = threading.Event()
        self._start_error: BaseException | None = None
        self._port: int | None = None
        self._sessions: dict[int, _Session] = {}
        self._session_counter = 0
        self._draining = False
        self._broken = False
        self._started = False
        self._stopped = False
        self._engine_error: BaseException | None = None
        self._report = None
        self._pending: set = set()
        self._pending_lock = threading.Lock()
        self._stats = {
            "sessions_opened": 0,
            "sessions_closed": 0,
            "sessions_rejected": 0,
            "frames_received": 0,
            "frames_admitted": 0,
            "frames_rejected": 0,
            "results_delivered": 0,
            "results_orphaned": 0,
            "protocol_errors": 0,
        }

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._port is None:
            raise RuntimeError("gateway is not started")
        return self._port

    def start(self) -> "GatewayServer":
        """Bind the listener and start the engine pump (idempotent)."""
        if self._started:
            return self
        self._feed = BoundedQueue(self.feed_capacity, "block")
        self._telemetry = ServeTelemetry(
            clock=self.engine.clock, metrics=self.obs.metrics
        )
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="gateway-loop", daemon=True
        )
        self._loop_thread.start()
        self._ready.wait()
        if self._start_error is not None:
            self._loop_thread.join()
            raise self._start_error
        self._pump_thread = threading.Thread(
            target=self._pump, name="gateway-pump", daemon=True
        )
        self._pump_thread.start()
        self._started = True
        logger.info(
            "gateway listening on %s:%d (max_sessions=%d, "
            "max_inflight=%d)",
            self.host,
            self._port,
            self.max_sessions,
            self.max_inflight,
        )
        return self

    def _run_loop(self) -> None:
        """Own the asyncio loop: bind, serve, run until stopped."""
        asyncio.set_event_loop(self._loop)
        try:
            self._server = self._loop.run_until_complete(
                asyncio.start_server(
                    self._handle_connection,
                    self.host,
                    self.requested_port,
                )
            )
            self._port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:
            self._start_error = exc
            self._ready.set()
            return
        self._stopped_loop = self._loop.create_future()
        self._ready.set()
        self._loop.run_until_complete(self._stopped_loop)
        self._server.close()
        self._loop.run_until_complete(self._server.wait_closed())
        self._loop.close()

    def _pump(self) -> None:
        """Engine caller thread: serve the feed queue until it closes."""
        try:
            self._report = self.engine.serve(
                self._frames(),
                sink=self._sink,
                telemetry=self._telemetry,
            )
        except BaseException as exc:
            self._engine_error = exc
            self._broken = True
            self.obs.events.emit(
                "engine_broken",
                engine="gateway",
                error=type(exc).__name__,
            )
            logger.exception("gateway engine failed; failing sessions")
            if self._loop is not None and not self._loop.is_closed():
                asyncio.run_coroutine_threadsafe(
                    self._on_engine_failure(exc),
                    self._loop,
                )

    async def _on_engine_failure(self, exc: BaseException) -> None:
        """Refuse all work after the shared engine died.

        A dead engine can never answer another frame, so beyond failing
        the open sessions the gateway must also stop *accepting*: new
        hellos would otherwise be admitted, buffer frames into the dead
        feed queue and hang until their socket timeout.
        """
        if self._server is not None:
            self._server.close()
        await self._fail_sessions(
            "internal", f"engine failed: {exc!r}"
        )

    def _frames(self):
        """The engine source: drain the feed queue until it closes.

        The get is polled, not unbounded: a sharded engine whose run
        aborts (worker crash) closes its *ingest* side, but the pump
        would still sit in this blocking get waiting for a next frame
        that may never come — so the source also ends when the engine
        reports itself broken, letting ``serve`` unwind and surface
        its error promptly.
        """
        while True:
            try:
                yield self._feed.get(timeout=0.5)
            except QueueTimeout:
                if getattr(self.engine, "broken", False):
                    return
            except QueueClosed:
                return

    def stop(self) -> None:
        """Drain and shut down (idempotent).

        Ordering is the graceful-drain contract: stop accepting and
        reject new work → close the feed queue → the engine flushes
        every admitted frame → wait for every result delivery →
        close the sessions → stop the loop.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        self._call_in_loop(self._begin_drain())
        self._feed.close()
        self._pump_thread.join()
        with self._pending_lock:
            pending = list(self._pending)
        for future in pending:
            try:
                future.result(timeout=30.0)
            except Exception:
                pass  # per-delivery failures already logged/counted
        self._call_in_loop(self._close_sessions())
        self._loop.call_soon_threadsafe(
            lambda: self._stopped_loop.done()
            or self._stopped_loop.set_result(None)
        )
        self._loop_thread.join()
        self.obs.events.emit(
            "drain_complete",
            results_delivered=self._stats["results_delivered"],
            results_orphaned=self._stats["results_orphaned"],
        )
        logger.info(
            "gateway stopped: %d sessions served, %d results delivered",
            self._stats["sessions_opened"],
            self._stats["results_delivered"],
        )

    def _call_in_loop(self, coroutine) -> None:
        if self._loop.is_closed():
            coroutine.close()
            return
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        future.result(timeout=60.0)

    async def _begin_drain(self) -> None:
        self._draining = True
        self._server.close()
        self.obs.events.emit(
            "drain_begin",
            active_sessions=sum(
                not session.closed
                for session in self._sessions.values()
            ),
        )
        # Observable from other threads (tests synchronize on it).
        self._drain_begun.set()

    async def _close_sessions(self) -> None:
        for session in list(self._sessions.values()):
            await self._close_session(session)

    async def _fail_sessions(self, code: str, message: str) -> None:
        for session in list(self._sessions.values()):
            await self._send(
                session,
                {"type": "error", "code": code, "message": message},
            )
            await self._close_session(session)

    def __enter__(self) -> "GatewayServer":
        """Start the gateway on ``with`` entry."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Drain and stop the gateway on ``with`` exit."""
        self.stop()

    # -- runtime control -------------------------------------------------

    @property
    def telemetry(self) -> "ServeTelemetry | None":
        """The live run's engine telemetry (None before ``start``).

        Recreated per :meth:`start`; the control loop attaches with a
        callable (``lambda: gateway.telemetry``) so it always reads the
        current instance.
        """
        return self._telemetry

    def set_admission(
        self,
        max_sessions: int | None = None,
        max_inflight: int | None = None,
    ) -> None:
        """Change the admission-control credits at runtime.

        ``max_sessions`` applies to future handshakes (open sessions
        are never evicted — shedding happens at the frame level).
        ``max_inflight`` applies to future handshakes *and* every open
        session: a session over its shrunken credit simply has further
        frames rejected with ``inflight_cap`` until enough results
        drain — explicit early rejection instead of silent queue
        growth, which is the whole point of credit-based admission.
        Safe from any thread (the controller's tick calls it).
        """
        new_sessions = (
            self.max_sessions if max_sessions is None else max_sessions
        )
        new_inflight = (
            self.max_inflight if max_inflight is None else max_inflight
        )
        if new_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {new_sessions}"
            )
        if new_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {new_inflight}"
            )
        self.max_sessions = new_sessions
        self.max_inflight = new_inflight
        if self._started and not self._stopped:
            async def _apply() -> None:
                for session in list(self._sessions.values()):
                    session.max_inflight = new_inflight

            try:
                self._call_in_loop(_apply())
            except RuntimeError:
                pass  # loop already gone: the attribute change stands
        self.obs.events.emit(
            "admission_changed",
            max_sessions=new_sessions,
            max_inflight=new_inflight,
        )

    # -- stats -----------------------------------------------------------

    def stats(self) -> dict:
        """Live snapshot: engine :class:`ServeTelemetry` + gateway counters.

        Safe from any thread; the shape served to ``stats`` requests.
        """
        gateway = dict(self._stats)
        gateway["draining"] = self._draining
        gateway["broken"] = self._broken
        gateway["active_sessions"] = sum(
            not session.closed
            for session in list(self._sessions.values())
        )
        gateway["sessions"] = {
            str(session.id): session.counters()
            for session in list(self._sessions.values())
        }
        return {
            "server": self.name,
            "protocol_version": PROTOCOL_VERSION,
            "engine": self._telemetry.stats() if self._telemetry else {},
            "gateway": gateway,
        }

    def _reject_session(self, code: str) -> None:
        """Count one refused handshake (stats, metrics, event log)."""
        self._stats["sessions_rejected"] += 1
        self._m_sessions.inc(event="rejected")
        self.obs.events.emit("session_rejected", code=code)

    # -- connection handling (loop thread) -------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one TCP connection: handshake, then the frame loop."""
        session: _Session | None = None
        try:
            session = await self._handshake(reader, writer)
            if session is None:
                return
            await self._session_loop(reader, session)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
        ):
            pass  # client went away; in-flight results are orphaned
        except ProtocolError as exc:
            self._stats["protocol_errors"] += 1
            await self._send_raw(
                writer,
                {
                    "type": "error",
                    "code": exc.code,
                    "message": str(exc),
                },
            )
        except Exception as exc:  # never let one session kill the loop
            logger.exception("session handler failed")
            await self._send_raw(
                writer,
                {
                    "type": "error",
                    "code": "internal",
                    "message": repr(exc),
                },
            )
        finally:
            if session is not None:
                await self._close_session(session)
            else:
                await self._close_writer(writer)

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> _Session | None:
        """Negotiate one session; ``None`` means refused (and answered)."""
        header, _ = await _read_message(reader)
        if header.get("type") != "hello":
            raise ProtocolError(
                "malformed",
                f"expected hello, got {header.get('type')!r}",
            )
        if header.get("v") != PROTOCOL_VERSION:
            self._reject_session("version_mismatch")
            await self._send_raw(
                writer,
                {
                    "type": "error",
                    "code": "version_mismatch",
                    "message": (
                        f"server speaks protocol {PROTOCOL_VERSION}, "
                        f"client sent {header.get('v')!r}"
                    ),
                },
            )
            return None
        if self._draining or self._broken:
            self._reject_session(
                "internal" if self._broken else "draining"
            )
            await self._send_raw(
                writer,
                {
                    "type": "error",
                    "code": "internal" if self._broken else "draining",
                    "message": (
                        "engine failed; gateway cannot serve"
                        if self._broken
                        else "server is shutting down"
                    ),
                },
            )
            return None
        observer = bool(header.get("observe"))
        active = sum(
            not session.closed and not session.observer
            for session in self._sessions.values()
        )
        if not observer and active >= self.max_sessions:
            self._reject_session("session_cap")
            await self._send_raw(
                writer,
                {
                    "type": "error",
                    "code": "session_cap",
                    "message": (
                        f"session cap reached "
                        f"({self.max_sessions} concurrent sessions)"
                    ),
                },
            )
            return None
        geometry = (
            None
            if observer
            else geometry_from_wire(header.get("geometry") or {})
        )
        self._session_counter += 1
        session = _Session(
            self._session_counter,
            writer,
            geometry,
            self.max_inflight,
            observer=observer,
        )
        self._sessions[session.id] = session
        self._stats["sessions_opened"] += 1
        self._m_sessions.inc(event="opened")
        self.obs.events.emit(
            "session_admitted", session=session.id, observer=observer
        )
        await self._send(
            session,
            {
                "type": "hello_ok",
                "v": PROTOCOL_VERSION,
                "session": session.id,
                "max_inflight": session.max_inflight,
                "server": self.name,
            },
        )
        return session

    async def _session_loop(
        self, reader: asyncio.StreamReader, session: _Session
    ) -> None:
        """Dispatch post-handshake messages until bye/EOF/error."""
        while not session.closed:
            header, payload = await _read_message(reader)
            kind = header.get("type")
            if kind == "frame":
                if session.observer:
                    raise ProtocolError(
                        "malformed",
                        "observer sessions cannot send frames",
                    )
                await self._on_frame(session, header, payload)
            elif kind == "stats":
                await self._send(
                    session, {"type": "stats_ok", "stats": self.stats()}
                )
            elif kind == "metrics":
                # Header carries the JSON form, payload the Prometheus
                # text exposition — one scrape serves both formats.
                await self._send(
                    session,
                    {
                        "type": "metrics_ok",
                        "metrics": self.obs.metrics.as_dict(),
                    },
                    self.obs.metrics.render_prometheus().encode("utf-8"),
                )
            elif kind == "traces":
                await self._send(
                    session,
                    {
                        "type": "traces_ok",
                        "traces": self.obs.tracer.recent(
                            int(header.get("n", 16))
                        ),
                    },
                )
            elif kind == "bye":
                # Stop reading; if frames are still in flight their
                # deliveries complete the goodbye (bye_ok + close).
                # Wait for that completion so the handler's cleanup
                # cannot close the session under its tail results.
                session.bye_requested = True
                await self._maybe_finish_bye(session)
                await session.done.wait()
                return
            else:
                raise ProtocolError(
                    "malformed", f"unknown message type {kind!r}"
                )

    async def _on_frame(
        self, session: _Session, header: dict, payload: bytes
    ) -> None:
        """Validate, admit (or reject) one RF frame.

        For sampled frames a *gateway-owned* trace opens here, covering
        the full network round trip; every exit path settles it —
        ``ingress`` span + admit, or ``finish(status=...)`` on reject —
        so the completed-trace store never sees an open root.
        """
        self._stats["frames_received"] += 1
        self._m_frames.inc(event="received")
        seq = header.get("seq")
        if not isinstance(seq, int):
            raise ProtocolError(
                "malformed", f"frame needs an integer seq, got {seq!r}"
            )
        ingress_start = self.engine.clock.now()
        trace = self.obs.tracer.start_trace(
            "frame",
            start=ingress_start,
            owner="gateway",
            session=session.id,
            client_seq=seq,
        )
        try:
            rf = decode_array(header, payload)
            geometry = session.geometry
            if (
                rf.shape != geometry.rf_shape
                or rf.dtype != geometry.rf_dtype
            ):
                raise ProtocolError(
                    "bad_frame",
                    f"frame {seq} is {rf.shape}/{rf.dtype.str}; "
                    f"session negotiated {geometry.rf_shape}/"
                    f"{geometry.rf_dtype.str}",
                )
            if self._broken:
                raise ProtocolError(
                    "internal", "engine failed; gateway cannot serve"
                )
        except ProtocolError as exc:
            if trace is not None:
                trace.finish(status=exc.code)
            raise
        if self._draining:
            await self._reject(session, seq, "draining", trace)
            return
        if session.inflight >= session.max_inflight:
            await self._reject(session, seq, "inflight_cap", trace)
            return
        if not np.isfinite(rf).all() or not rf.any():
            # A silent/non-finite frame can poison a learned pipeline
            # (and kills the shared engine run with it); refuse it at
            # the door instead.
            await self._reject(session, seq, "bad_frame", trace)
            return
        frame = GatewayFrame(
            name=f"session-{session.id}/frame-{seq}",
            probe=geometry.probe,
            grid=geometry.grid,
            angle_rad=geometry.angle_rad,
            sound_speed_m_s=geometry.sound_speed_m_s,
            t_start_s=geometry.t_start_s,
            rf=rf,
            session=session.id,
            client_seq=seq,
            trace=trace,
        )
        try:
            self._feed.put(frame, timeout=0.0)
        except QueueTimeout:
            await self._reject(session, seq, "overloaded", trace)
            return
        except QueueClosed:
            await self._reject(session, seq, "draining", trace)
            return
        if trace is not None:
            trace.add_span(
                "ingress",
                ingress_start,
                self.engine.clock.now(),
                nbytes=len(payload),
            )
        session.inflight += 1
        session.frames_in += 1
        self._stats["frames_admitted"] += 1
        self._m_frames.inc(event="admitted")
        if self._telemetry is not None:
            # Depth signals for the control loop, sampled at every
            # admit.  ``feed`` is how far the gateway runs ahead of
            # the engine; ``inflight`` is the total admitted-but-
            # undelivered frame count across sessions — the *leading*
            # saturation signal, because engine-side queue depths
            # count batches (which hide up to ``max_batch`` frames
            # each) and only back up after the damage is queued.
            self._telemetry.observe_queue_depth(
                "feed", len(self._feed)
            )
            self._telemetry.observe_queue_depth(
                "inflight",
                sum(
                    s.inflight
                    for s in list(self._sessions.values())
                ),
            )

    async def _reject(
        self, session: _Session, seq: int, code: str, trace=None
    ) -> None:
        session.rejected += 1
        self._stats["frames_rejected"] += 1
        self._m_frames.inc(event="rejected")
        if trace is not None:
            trace.finish(status=code)
        await self._send(
            session,
            {
                "type": "reject",
                "seq": seq,
                "code": code,
                "message": f"frame {seq} rejected: {code}",
            },
        )

    # -- result delivery -------------------------------------------------

    def _sink(self, seq: int, frame: GatewayFrame, image) -> None:
        """Engine sink: hand one finished image to the loop thread.

        Called from engine worker/collector threads; scheduling is
        fire-and-forget so a slow client socket never stalls the
        engine, but every delivery future is tracked so :meth:`stop`
        can wait for the tail.
        """
        future = asyncio.run_coroutine_threadsafe(
            self._deliver(frame, np.asarray(image)), self._loop
        )
        with self._pending_lock:
            self._pending.add(future)
        future.add_done_callback(self._discard_pending)

    def _discard_pending(self, future) -> None:
        with self._pending_lock:
            self._pending.discard(future)
        exc = future.exception()
        if exc is not None:
            logger.warning("result delivery failed: %r", exc)

    async def _deliver(self, frame: GatewayFrame, image) -> None:
        """Write one ``result`` message on the owning session.

        This is where a gateway-owned trace ends: a ``respond`` span
        around the socket write, then ``finish`` — or an ``orphaned``
        finish when the session is already gone.
        """
        session = self._sessions.get(frame.session)
        if session is None or session.closed:
            self._stats["results_orphaned"] += 1
            self._m_results.inc(event="orphaned")
            if frame.trace is not None:
                frame.trace.finish(status="orphaned")
            return
        session.inflight -= 1
        # Count before the write: result bytes can reach the client
        # before drain() returns, and a client that has *seen* result N
        # must also see results_out >= N in an immediately-following
        # stats snapshot.  A failed send is rolled back — that client
        # stopped reading, so it cannot observe the transient.
        session.results_out += 1
        self._stats["results_delivered"] += 1
        respond_start = self.engine.clock.now()
        delivered = await self._send(
            session,
            array_header("result", image, seq=frame.client_seq),
            array_payload(image),
        )
        if delivered:
            self._m_results.inc(event="delivered")
        else:
            session.results_out -= 1
            self._stats["results_delivered"] -= 1
            self._stats["results_orphaned"] += 1
            self._m_results.inc(event="orphaned")
        if frame.trace is not None:
            frame.trace.add_span(
                "respond",
                respond_start,
                self.engine.clock.now(),
                delivered=delivered,
            )
            frame.trace.finish(
                status="ok" if delivered else "orphaned"
            )
        await self._maybe_finish_bye(session)

    async def _maybe_finish_bye(self, session: _Session) -> None:
        """Complete a pending ``bye`` once the session has no in-flight."""
        if not session.bye_requested or session.inflight > 0:
            return
        session.bye_requested = False
        await self._send(
            session,
            {"type": "bye_ok", "served": session.results_out},
        )
        await self._close_session(session)

    # -- plumbing --------------------------------------------------------

    async def _send(
        self, session: _Session, header: dict, payload: bytes = b""
    ) -> bool:
        """Serialize one message onto a session; False if it is gone.

        The drain is deadlined by ``send_timeout_s``: a peer that
        stops reading must not park deliveries (which hold the
        session's write lock, and at shutdown the drain) behind its
        full socket buffer forever — its session is closed instead.
        """
        if session.closed:
            return False
        async with session.write_lock:
            if session.closed:
                return False
            try:
                session.writer.write(pack_message(header, payload))
                await asyncio.wait_for(
                    session.writer.drain(), timeout=self.send_timeout_s
                )
                return True
            except (ConnectionError, OSError, asyncio.TimeoutError):
                await self._close_session(session)
                return False

    async def _send_raw(
        self, writer: asyncio.StreamWriter, header: dict
    ) -> None:
        """Best-effort write outside any session (refusals, errors)."""
        try:
            writer.write(pack_message(header))
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _close_session(self, session: _Session) -> None:
        if session.closed:
            self._sessions.pop(session.id, None)
            return
        session.closed = True
        session.done.set()
        self._stats["sessions_closed"] += 1
        self._m_sessions.inc(event="closed")
        self.obs.events.emit(
            "session_closed",
            session=session.id,
            results_out=session.results_out,
        )
        self._sessions.pop(session.id, None)
        await self._close_writer(session.writer)

    async def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
