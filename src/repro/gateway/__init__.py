"""repro.gateway — network serving frontend over the serving engines.

The gateway turns :mod:`repro.serve` into a service: remote probes
stream raw RF frames over TCP and get beamformed IQ images back,
bitwise identical to offline ``beamform`` (the wire round trip is
byte-exact and the engines already guarantee serve/offline parity).

::

    N clients ──TCP──▶ GatewayServer ──feed──▶ ServeEngine /
     (sessions)         (admission,             ShardedServeEngine
                         geometry               (micro-batching,
                         negotiation)            sharding, telemetry)

Pieces:

* protocol — the versioned wire format (length-prefixed JSON header +
  raw ndarray payload) and geometry negotiation,
* server   — :class:`GatewayServer`: asyncio TCP frontend, per-session
  geometry, admission control (session cap, per-session in-flight
  credit, explicit ``reject`` responses), graceful drain, live
  ``stats``,
* client   — :class:`GatewayClient`: blocking pure-Python client with
  pipelined streaming.

Quickstart (in-process loopback)::

    from repro.api import create_beamformer
    from repro.gateway import GatewayClient, GatewayServer
    from repro.gateway.protocol import dataset_geometry
    from repro.serve import ServeEngine

    engine = ServeEngine(create_beamformer("das"), keep_images=False)
    with GatewayServer(engine, port=0) as gateway:
        with GatewayClient("127.0.0.1", gateway.port) as client:
            client.connect(dataset_geometry(dataset))
            images = list(client.stream([dataset.rf]))

CLI: ``python -m repro.gateway --port 7355`` (or
``python -m repro.serve --gateway 7355``); bench:
``benchmarks/bench_gateway.py`` (loopback multi-client throughput vs
in-process serve; emits ``BENCH_gateway.json``).  Wire format and
operator guidance: ``docs/protocol.md`` and ``docs/serving.md``.
"""

from repro.gateway.client import (
    GatewayClient,
    GatewayError,
    GatewayRejected,
)
from repro.gateway.protocol import (
    ERROR_CODES,
    MAX_HEADER_BYTES,
    PROTOCOL_VERSION,
    REJECT_CODES,
    ProtocolError,
    dataset_geometry,
    geometry_from_wire,
    geometry_to_wire,
)
from repro.gateway.server import GatewayFrame, GatewayServer

__all__ = [
    "ERROR_CODES",
    "GatewayClient",
    "GatewayError",
    "GatewayFrame",
    "GatewayRejected",
    "GatewayServer",
    "MAX_HEADER_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REJECT_CODES",
    "dataset_geometry",
    "geometry_from_wire",
    "geometry_to_wire",
]
