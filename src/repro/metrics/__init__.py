"""Image-quality and complexity metrics used by the paper's evaluation.

* :mod:`repro.metrics.contrast` — CR, CNR, GCNR over cyst regions
  (Tables I and V),
* :mod:`repro.metrics.resolution` — axial/lateral FWHM of point targets
  with sub-pixel interpolation (Tables II and IV),
* :mod:`repro.metrics.profiles` — lateral variation / PSF curves
  (Figs. 9b, 12, 14),
* :mod:`repro.metrics.complexity` — GOPs/frame and timing comparisons
  (Section I / IV).
"""

from repro.metrics.contrast import (
    ContrastMetrics,
    contrast_metrics,
    contrast_ratio_db,
    contrast_to_noise_ratio,
    cyst_masks,
    dataset_contrast,
    generalized_cnr,
)
from repro.metrics.resolution import (
    ResolutionMetrics,
    dataset_resolution,
    fwhm,
    point_resolution,
)
from repro.metrics.profiles import lateral_profile_db
from repro.metrics.complexity import (
    beamformer_gops,
    measure_inference_seconds,
)

__all__ = [
    "ContrastMetrics",
    "contrast_metrics",
    "contrast_ratio_db",
    "contrast_to_noise_ratio",
    "generalized_cnr",
    "cyst_masks",
    "dataset_contrast",
    "ResolutionMetrics",
    "fwhm",
    "point_resolution",
    "dataset_resolution",
    "lateral_profile_db",
    "beamformer_gops",
    "measure_inference_seconds",
]
