"""Lateral profiles through B-mode images (Figs. 9b, 12 and 14)."""

from __future__ import annotations

import numpy as np

from repro.beamform.geometry import ImagingGrid
from repro.utils.arrays import db


def lateral_profile_db(
    envelope: np.ndarray,
    grid: ImagingGrid,
    depth_m: float,
    x_span_m: tuple[float, float] | None = None,
    normalize: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Lateral amplitude profile at the row nearest ``depth_m``.

    Returns ``(x_mm, profile_db)``.  With ``normalize=True`` the profile
    peaks at 0 dB inside the span — the paper's lateral-variation plots
    (Fig. 9b) and lateral PSF plots (Figs. 12/14) are normalized this way.
    """
    envelope = np.abs(np.asarray(envelope, dtype=float))
    if envelope.shape != grid.shape:
        raise ValueError(
            f"envelope shape {envelope.shape} != grid {grid.shape}"
        )
    iz = int(np.argmin(np.abs(grid.z_m - depth_m)))
    profile = envelope[iz, :]
    x = grid.x_m
    if x_span_m is not None:
        mask = (x >= x_span_m[0]) & (x <= x_span_m[1])
        if not mask.any():
            raise ValueError(f"empty lateral span {x_span_m}")
        profile = profile[mask]
        x = x[mask]
    if normalize:
        peak = profile.max()
        if peak > 0:
            profile = profile / peak
    return x * 1e3, db(profile)
