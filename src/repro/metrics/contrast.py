"""Contrast metrics: CR, CNR, GCNR (paper Tables I and V).

All metrics are computed on the *linear envelope* image following the
PICMUS conventions:

* ``CR = 20 log10(mu_background / mu_cyst)`` — higher is better for an
  anechoic cyst,
* ``CNR = |mu_background - mu_cyst| / sqrt(sigma_bg^2 + sigma_cyst^2)``,
* ``GCNR = 1 - sum_k min(h_bg(k), h_cyst(k))`` — one minus the overlap of
  the two envelope histograms (Rodriguez-Molares et al.), in [0, 1].

Region convention: the cyst sample is a disk at 70 % of the cyst radius
(to stay clear of the blurred boundary) and the background sample is an
annulus from 1.25 to 1.85 radii.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.beamform.geometry import ImagingGrid
from repro.utils.validation import check_shape

_INSIDE_FRACTION = 0.7
_ANNULUS_INNER = 1.25
_ANNULUS_OUTER = 1.85


def contrast_ratio_db(
    envelope: np.ndarray, inside: np.ndarray, background: np.ndarray
) -> float:
    """Contrast ratio in dB between background and cyst envelope means."""
    mu_in = _region_mean(envelope, inside)
    mu_bg = _region_mean(envelope, background)
    return float(20.0 * np.log10(max(mu_bg, 1e-30) / max(mu_in, 1e-30)))


def contrast_to_noise_ratio(
    envelope: np.ndarray, inside: np.ndarray, background: np.ndarray
) -> float:
    """CNR of the linear envelope between cyst and background."""
    region_in = envelope[inside]
    region_bg = envelope[background]
    spread = np.sqrt(region_in.var() + region_bg.var())
    if spread == 0.0:
        return 0.0
    return float(abs(region_bg.mean() - region_in.mean()) / spread)


def generalized_cnr(
    envelope: np.ndarray,
    inside: np.ndarray,
    background: np.ndarray,
    n_bins: int = 100,
) -> float:
    """GCNR: one minus the overlap of the two envelope histograms."""
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    region_in = envelope[inside]
    region_bg = envelope[background]
    top = max(region_in.max(initial=0.0), region_bg.max(initial=0.0))
    if top == 0.0:
        return 0.0
    bins = np.linspace(0.0, top, n_bins + 1)
    hist_in, _ = np.histogram(region_in, bins=bins, density=False)
    hist_bg, _ = np.histogram(region_bg, bins=bins, density=False)
    pdf_in = hist_in / max(hist_in.sum(), 1)
    pdf_bg = hist_bg / max(hist_bg.sum(), 1)
    overlap = np.minimum(pdf_in, pdf_bg).sum()
    return float(1.0 - overlap)


def _region_mean(envelope: np.ndarray, mask: np.ndarray) -> float:
    if mask.shape != envelope.shape:
        raise ValueError(
            f"mask shape {mask.shape} != envelope shape {envelope.shape}"
        )
    if not mask.any():
        raise ValueError("empty region mask")
    return float(envelope[mask].mean())


def cyst_masks(
    grid: ImagingGrid,
    center_m: tuple[float, float],
    radius_m: float,
) -> tuple[np.ndarray, np.ndarray]:
    """(inside, background) masks for one cyst, PICMUS-style."""
    inside = grid.region_mask(center_m, radius_m * _INSIDE_FRACTION)
    background = grid.annulus_mask(
        center_m, radius_m * _ANNULUS_INNER, radius_m * _ANNULUS_OUTER
    )
    return inside, background


@dataclass(frozen=True)
class ContrastMetrics:
    """CR/CNR/GCNR for one region or averaged over regions."""

    cr_db: float
    cnr: float
    gcnr: float

    def as_row(self) -> tuple[float, float, float]:
        return (self.cr_db, self.cnr, self.gcnr)


def contrast_metrics(
    envelope: np.ndarray, inside: np.ndarray, background: np.ndarray
) -> ContrastMetrics:
    """All three contrast metrics for one cyst region."""
    envelope = np.abs(np.asarray(envelope, dtype=float))
    return ContrastMetrics(
        cr_db=contrast_ratio_db(envelope, inside, background),
        cnr=contrast_to_noise_ratio(envelope, inside, background),
        gcnr=generalized_cnr(envelope, inside, background),
    )


def dataset_contrast(envelope: np.ndarray, dataset) -> ContrastMetrics:
    """Mean contrast metrics over all cysts of a contrast dataset.

    ``dataset`` is a :class:`~repro.ultrasound.datasets.PlaneWaveDataset`
    (or anything exposing ``grid`` and ``cysts``); the paper's Table I
    reports exactly this per-dataset mean.
    """
    envelope = np.abs(np.asarray(envelope, dtype=float))
    check_shape("envelope", envelope, dataset.grid.shape)
    if not dataset.cysts:
        raise ValueError(f"dataset {dataset.name} defines no cysts")
    rows = []
    for center, radius in dataset.cysts:
        inside, background = cyst_masks(dataset.grid, center, radius)
        rows.append(contrast_metrics(envelope, inside, background))
    return ContrastMetrics(
        cr_db=float(np.mean([r.cr_db for r in rows])),
        cnr=float(np.mean([r.cnr for r in rows])),
        gcnr=float(np.mean([r.gcnr for r in rows])),
    )
