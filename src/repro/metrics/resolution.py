"""Resolution metrics: axial/lateral FWHM of point targets.

The paper's Tables II and IV report the -6 dB full width (amplitude half
maximum) of the point spread function, axially and laterally, in mm.
Because the evaluation grids are coarse relative to the PSF (lateral
FWHM of ~2-3 pixels), profiles are upsampled with cubic interpolation
before the half-maximum crossings are located — a sub-pixel measurement,
as any honest FWHM on such grids must be.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.interpolate import CubicSpline

from repro.beamform.geometry import ImagingGrid

_UPSAMPLE = 32


def fwhm(positions: np.ndarray, amplitudes: np.ndarray) -> float:
    """Full width at half maximum of a (possibly coarse) profile.

    Args:
        positions: monotonically increasing sample coordinates.
        amplitudes: non-negative profile values (linear amplitude).

    Returns:
        Width of the main lobe at half its peak amplitude, in the units
        of ``positions``.  Raises ``ValueError`` when the profile does
        not fall below half maximum on both sides of its peak (the lobe
        is not resolved within the window).
    """
    positions = np.asarray(positions, dtype=float)
    amplitudes = np.asarray(amplitudes, dtype=float)
    if positions.ndim != 1 or positions.size < 4:
        raise ValueError("need a 1-D profile with >= 4 samples")
    if positions.shape != amplitudes.shape:
        raise ValueError("positions and amplitudes must match")
    if np.any(np.diff(positions) <= 0):
        raise ValueError("positions must be strictly increasing")

    spline = CubicSpline(positions, amplitudes)
    fine_x = np.linspace(
        positions[0], positions[-1], positions.size * _UPSAMPLE
    )
    fine_y = spline(fine_x)
    peak_index = int(np.argmax(fine_y))
    peak = fine_y[peak_index]
    if peak <= 0:
        raise ValueError("profile has no positive peak")
    half = peak / 2.0

    below_left = np.flatnonzero(fine_y[:peak_index] < half)
    below_right = np.flatnonzero(fine_y[peak_index:] < half)
    if below_left.size == 0 or below_right.size == 0:
        raise ValueError(
            "main lobe does not fall below half maximum inside the window"
        )
    left = fine_x[below_left[-1]]
    right = fine_x[peak_index + below_right[0]]
    return float(right - left)


@dataclass(frozen=True)
class ResolutionMetrics:
    """Axial and lateral -6 dB widths in meters."""

    axial_m: float
    lateral_m: float

    @property
    def axial_mm(self) -> float:
        return self.axial_m * 1e3

    @property
    def lateral_mm(self) -> float:
        return self.lateral_m * 1e3


def _find_local_peak(
    envelope: np.ndarray,
    grid: ImagingGrid,
    point_m: tuple[float, float],
    window_m: float,
) -> tuple[int, int]:
    """Index of the brightest pixel within ``window_m`` of ``point_m``."""
    x0, z0 = point_m
    xx, zz = grid.meshgrid()
    region = (np.abs(xx - x0) <= window_m) & (np.abs(zz - z0) <= window_m)
    if not region.any():
        raise ValueError(
            f"no pixels within {window_m} m of point {point_m}"
        )
    masked = np.where(region, envelope, -np.inf)
    return np.unravel_index(int(np.argmax(masked)), envelope.shape)


def point_resolution(
    envelope: np.ndarray,
    grid: ImagingGrid,
    point_m: tuple[float, float],
    lateral_window_m: float = 1.1e-3,
    axial_window_m: float = 1.0e-3,
    search_window_m: float = 0.7e-3,
) -> ResolutionMetrics:
    """Axial/lateral FWHM of the point target nearest ``point_m``.

    The profile windows must stay smaller than the spacing to the
    neighbouring targets, otherwise their mainlobes contaminate the
    measurement.
    """
    envelope = np.abs(np.asarray(envelope, dtype=float))
    iz, ix = _find_local_peak(envelope, grid, point_m, search_window_m)

    lateral_mask = np.abs(grid.x_m - grid.x_m[ix]) <= lateral_window_m
    lateral = fwhm(
        grid.x_m[lateral_mask], envelope[iz, lateral_mask]
    )
    axial_mask = np.abs(grid.z_m - grid.z_m[iz]) <= axial_window_m
    axial = fwhm(grid.z_m[axial_mask], envelope[axial_mask, ix])
    return ResolutionMetrics(axial_m=axial, lateral_m=lateral)


def dataset_resolution(
    envelope: np.ndarray,
    dataset,
    lateral_window_m: float = 1.1e-3,
    axial_window_m: float = 1.0e-3,
) -> ResolutionMetrics:
    """Mean axial/lateral FWHM over all point targets of a dataset.

    Points whose lobes cannot be resolved inside the window are skipped;
    at least one point must succeed.
    """
    envelope = np.abs(np.asarray(envelope, dtype=float))
    axial, lateral = [], []
    for point in dataset.points:
        try:
            metrics = point_resolution(
                envelope,
                dataset.grid,
                point,
                lateral_window_m=lateral_window_m,
                axial_window_m=axial_window_m,
            )
        except ValueError:
            continue
        axial.append(metrics.axial_m)
        lateral.append(metrics.lateral_m)
    if not axial:
        raise ValueError(
            f"no resolvable point targets in dataset {dataset.name}"
        )
    return ResolutionMetrics(
        axial_m=float(np.mean(axial)), lateral_m=float(np.mean(lateral))
    )
