"""Complexity metrics: GOPs/frame and wall-clock inference timing.

Reproduces the paper's complexity comparison (Section I and the
inference-time paragraph of Section IV): Tiny-VBF 0.34 GOPs/frame vs
Tiny-CNN 11.7, FCNN 1.4 and MVDR ~98.78 at a 368 x 128 frame.
"""

from __future__ import annotations

import time

import numpy as np

from repro.beamform.mvdr import mvdr_apodization_gops
from repro.models.registry import (
    channels_for,
    image_shape_for,
    model_gops,
)
from repro.utils.validation import require_in

BEAMFORMER_KINDS = ("das", "mvdr", "tiny_vbf", "tiny_cnn", "fcnn")


def das_gops(nz: int, nx: int, n_elements: int) -> float:
    """Analytic GOPs/frame of DAS (weighted sum over the aperture)."""
    # One multiply-accumulate per pixel per element, complex data: 8 ops.
    return 8.0 * nz * nx * n_elements / 1e9


def beamformer_gops(kind: str, scale: str = "paper") -> float:
    """GOPs/frame of any beamformer at a dataset scale."""
    require_in("kind", kind, BEAMFORMER_KINDS)
    nz, nx = image_shape_for(scale)
    n_elements = channels_for(scale)
    if kind == "das":
        return das_gops(nz, nx, n_elements)
    if kind == "mvdr":
        return mvdr_apodization_gops(nz, nx, n_elements)
    return model_gops(kind, scale)


def measure_inference_seconds(
    fn,
    repeats: int = 3,
) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs.

    Used for the inference-time comparison; one warm-up call is made
    first so lazy allocations do not pollute the measurement.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    fn()
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))
