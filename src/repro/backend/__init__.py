"""repro.backend — pluggable compute backends for the hot paths.

The paper's whole premise is one model running on different substrates
(float reference vs. FPGA fixed point); this package is the software
seam for the same idea: every hot kernel (DAS gather/interpolation,
Dense/Conv2D GEMMs, attention, quantized-execution matmuls, MVDR
reductions) dispatches through an :class:`ArrayBackend`, selected per
call site, per thread, or process-wide::

    from repro.backend import use_backend

    with use_backend("numpy-fast"):
        image = beamformer.beamform(frame)        # float32 kernels

    create_beamformer("das", backend="numpy-fast")  # bound per instance
    REPRO_BACKEND=numpy-fast python -m repro.serve  # process default

Built-ins: ``numpy`` (reference, bit-for-bit the pre-dispatch numerics),
``numpy-fast`` (float32 accumulation, fused/cached gathers, scratch
reuse), ``pe-emu`` (quantized GEMMs through the bit-accurate integer
PE emulator inside an ``emulated_pe_scope``, exact ``numpy`` proxy
outside one; see ``repro.backend.pe_emu``) and — on hosts with a C
compiler — ``cnative`` (runtime-compiled C kernels, threaded and
fused; see ``repro.backend.cnative``).  New
backends register with :func:`register_backend` and are certified by
the conformance suite in ``tests/backend`` automatically — see
DESIGN.md §4 for the dispatch rules and the how-to.
"""

from repro.backend.base import (
    Array,
    ArrayBackend,
    available_backends,
    backend_names_and_tolerances,
    backend_unavailable_reason,
    default_backend_name,
    get_backend,
    mark_backend_unavailable,
    register_backend,
    resolve_backend,
    set_backend,
    unregister_backend,
    use_backend,
)
from repro.backend.cnative import register_cnative_backend
from repro.backend.fast import NumpyFastBackend
from repro.backend.pe_emu import (
    EmulationSpec,
    PeEmuBackend,
    current_emulation,
    emulated_pe_scope,
)
from repro.backend.reference import NumpyBackend, flat_matmul

register_backend(NumpyBackend())
register_backend(NumpyFastBackend())
register_backend(PeEmuBackend())
register_cnative_backend()

__all__ = [
    "Array",
    "ArrayBackend",
    "EmulationSpec",
    "NumpyBackend",
    "NumpyFastBackend",
    "PeEmuBackend",
    "available_backends",
    "current_emulation",
    "emulated_pe_scope",
    "backend_unavailable_reason",
    "mark_backend_unavailable",
    "register_cnative_backend",
    "backend_names_and_tolerances",
    "default_backend_name",
    "flat_matmul",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_backend",
    "unregister_backend",
    "use_backend",
]
