"""The ``numpy`` reference backend: float64, bit-for-bit the pre-dispatch
numerics.

Every method here is the *exact* sequence of NumPy operations the hot
paths performed before the backend layer existed — same casts, same
temporaries, same reduction order — so routing through this backend is
observationally a refactor.  The golden fixtures (``tests/golden``)
pin that property byte-for-byte; treat any change to these bodies as a
golden-breaking change.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backend.base import Array, ArrayBackend


def flat_matmul(x: Array, weight: Array) -> Array:
    """``x @ weight`` with all leading axes flattened into one GEMM.

    For rank > 2 inputs, ``x @ weight`` dispatches a *stacked* matmul —
    one small GEMM per leading-axis slice — whose throughput collapses
    on batched frames (and on non-contiguous views such as decoder skip
    concatenations).  Collapsing the leading axes first runs a single
    large GEMM over identical per-element reductions, so the result is
    unchanged while batch execution scales linearly.
    """
    if x.ndim <= 2:
        out: Array = x @ weight
        return out
    lead = x.shape[:-1]
    flat = np.ascontiguousarray(x).reshape(-1, x.shape[-1])
    out = (flat @ weight).reshape(*lead, weight.shape[-1])
    return out


class NumpyBackend(ArrayBackend):
    """Reference backend: today's numerics, verbatim."""

    name = "numpy"
    rtol = 0.0
    atol = 0.0

    def asarray(self, x: Array) -> Array:
        """Cast to float64 (complex input stays complex128).

        A blind ``dtype=float`` cast would silently discard the
        imaginary part of complex input — numpy only emits a
        ComplexWarning — so the cast is complex-aware: the analytic
        (IQ) arrays that flow through the beamforming path keep their
        phase.  Real input is cast exactly as before, bit-for-bit.
        """
        dtype = complex if np.iscomplexobj(x) else float
        return np.asarray(x, dtype=dtype)

    def matmul(self, x: Array, weight: Array) -> Array:
        """Flattened GEMM at the inputs' own (float64) precision."""
        return flat_matmul(x, weight)

    def affine(
        self,
        x: Array,
        weight: Array,
        bias: Array | None,
    ) -> Array:
        """``x @ weight (+ bias)`` exactly as Dense/Conv2D always did."""
        y: Array = flat_matmul(x, weight)
        if bias is not None:
            y = y + bias
        return y

    def im2col(
        self,
        x: Array,
        kernel_size: tuple[int, int],
        in_channels: int,
    ) -> Array:
        """Same-padded sliding-window patches via stride tricks."""
        kh, kw = kernel_size
        pad_h, pad_w = kh // 2, kw // 2
        padded = np.pad(
            x,
            ((0, 0), (pad_h, pad_h), (pad_w, pad_w), (0, 0)),
            mode="constant",
        )
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (kh, kw), axis=(1, 2)
        )  # (B, H, W, C, kh, kw)
        batch, height, width = x.shape[:3]
        # Order as (kh, kw, C) to match the weight layout.
        patches: Array = windows.transpose(0, 1, 2, 4, 5, 3).reshape(
            batch, height, width, kh * kw * in_channels
        )
        return patches

    def attention_scores(
        self, q: Array, k: Array, scale: float
    ) -> Array:
        """Scaled attention scores via the historical einsum."""
        scores: Array = np.einsum(
            "bhtk,bhsk->bhts", q, k, optimize=True
        )
        scores = scores * scale
        return scores

    def attention_context(
        self, attention: Array, v: Array
    ) -> Array:
        """Attention-weighted value sum via the historical einsum."""
        context: Array = np.einsum(
            "bhts,bhsk->bhtk", attention, v, optimize=True
        )
        return context

    def apply_plan(self, plan: Any, rf: Array) -> Array:
        """Fancy-indexed gather + lerp, the original ``tof_correct`` body."""
        element_idx = np.broadcast_to(
            np.arange(plan.probe.n_elements), plan.idx0.shape
        )
        lower: Array = rf[plan.idx0, element_idx]
        upper: Array = rf[plan.idx0 + 1, element_idx]
        samples: Array = lower + plan.frac * (upper - lower)
        samples = np.where(plan.valid, samples, 0)
        return samples.reshape(
            plan.grid.nz, plan.grid.nx, plan.probe.n_elements
        )

    def das_sum(
        self, tofc: Array, apodization: Array | None
    ) -> Array:
        """Aperture mean / apodization-weighted sum, float64."""
        if apodization is None:
            mean: Array = tofc.mean(axis=-1)
            return mean
        weighted: Array = (tofc * apodization).sum(axis=-1)
        return weighted

    def mvdr_covariance(self, windows: Array) -> Array:
        """Subaperture-averaged spatial covariance (complex128)."""
        outer: Array = np.einsum("zws,zwt->zst", windows, windows.conj())
        outer = outer / windows.shape[1]
        return outer

    def mvdr_output(
        self, weights: Array, windows: Array
    ) -> Array:
        """Conjugate-weighted distortionless output (complex128)."""
        summed: Array = np.einsum("zs,zws->z", weights.conj(), windows)
        summed = summed / windows.shape[1]
        return summed
