"""The ``numpy`` reference backend: float64, bit-for-bit the pre-dispatch
numerics.

Every method here is the *exact* sequence of NumPy operations the hot
paths performed before the backend layer existed — same casts, same
temporaries, same reduction order — so routing through this backend is
observationally a refactor.  The golden fixtures (``tests/golden``)
pin that property byte-for-byte; treat any change to these bodies as a
golden-breaking change.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend


def flat_matmul(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``x @ weight`` with all leading axes flattened into one GEMM.

    For rank > 2 inputs, ``x @ weight`` dispatches a *stacked* matmul —
    one small GEMM per leading-axis slice — whose throughput collapses
    on batched frames (and on non-contiguous views such as decoder skip
    concatenations).  Collapsing the leading axes first runs a single
    large GEMM over identical per-element reductions, so the result is
    unchanged while batch execution scales linearly.
    """
    if x.ndim <= 2:
        return x @ weight
    lead = x.shape[:-1]
    flat = np.ascontiguousarray(x).reshape(-1, x.shape[-1])
    return (flat @ weight).reshape(*lead, weight.shape[-1])


class NumpyBackend(ArrayBackend):
    """Reference backend: today's numerics, verbatim."""

    name = "numpy"
    rtol = 0.0
    atol = 0.0

    def asarray(self, x: np.ndarray) -> np.ndarray:
        """Cast to float64, the reference compute dtype."""
        return np.asarray(x, dtype=float)

    def matmul(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Flattened GEMM at the inputs' own (float64) precision."""
        return flat_matmul(x, weight)

    def affine(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None,
    ) -> np.ndarray:
        """``x @ weight (+ bias)`` exactly as Dense/Conv2D always did."""
        y = flat_matmul(x, weight)
        if bias is not None:
            y = y + bias
        return y

    def im2col(
        self,
        x: np.ndarray,
        kernel_size: tuple[int, int],
        in_channels: int,
    ) -> np.ndarray:
        """Same-padded sliding-window patches via stride tricks."""
        kh, kw = kernel_size
        pad_h, pad_w = kh // 2, kw // 2
        padded = np.pad(
            x,
            ((0, 0), (pad_h, pad_h), (pad_w, pad_w), (0, 0)),
            mode="constant",
        )
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (kh, kw), axis=(1, 2)
        )  # (B, H, W, C, kh, kw)
        batch, height, width = x.shape[:3]
        # Order as (kh, kw, C) to match the weight layout.
        return windows.transpose(0, 1, 2, 4, 5, 3).reshape(
            batch, height, width, kh * kw * in_channels
        )

    def attention_scores(
        self, q: np.ndarray, k: np.ndarray, scale: float
    ) -> np.ndarray:
        """Scaled attention scores via the historical einsum."""
        return (
            np.einsum("bhtk,bhsk->bhts", q, k, optimize=True) * scale
        )

    def attention_context(
        self, attention: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Attention-weighted value sum via the historical einsum."""
        return np.einsum("bhts,bhsk->bhtk", attention, v, optimize=True)

    def apply_plan(self, plan, rf: np.ndarray) -> np.ndarray:
        """Fancy-indexed gather + lerp, the original ``tof_correct`` body."""
        element_idx = np.broadcast_to(
            np.arange(plan.probe.n_elements), plan.idx0.shape
        )
        lower = rf[plan.idx0, element_idx]
        upper = rf[plan.idx0 + 1, element_idx]
        samples = lower + plan.frac * (upper - lower)
        samples = np.where(plan.valid, samples, 0)
        return samples.reshape(
            plan.grid.nz, plan.grid.nx, plan.probe.n_elements
        )

    def das_sum(
        self, tofc: np.ndarray, apodization: np.ndarray | None
    ) -> np.ndarray:
        """Aperture mean / apodization-weighted sum, float64."""
        if apodization is None:
            return tofc.mean(axis=-1)
        return (tofc * apodization).sum(axis=-1)

    def mvdr_covariance(self, windows: np.ndarray) -> np.ndarray:
        """Subaperture-averaged spatial covariance (complex128)."""
        return np.einsum(
            "zws,zwt->zst", windows, windows.conj()
        ) / windows.shape[1]

    def mvdr_output(
        self, weights: np.ndarray, windows: np.ndarray
    ) -> np.ndarray:
        """Conjugate-weighted distortionless output (complex128)."""
        return np.einsum(
            "zs,zws->z", weights.conj(), windows
        ) / windows.shape[1]
