"""The ``numpy-fast`` backend: float32 accumulation + cached gather paths.

Same kernels as the reference, traded for speed:

* **float32 / complex64 accumulation** everywhere — GEMMs hit SGEMM
  (2x the FLOPs of DGEMM on typical BLAS builds) and every
  memory-bound pass moves half the bytes,
* **fused gather + interpolation** for ToF-plan application: the
  (pixel, element) gather indices are flattened once per plan and
  cached (weakly, keyed by the plan object), then each frame is two
  ``take`` calls and three in-place vector ops — no broadcasting
  temporaries,
* **cached im2col indices** for Conv2D: the patch-gather index table is
  computed once per (H, W, C, kernel) and reused, turning im2col into a
  single ``take``,
* **preallocated scratch buffers** (thread-local, so concurrent serve
  workers never share) for the interpolation temporary and the padded
  conv input.

Accuracy contract: outputs match the reference within ``rtol``/``atol``
below on unit-scale data (certified per kernel and end-to-end by
``tests/backend``).  Training under this backend produces
mixed-precision gradients; the reference backend remains the default
for bit-reproducible work.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any

import numpy as np
from numpy.typing import DTypeLike

from repro.backend.base import Array, ArrayBackend
from repro.backend.reference import flat_matmul

_SCRATCH_POOL_CAP = 32


class NumpyFastBackend(ArrayBackend):
    """float32 kernels with cached gather tables and scratch reuse."""

    name = "numpy-fast"
    #: Documented conformance tolerances vs the reference on unit-scale
    #: data.  float32 unit roundoff is ~1.2e-7; the deepest certified
    #: path (mini Tiny-VBF forward, ~10 chained GEMMs + softmax)
    #: amplifies it by roughly three orders of magnitude.
    rtol = 1e-3
    atol = 1e-4

    def __init__(self) -> None:
        self._tls = threading.local()
        self._plan_tables: (
            "weakref.WeakKeyDictionary[object, tuple[Array, Array, Array, Array]]"
        ) = weakref.WeakKeyDictionary()
        self._plan_lock = threading.Lock()
        self._im2col_indices: OrderedDict[tuple[Any, ...], Array] = (
            OrderedDict()
        )
        self._im2col_lock = threading.Lock()

    # -- dtype policy ----------------------------------------------------

    def asarray(self, x: Array) -> Array:
        """Cast to float32 (complex input stays complex64).

        Mirrors :meth:`_compute_cast`: a blind ``float32`` cast would
        silently discard the imaginary part of complex input (numpy
        only emits a ComplexWarning), which destroyed analytic-signal
        phase anywhere ``asarray`` met IQ data.
        """
        dtype = np.complex64 if np.iscomplexobj(x) else np.float32
        return np.asarray(x, dtype=dtype)

    def _compute_cast(self, x: Array) -> Array:
        """Real -> float32, complex -> complex64, contiguous."""
        dtype = (
            np.complex64 if np.iscomplexobj(x) else np.float32
        )
        return np.ascontiguousarray(x, dtype=dtype)

    def _scratch(self, shape: tuple[int, ...], dtype: DTypeLike) -> Array:
        """A reusable per-thread buffer (never escapes a kernel call).

        The pool is a bounded LRU: when a new shape would exceed the
        cap, only the least-recently-used buffer is evicted.  (It used
        to ``clear()`` wholesale, which dumped every hot buffer the
        moment a 33rd geometry appeared — under mixed-geometry serving
        that meant reallocating the entire working set on a cycle.)
        """
        pool: OrderedDict[tuple[tuple[int, ...], str], Array] | None = (
            getattr(self._tls, "pool", None)
        )
        if pool is None:
            pool = self._tls.pool = OrderedDict()
        key = (shape, np.dtype(dtype).str)
        buffer = pool.get(key)
        if buffer is None:
            while len(pool) >= _SCRATCH_POOL_CAP:
                pool.popitem(last=False)
            buffer = pool[key] = np.empty(shape, dtype)
        else:
            pool.move_to_end(key)
        return buffer

    # -- GEMM-shaped kernels --------------------------------------------

    def matmul(self, x: Array, weight: Array) -> Array:
        """Flattened GEMM in float32/complex64."""
        # _compute_cast, not a blind float32 cast: the reference matmul
        # preserves complex inputs, so this one must too (complex64).
        return flat_matmul(
            self._compute_cast(x), self._compute_cast(weight)
        )

    def affine(
        self,
        x: Array,
        weight: Array,
        bias: Array | None,
    ) -> Array:
        """float32 GEMM with the bias added in place."""
        y = self.matmul(x, weight)
        if bias is not None:
            y += self._compute_cast(bias)
        return y

    def im2col(
        self,
        x: Array,
        kernel_size: tuple[int, int],
        in_channels: int,
    ) -> Array:
        """Patch extraction as one cached-index ``take`` over scratch."""
        kh, kw = kernel_size
        pad_h, pad_w = kh // 2, kw // 2
        batch, height, width = x.shape[:3]
        padded_shape = (
            batch,
            height + 2 * pad_h,
            width + 2 * pad_w,
            in_channels,
        )
        indices = self._im2col_index_table(
            padded_shape[1:], (height, width), kernel_size, in_channels
        )
        padded = self._scratch(padded_shape, np.float32)
        padded.fill(0.0)
        padded[:, pad_h : pad_h + height, pad_w : pad_w + width, :] = x
        return padded.reshape(batch, -1).take(indices, axis=1).reshape(
            batch, height, width, kh * kw * in_channels
        )

    def _im2col_index_table(
        self,
        padded_hwc: tuple[int, int, int],
        out_hw: tuple[int, int],
        kernel_size: tuple[int, int],
        in_channels: int,
    ) -> Array:
        key = (padded_hwc, kernel_size)
        with self._im2col_lock:
            indices = self._im2col_indices.get(key)
            if indices is not None:
                self._im2col_indices.move_to_end(key)
        if indices is not None:
            return indices
        # Run the reference patch extraction over a linear-index volume:
        # whatever positions it would gather, we gather by flat index —
        # ordering consistency with the weight layout by construction.
        # int32 suffices (a padded frame has < 2^31 entries) and halves
        # the table, mirroring the plan gather tables.
        kh, kw = kernel_size
        height, width = out_hw
        linear = np.arange(
            int(np.prod(padded_hwc)), dtype=np.int32
        ).reshape(1, *padded_hwc)
        windows = np.lib.stride_tricks.sliding_window_view(
            linear, (kh, kw), axis=(1, 2)
        )
        indices = np.ascontiguousarray(
            windows.transpose(0, 1, 2, 4, 5, 3).reshape(
                height * width * kh * kw * in_channels
            )
        )
        with self._im2col_lock:
            while len(self._im2col_indices) >= _SCRATCH_POOL_CAP:
                # Same bound as the scratch pool: a table is ~100 MB at
                # small scale, so the cache must not grow with every
                # geometry a long-lived process ever sees.  LRU, not
                # clear(): a 33rd geometry must not dump the 32 hot
                # tables under mixed-geometry serving.
                self._im2col_indices.popitem(last=False)
            self._im2col_indices[key] = indices
        return indices

    def attention_scores(
        self, q: Array, k: Array, scale: float
    ) -> Array:
        """float32 attention scores, scale applied in place."""
        scores: Array = np.einsum(
            "bhtk,bhsk->bhts",
            np.asarray(q, dtype=np.float32),
            np.asarray(k, dtype=np.float32),
            optimize=True,
        )
        scores *= np.float32(scale)
        return scores

    def attention_context(
        self, attention: Array, v: Array
    ) -> Array:
        """float32 attention-weighted value sum."""
        context: Array = np.einsum(
            "bhts,bhsk->bhtk",
            np.asarray(attention, dtype=np.float32),
            np.asarray(v, dtype=np.float32),
            optimize=True,
        )
        return context

    # -- beamforming kernels --------------------------------------------

    def _plan_gather_tables(
        self, plan: Any
    ) -> tuple[Array, Array, Array, Array]:
        """Flattened gather indices + float32 tables, cached per plan."""
        with self._plan_lock:
            tables = self._plan_tables.get(plan)
        if tables is not None:
            return tables
        n_elements = plan.probe.n_elements
        flat_lower = (
            plan.idx0.astype(np.int64) * n_elements
            + np.arange(n_elements, dtype=np.int64)
        ).ravel()
        # Row below in the (n_samples, E) record = +E in flat order.
        tables = (
            np.ascontiguousarray(flat_lower.astype(np.int32)),
            np.ascontiguousarray(
                (flat_lower + n_elements).astype(np.int32)
            ),
            np.ascontiguousarray(
                plan.frac.astype(np.float32).ravel()
            ),
            np.ascontiguousarray(plan.valid.ravel()),
        )
        with self._plan_lock:
            self._plan_tables[plan] = tables
        return tables

    def apply_plan(self, plan: Any, rf: Array) -> Array:
        """Fused gather+lerp over per-plan cached flat indices."""
        flat_lower, flat_upper, frac, valid = self._plan_gather_tables(
            plan
        )
        flat_rf = self._compute_cast(rf).reshape(-1)
        samples = flat_rf.take(flat_lower)  # fresh: becomes the output
        upper = self._scratch(samples.shape, samples.dtype)
        np.take(flat_rf, flat_upper, out=upper)
        # samples += frac * (upper - samples), fused in place.
        np.subtract(upper, samples, out=upper)
        np.multiply(upper, frac, out=upper)
        np.add(samples, upper, out=samples)
        np.multiply(samples, valid, out=samples)
        return samples.reshape(
            plan.grid.nz, plan.grid.nx, plan.probe.n_elements
        )

    def das_sum(
        self, tofc: Array, apodization: Array | None
    ) -> Array:
        """float32 aperture reduction (einsum for the weighted path)."""
        tofc = self._compute_cast(tofc)
        if apodization is None:
            mean: Array = tofc.mean(axis=-1)
            return mean
        weighted: Array = np.einsum(
            "zxe,zxe->zx",
            tofc,
            np.asarray(apodization, dtype=np.float32),
            optimize=True,
        )
        return weighted

    def prepare_mvdr_windows(self, windows: Array) -> Array:
        """Materialize windows once in complex64 (see inline note)."""
        # Materialize the strided sliding-window view as a contiguous
        # compute-dtype array once per column; the two kernels below
        # then see their _compute_cast calls turn into no-ops.
        return self._compute_cast(windows)

    def mvdr_covariance(self, windows: Array) -> Array:
        """complex64 subaperture-averaged covariance."""
        windows = self._compute_cast(windows)
        outer: Array = np.einsum(
            "zws,zwt->zst", windows, windows.conj(), optimize=True
        )
        outer = outer / windows.shape[1]
        return outer

    def mvdr_output(
        self, weights: Array, windows: Array
    ) -> Array:
        """complex64 distortionless output."""
        windows = self._compute_cast(windows)
        weights = self._compute_cast(weights)
        summed: Array = np.einsum(
            "zs,zws->z", weights.conj(), windows, optimize=True
        )
        summed = summed / windows.shape[1]
        return summed
