"""repro.backend.cnative — compiled C kernels as a third ArrayBackend.

The package holds the C source (``kernels.c``), the build step
(:mod:`~repro.backend.cnative.build`), the ctypes bindings
(:mod:`~repro.backend.cnative.lib`) and the backend class
(:mod:`~repro.backend.cnative.backend`).  Importing this package is
cheap and side-effect-free; the compile/load happens the first time
:func:`register_cnative_backend` (called by :mod:`repro.backend` at
import) actually constructs the backend.
"""

from __future__ import annotations

from repro.backend.base import mark_backend_unavailable, register_backend
from repro.backend.cnative.build import CNativeBuildError

__all__ = ["CNativeBuildError", "register_cnative_backend"]


def register_cnative_backend() -> bool:
    """Build, load and register the ``cnative`` backend; never raises.

    On hosts without a C compiler (or with ``REPRO_CNATIVE_DISABLE``
    set) the backend is recorded as unavailable instead: it stays out
    of :func:`~repro.backend.base.available_backends`, and an explicit
    request for ``"cnative"`` raises a ``ValueError`` carrying the
    build failure — graceful degradation, not an import error.

    Returns ``True`` when the backend registered.
    """
    try:
        from repro.backend.cnative.backend import CNativeBackend

        register_backend(CNativeBackend())
        return True
    except CNativeBuildError as exc:
        mark_backend_unavailable("cnative", str(exc))
        return False
    except OSError as exc:  # dlopen of a corrupt cached artifact
        mark_backend_unavailable("cnative", f"failed to load kernels: {exc}")
        return False
