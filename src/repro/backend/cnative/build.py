"""Compiler detection and the generate-and-cache build step for `cnative`.

The C source (``kernels.c``, shipped as package data) is compiled once
per (source, flags, compiler) combination into a content-addressed
shared library under the build cache; every later import — including
spawned shard workers — dlopens the cached artifact without touching
the compiler again.  The build is atomic (compile to a temp name, then
``os.replace``) so concurrent first imports cannot observe a torn
library.

Environment knobs:

* ``REPRO_CNATIVE_CC`` — explicit compiler executable.  Takes
  precedence over ``CC`` and the ``cc``/``gcc``/``clang`` probe; a
  value that does not resolve makes the backend unavailable (this is
  how the no-compiler degradation path is exercised in tests).
* ``REPRO_CNATIVE_CACHE`` — cache directory (default
  ``~/.cache/repro-cnative``).
* ``REPRO_CNATIVE_DISABLE`` — any non-empty value skips the backend
  entirely (useful to benchmark the pure-python backends on a host
  that has a compiler).

Raises :class:`CNativeBuildError` for every failure mode; the caller
(:func:`repro.backend.cnative.register_cnative_backend`) converts that
into a *graceful* absence from the registry rather than an import
error.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

#: Flag sets tried in order; the first one the compiler accepts wins.
#: ``-ffast-math`` is deliberate: these kernels document float32
#: tolerances (see ``CNativeBackend.rtol``), and the vectorized
#: ``expf`` it unlocks is most of the softmax win.
_FLAG_SETS: tuple[tuple[str, ...], ...] = (
    ("-O3", "-march=native", "-funroll-loops", "-ffast-math"),
    ("-O3", "-ffast-math"),
    ("-O2",),
)

_COMMON_FLAGS: tuple[str, ...] = ("-fPIC", "-std=c11")
_LINK_FLAGS: tuple[str, ...] = ("-lm", "-lpthread")


class CNativeBuildError(RuntimeError):
    """The compiled backend could not be built on this host."""


def source_path() -> Path:
    """Location of the shipped C source."""
    return Path(__file__).resolve().parent / "kernels.c"


def cache_dir() -> Path:
    """Directory holding built shared libraries."""
    override = os.environ.get("REPRO_CNATIVE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-cnative"


def find_compiler() -> str:
    """Resolve the C compiler executable, or raise.

    Precedence: ``REPRO_CNATIVE_CC``, ``CC``, then the conventional
    names.  An explicitly configured compiler that does not exist is
    an error (never silently fall back past an operator's choice).
    """
    explicit = os.environ.get("REPRO_CNATIVE_CC")
    if explicit:
        resolved = shutil.which(explicit)
        if resolved is None:
            raise CNativeBuildError(
                f"REPRO_CNATIVE_CC={explicit!r} does not resolve to an "
                f"executable"
            )
        return resolved
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate:
            resolved = shutil.which(candidate)
            if resolved is not None:
                return resolved
    raise CNativeBuildError(
        "no C compiler found (tried $CC, cc, gcc, clang); install one "
        "or set REPRO_CNATIVE_CC"
    )


def _cache_key(source: bytes, compiler: str, flags: tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    digest.update(source)
    digest.update(compiler.encode())
    digest.update(" ".join(flags).encode())
    return digest.hexdigest()[:24]


def build_library() -> Path:
    """Compile (or reuse) the kernel library; returns the ``.so`` path."""
    if os.environ.get("REPRO_CNATIVE_DISABLE"):
        raise CNativeBuildError("disabled via REPRO_CNATIVE_DISABLE")
    src = source_path()
    if not src.exists():
        raise CNativeBuildError(f"kernel source missing: {src}")
    source = src.read_bytes()

    # The cache key includes the compiler path, so detection happens
    # before the first cache probe.
    compiler = find_compiler()
    errors: list[str] = []
    cache = cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    for flags in _FLAG_SETS:
        key = _cache_key(source, compiler, flags)
        out = cache / f"repro_cnative_{key}.so"
        if out.exists():
            return out
        fd, tmp_name = tempfile.mkstemp(
            suffix=".so", prefix="repro_cnative_build_", dir=cache
        )
        os.close(fd)
        obj_name = tmp_name + ".o"
        # Compile and link SEPARATELY: -ffast-math on a *link* line
        # makes the driver add crtfastmath.o, whose constructor flips
        # FTZ/DAZ in the FPU control register for the whole process at
        # dlopen — silently breaking subnormal arithmetic in numpy and
        # everything else.  Restricting fast-math to the compile step
        # keeps it a code-gen option (vectorized expf etc.) with no
        # global state.
        compile_cmd = [
            compiler, "-c", *_COMMON_FLAGS, *flags, "-o", obj_name, str(src),
        ]
        link_cmd = [
            compiler, "-shared", "-o", tmp_name, obj_name, *_LINK_FLAGS,
        ]
        failed: str | None = None
        for cmd in (compile_cmd, link_cmd):
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                failed = str(exc)
                break
            if proc.returncode != 0:
                failed = (
                    f"exit {proc.returncode}: {proc.stderr.strip()[:500]}"
                )
                break
        if os.path.exists(obj_name):
            os.unlink(obj_name)
        if failed is not None:
            os.unlink(tmp_name)
            errors.append(f"{' '.join(flags)}: {failed}")
            continue
        os.replace(tmp_name, out)
        return out
    raise CNativeBuildError(
        f"compilation failed with {compiler}:\n  " + "\n  ".join(errors)
    )
