/* Compiled kernels for the `cnative` ArrayBackend.
 *
 * Compiled at runtime by repro.backend.cnative.build into a cached
 * shared library and driven through ctypes (which releases the GIL for
 * every call, so the pthread fan-out below uses real cores).
 *
 * Conventions:
 *   - all arrays are C-contiguous float32 unless noted;
 *   - complex64 flows through the `pair == 2` paths as interleaved
 *     (re, im) float pairs — linear interpolation, masking and
 *     aperture sums act identically on both components;
 *   - the GEMM microkernel is the best available cblas_sgemm, resolved
 *     at load time from the BLAS numpy itself bundles and handed in
 *     via repro_set_sgemm(); without one, a blocked fallback keeps the
 *     backend correct (slower, still threaded).
 */

#include <math.h>
#include <pthread.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* external SGEMM (resolved by the loader, may be absent)              */
/* ------------------------------------------------------------------ */

/* CBLAS row-major constants. */
#define RM_ORDER 101
#define NO_TRANS 111
#define TRANS 112

typedef void (*sgemm32_t)(int order, int ta, int tb, int m, int n, int k,
                          float alpha, const float *a, int lda,
                          const float *b, int ldb, float beta, float *c,
                          int ldc);
typedef void (*sgemm64_t)(int64_t order, int64_t ta, int64_t tb, int64_t m,
                          int64_t n, int64_t k, float alpha, const float *a,
                          int64_t lda, const float *b, int64_t ldb,
                          float beta, float *c, int64_t ldc);

static void *g_sgemm = NULL;
static int g_sgemm_is64 = 0;

void repro_set_sgemm(void *fn, int is64) {
  g_sgemm = fn;
  g_sgemm_is64 = is64;
}

int repro_has_sgemm(void) { return g_sgemm != NULL; }

/* C = alpha * A(m,k) @ op(B), row-major. tb: 0 -> B is (k,n) with
 * ldb = n; 1 -> B is (n,k), transposed into the product. */
static void sgemm(int tb, long m, long n, long k, float alpha,
                  const float *a, const float *b, long ldb, float *c) {
  if (g_sgemm_is64)
    ((sgemm64_t)g_sgemm)(RM_ORDER, NO_TRANS, tb ? TRANS : NO_TRANS, m, n, k,
                         alpha, a, k, b, ldb, 0.0f, c, n);
  else
    ((sgemm32_t)g_sgemm)(RM_ORDER, NO_TRANS, tb ? TRANS : NO_TRANS, (int)m,
                         (int)n, (int)k, alpha, a, (int)k, b, (int)ldb,
                         0.0f, c, (int)n);
}

/* ------------------------------------------------------------------ */
/* thread fan-out                                                      */
/* ------------------------------------------------------------------ */

#define MAX_THREADS 64

static int g_threads = 1;

void repro_set_threads(int n) {
  g_threads = n < 1 ? 1 : (n > MAX_THREADS ? MAX_THREADS : n);
}

int repro_get_threads(void) { return g_threads; }

typedef void (*range_fn)(void *ctx, long start, long end);

typedef struct {
  range_fn fn;
  void *ctx;
  long start, end;
} span_t;

static void *span_main(void *arg) {
  span_t *s = (span_t *)arg;
  s->fn(s->ctx, s->start, s->end);
  return NULL;
}

/* Split [0, n) across the configured threads; spans below `grain`
 * items run inline (thread spawn costs more than the work). */
static void parallel_for(range_fn fn, void *ctx, long n, long grain) {
  long nt = g_threads;
  long max_spans = grain > 0 ? (n + grain - 1) / grain : 1;
  if (nt > max_spans) nt = max_spans;
  if (nt <= 1 || n <= 0) {
    if (n > 0) fn(ctx, 0, n);
    return;
  }
  pthread_t tids[MAX_THREADS];
  span_t spans[MAX_THREADS];
  int live[MAX_THREADS];
  long chunk = (n + nt - 1) / nt;
  for (long i = 1; i < nt; i++) {
    long s = i * chunk;
    long e = s + chunk > n ? n : s + chunk;
    live[i] = 0;
    if (s >= e) continue;
    spans[i].fn = fn;
    spans[i].ctx = ctx;
    spans[i].start = s;
    spans[i].end = e;
    if (pthread_create(&tids[i], NULL, span_main, &spans[i]) == 0)
      live[i] = 1;
    else
      fn(ctx, s, e); /* spawn failed: run the span inline */
  }
  fn(ctx, 0, chunk > n ? n : chunk);
  for (long i = 1; i < nt; i++)
    if (live[i]) pthread_join(tids[i], NULL);
}

/* ------------------------------------------------------------------ */
/* GEMM-shaped kernels                                                 */
/* ------------------------------------------------------------------ */

typedef struct {
  const float *a, *b, *bias;
  float *c;
  long n, k;
  int relu;
} affine_ctx_t;

/* Fallback GEMM rows + fused epilogue, [row_start, row_end). */
static void affine_rows_fallback(void *vctx, long row_start, long row_end) {
  affine_ctx_t *ctx = (affine_ctx_t *)vctx;
  long n = ctx->n, k = ctx->k;
  for (long i = row_start; i < row_end; i++) {
    float *ci = ctx->c + i * n;
    const float *ai = ctx->a + i * k;
    if (ctx->bias)
      memcpy(ci, ctx->bias, n * sizeof(float));
    else
      memset(ci, 0, n * sizeof(float));
    for (long p = 0; p < k; p++) {
      float av = ai[p];
      const float *bp = ctx->b + p * n;
      for (long j = 0; j < n; j++) ci[j] += av * bp[j];
    }
  }
}

typedef struct {
  const float *bias;
  float *c;
  long n;
  int relu;
} epilogue_ctx_t;

static void epilogue_rows(void *vctx, long row_start, long row_end) {
  epilogue_ctx_t *ctx = (epilogue_ctx_t *)vctx;
  long n = ctx->n;
  for (long i = row_start; i < row_end; i++) {
    float *ci = ctx->c + i * n;
    if (ctx->bias)
      for (long j = 0; j < n; j++) ci[j] += ctx->bias[j];
    if (ctx->relu)
      for (long j = 0; j < n; j++) ci[j] = ci[j] > 0.0f ? ci[j] : 0.0f;
  }
}

/* C(m,n) = A(m,k) @ B(k,n) [+ bias row] [then relu], fused. */
void repro_affine_f32(const float *a, const float *b, const float *bias,
                      float *c, long m, long n, long k, int relu) {
  if (g_sgemm) {
    sgemm(0, m, n, k, 1.0f, a, b, n, c);
    if (bias || relu) {
      epilogue_ctx_t ctx = {bias, c, n, relu};
      parallel_for(epilogue_rows, &ctx, m, 16384 / (n > 0 ? n : 1) + 1);
    }
  } else {
    affine_ctx_t ctx = {a, b, bias, c, n, k, relu};
    parallel_for(affine_rows_fallback, &ctx, m, 32);
    if (relu) {
      epilogue_ctx_t ectx = {NULL, c, n, relu};
      parallel_for(epilogue_rows, &ectx, m, 16384 / (n > 0 ? n : 1) + 1);
    }
  }
}

/* Batched attention scores: out[s] = scale * q[s] @ k[s]^T for
 * `slices` independent (t, d) x (s_len, d) slabs. */
void repro_attn_scores_f32(const float *q, const float *k, float *out,
                           long slices, long t, long s_len, long d,
                           float scale) {
  for (long s = 0; s < slices; s++)
    sgemm(1, t, s_len, d, scale, q + s * t * d, k + s * s_len * d, d,
          out + s * t * s_len);
}

/* Batched attention context: out[s] = attn[s] @ v[s]. */
void repro_attn_context_f32(const float *attn, const float *v, float *out,
                            long slices, long t, long s_len, long d) {
  for (long s = 0; s < slices; s++)
    sgemm(0, t, d, s_len, 1.0f, attn + s * t * s_len, v + s * s_len * d, d,
          out + s * t * d);
}

/* softmax machinery (the kernel itself lives with the elementwise
 * kernels below; the fused attention needs it per-slab here) */
typedef struct {
  const float *x;
  float *y;
  long cols;
} softmax_ctx_t;

static void softmax_rows(void *vctx, long row_start, long row_end);

/* Fused attention forward: per (batch, head) slice, run
 * scores-GEMM -> row softmax -> context-GEMM back to back, so the
 * (t, s_len) slab stays cache-hot across all three stages instead of
 * each stage streaming the full (slices, t, s_len) tensor through
 * memory.  The probabilities are still materialized in `probs`
 * (backward needs them), written exactly once. */
void repro_attention_f32(const float *q, const float *k, const float *v,
                         float *probs, float *out, long slices, long t,
                         long s_len, long d, float scale) {
  for (long s = 0; s < slices; s++) {
    float *slab = probs + s * t * s_len;
    sgemm(1, t, s_len, d, scale, q + s * t * d, k + s * s_len * d, d, slab);
    softmax_ctx_t ctx = {slab, slab, s_len};
    softmax_rows(&ctx, 0, t);
    sgemm(0, t, d, s_len, 1.0f, slab, v + s * s_len * d, d,
          out + s * t * d);
  }
}

/* ------------------------------------------------------------------ */
/* elementwise / reduction kernels                                     */
/* ------------------------------------------------------------------ */

typedef struct {
  const float *x;
  float *y;
} map_ctx_t;

static void relu_range(void *vctx, long start, long end) {
  map_ctx_t *ctx = (map_ctx_t *)vctx;
  const float *x = ctx->x;
  float *y = ctx->y;
  for (long i = start; i < end; i++) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void repro_relu_f32(const float *x, float *y, long n) {
  map_ctx_t ctx = {x, y};
  parallel_for(relu_range, &ctx, n, 1 << 18);
}

static void tanh_range(void *vctx, long start, long end) {
  map_ctx_t *ctx = (map_ctx_t *)vctx;
  const float *x = ctx->x;
  float *y = ctx->y;
  for (long i = start; i < end; i++) y[i] = tanhf(x[i]);
}

void repro_tanh_f32(const float *x, float *y, long n) {
  map_ctx_t ctx = {x, y};
  parallel_for(tanh_range, &ctx, n, 1 << 16);
}

static void softmax_rows(void *vctx, long row_start, long row_end) {
  softmax_ctx_t *ctx = (softmax_ctx_t *)vctx;
  long cols = ctx->cols;
  for (long r = row_start; r < row_end; r++) {
    const float *xr = ctx->x + r * cols;
    float *yr = ctx->y + r * cols;
    float mx = xr[0];
    for (long j = 1; j < cols; j++)
      if (xr[j] > mx) mx = xr[j];
    float sum = 0.0f;
    for (long j = 0; j < cols; j++) {
      float e = expf(xr[j] - mx);
      yr[j] = e;
      sum += e;
    }
    float inv = 1.0f / sum;
    for (long j = 0; j < cols; j++) yr[j] *= inv;
  }
}

/* Row-wise numerically stable softmax over the last axis. */
void repro_softmax_f32(const float *x, float *y, long rows, long cols) {
  softmax_ctx_t ctx = {x, y, cols};
  parallel_for(softmax_rows, &ctx, rows, 65536 / (cols > 0 ? cols : 1) + 1);
}

/* ------------------------------------------------------------------ */
/* beamforming kernels                                                 */
/* ------------------------------------------------------------------ */

typedef struct {
  const float *rf;
  const int32_t *lower, *upper;
  const float *frac;
  const uint8_t *valid;
  float *out;
  int pair;
} gather_ctx_t;

static void gather_lerp_range(void *vctx, long start, long end) {
  gather_ctx_t *ctx = (gather_ctx_t *)vctx;
  const float *rf = ctx->rf;
  if (ctx->pair == 1) {
    for (long i = start; i < end; i++) {
      float lo = rf[ctx->lower[i]];
      float hi = rf[ctx->upper[i]];
      float v = ctx->valid[i] ? 1.0f : 0.0f;
      ctx->out[i] = (lo + ctx->frac[i] * (hi - lo)) * v;
    }
  } else {
    for (long i = start; i < end; i++) {
      long l2 = (long)ctx->lower[i] * 2;
      long u2 = (long)ctx->upper[i] * 2;
      float f = ctx->frac[i];
      float v = ctx->valid[i] ? 1.0f : 0.0f;
      float lo_re = rf[l2], lo_im = rf[l2 + 1];
      ctx->out[2 * i] = (lo_re + f * (rf[u2] - lo_re)) * v;
      ctx->out[2 * i + 1] = (lo_im + f * (rf[u2 + 1] - lo_im)) * v;
    }
  }
}

/* Fused gather + linear interpolation + validity mask over the
 * flattened per-plan index tables (pair = 1 float32, 2 complex64). */
void repro_gather_lerp_f32(const float *rf, const int32_t *lower,
                           const int32_t *upper, const float *frac,
                           const uint8_t *valid, float *out, long n,
                           int pair) {
  gather_ctx_t ctx = {rf, lower, upper, frac, valid, out, pair};
  parallel_for(gather_lerp_range, &ctx, n, 1 << 17);
}

typedef struct {
  const float *tofc, *apod;
  float *out;
  long elements;
  int pair;
} das_ctx_t;

static void das_sum_range(void *vctx, long start, long end) {
  das_ctx_t *ctx = (das_ctx_t *)vctx;
  long e_count = ctx->elements;
  float inv = ctx->apod ? 1.0f : 1.0f / (float)e_count;
  if (ctx->pair == 1) {
    for (long p = start; p < end; p++) {
      const float *tp = ctx->tofc + p * e_count;
      float acc = 0.0f;
      if (ctx->apod) {
        const float *ap = ctx->apod + p * e_count;
        for (long e = 0; e < e_count; e++) acc += tp[e] * ap[e];
      } else {
        for (long e = 0; e < e_count; e++) acc += tp[e];
      }
      ctx->out[p] = acc * inv;
    }
  } else {
    for (long p = start; p < end; p++) {
      const float *tp = ctx->tofc + p * e_count * 2;
      float acc_re = 0.0f, acc_im = 0.0f;
      if (ctx->apod) {
        const float *ap = ctx->apod + p * e_count;
        for (long e = 0; e < e_count; e++) {
          acc_re += tp[2 * e] * ap[e];
          acc_im += tp[2 * e + 1] * ap[e];
        }
      } else {
        for (long e = 0; e < e_count; e++) {
          acc_re += tp[2 * e];
          acc_im += tp[2 * e + 1];
        }
      }
      ctx->out[2 * p] = acc_re * inv;
      ctx->out[2 * p + 1] = acc_im * inv;
    }
  }
}

/* Aperture reduction over the last axis of (pixels, elements): mean
 * when `apod` is NULL, apodization-weighted sum otherwise.  The
 * apodization is real even when the ToFC cube is complex. */
void repro_das_sum_f32(const float *tofc, const float *apod, float *out,
                       long pixels, long elements, int pair) {
  das_ctx_t ctx = {tofc, apod, out, elements, pair};
  parallel_for(das_sum_range, &ctx, pixels,
               32768 / (elements > 0 ? elements : 1) + 1);
}

typedef struct {
  const float *x;
  const int32_t *idx;
  float *out;
  long frame, cols;
} im2col_ctx_t;

static void im2col_batches(void *vctx, long batch_start, long batch_end) {
  im2col_ctx_t *ctx = (im2col_ctx_t *)vctx;
  long frame = ctx->frame, cols = ctx->cols;
  for (long b = batch_start; b < batch_end; b++) {
    const float *xb = ctx->x + b * frame;
    float *ob = ctx->out + b * cols;
    for (long j = 0; j < cols; j++) {
      int32_t src = ctx->idx[j];
      ob[j] = src < 0 ? 0.0f : xb[src];
    }
  }
}

/* Patch gather through a signed index table: idx[j] is the flat
 * source position in the *unpadded* (h, w, c) frame, or -1 for a
 * padding cell — no padded copy is ever materialized. */
void repro_im2col_f32(const float *x, const int32_t *idx, float *out,
                      long batch, long frame, long cols) {
  im2col_ctx_t ctx = {x, idx, out, frame, cols};
  parallel_for(im2col_batches, &ctx, batch, 1);
}
