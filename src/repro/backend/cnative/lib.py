"""ctypes bindings for the compiled ``cnative`` kernel library.

Loads (building if needed) the shared library produced by
:mod:`repro.backend.cnative.build`, declares argtypes for every
``repro_*`` entry point, resolves the best available ``cblas_sgemm``
from the BLAS that numpy itself bundles, and hands it to the C side as
a function pointer.  ctypes releases the GIL for every foreign call,
which is what lets the pthread fan-out inside the kernels use real
cores.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import os
import threading
from pathlib import Path
from typing import Any

import numpy as np

from repro.backend.cnative.build import build_library

_c_ptr = ctypes.c_void_p
_c_long = ctypes.c_long
_c_int = ctypes.c_int
_c_float = ctypes.c_float

#: argtypes for every exported kernel symbol (restype is None unless
#: listed in ``_INT_RETURNS``).
_SIGNATURES: dict[str, list[Any]] = {
    "repro_set_sgemm": [_c_ptr, _c_int],
    "repro_has_sgemm": [],
    "repro_set_threads": [_c_int],
    "repro_get_threads": [],
    "repro_affine_f32": [
        _c_ptr, _c_ptr, _c_ptr, _c_ptr, _c_long, _c_long, _c_long, _c_int,
    ],
    "repro_attn_scores_f32": [
        _c_ptr, _c_ptr, _c_ptr, _c_long, _c_long, _c_long, _c_long, _c_float,
    ],
    "repro_attn_context_f32": [
        _c_ptr, _c_ptr, _c_ptr, _c_long, _c_long, _c_long, _c_long,
    ],
    "repro_attention_f32": [
        _c_ptr, _c_ptr, _c_ptr, _c_ptr, _c_ptr,
        _c_long, _c_long, _c_long, _c_long, _c_float,
    ],
    "repro_relu_f32": [_c_ptr, _c_ptr, _c_long],
    "repro_tanh_f32": [_c_ptr, _c_ptr, _c_long],
    "repro_softmax_f32": [_c_ptr, _c_ptr, _c_long, _c_long],
    "repro_gather_lerp_f32": [
        _c_ptr, _c_ptr, _c_ptr, _c_ptr, _c_ptr, _c_ptr, _c_long, _c_int,
    ],
    "repro_das_sum_f32": [
        _c_ptr, _c_ptr, _c_ptr, _c_long, _c_long, _c_int,
    ],
    "repro_im2col_f32": [
        _c_ptr, _c_ptr, _c_ptr, _c_long, _c_long, _c_long,
    ],
}

_INT_RETURNS = frozenset({"repro_has_sgemm", "repro_get_threads"})

#: (symbol, is64) pairs tried in order inside each candidate BLAS.
#: numpy >= 2 bundles scipy-openblas with ``scipy_``-prefixed CBLAS
#: symbols; the 64-suffix variants take 64-bit integer arguments.
_SGEMM_SYMBOLS: tuple[tuple[str, int], ...] = (
    ("scipy_cblas_sgemm64_", 1),
    ("cblas_sgemm64_", 1),
    ("scipy_cblas_sgemm", 0),
    ("cblas_sgemm", 0),
)


def _blas_candidates() -> list[str]:
    """Shared libraries that may export an SGEMM, best first."""
    paths: list[str] = []
    site = Path(np.__file__).resolve().parent.parent
    for libs_dir in ("numpy.libs", "scipy.libs"):
        directory = site / libs_dir
        if directory.is_dir():
            for pattern in ("libscipy_openblas*.so*", "libopenblas*.so*"):
                paths.extend(sorted(str(p) for p in directory.glob(pattern)))
    for name in ("openblas", "cblas", "blas"):
        found = ctypes.util.find_library(name)
        if found:
            paths.append(found)
    return paths


class CNativeKernels:
    """Loaded kernel library with typed entry points.

    Thin wrapper whose attributes are the bound ctypes functions
    (``affine_f32``, ``softmax_f32``, ...); also keeps the BLAS CDLL
    alive for as long as the C side holds its function pointer.
    """

    def __getattr__(self, name: str) -> Any:
        """Bound kernel symbols are attached dynamically in __init__."""
        raise AttributeError(name)

    def __init__(self, library_path: Path) -> None:
        self.library_path = library_path
        self._cdll = ctypes.CDLL(str(library_path))
        for symbol, argtypes in _SIGNATURES.items():
            fn = getattr(self._cdll, symbol)
            fn.argtypes = argtypes
            fn.restype = _c_int if symbol in _INT_RETURNS else None
            if symbol.endswith("_f32"):
                # Only the array kernels are bound as attributes; the
                # set/get state symbols are wrapped by properties below.
                setattr(self, symbol.removeprefix("repro_"), fn)
        self._blas_handle: ctypes.CDLL | None = None
        self._install_sgemm()
        self._cdll.repro_set_threads(
            int(os.environ.get("REPRO_CNATIVE_THREADS", os.cpu_count() or 1))
        )

    @property
    def has_sgemm(self) -> bool:
        """Whether a real BLAS SGEMM backs the GEMM-shaped kernels."""
        return bool(self._cdll.repro_has_sgemm())

    @property
    def threads(self) -> int:
        """Thread count the C fan-out is configured with."""
        return int(self._cdll.repro_get_threads())

    def _install_sgemm(self) -> None:
        """Resolve ``cblas_sgemm`` and hand it to the C side.

        Failure is not an error: the C kernels carry a threaded blocked
        fallback, so a host whose numpy ships no reachable BLAS still
        gets a correct (slower) backend.
        """
        for path in _blas_candidates():
            try:
                handle = ctypes.CDLL(path, mode=ctypes.RTLD_LOCAL)
            except OSError:
                continue
            for symbol, is64 in _SGEMM_SYMBOLS:
                try:
                    fn = getattr(handle, symbol)
                except AttributeError:
                    continue
                self._blas_handle = handle
                self._cdll.repro_set_sgemm(
                    ctypes.cast(fn, ctypes.c_void_p), is64
                )
                return


_kernels: CNativeKernels | None = None
_kernels_lock = threading.Lock()


def load_kernels() -> CNativeKernels:
    """Build (if needed) and load the kernel library, once per process.

    Raises :class:`repro.backend.cnative.build.CNativeBuildError` when
    the library cannot be produced on this host.
    """
    global _kernels
    with _kernels_lock:
        if _kernels is None:
            _kernels = CNativeKernels(build_library())
        return _kernels
