"""The ``cnative`` backend: compiled C kernels over the fast-path caches.

Subclasses :class:`~repro.backend.fast.NumpyFastBackend` so the dtype
policy, the per-plan gather tables, the MVDR kernels and the scratch
machinery are shared; the hot paths named by the roadmap — the
Dense/Conv2D GEMM + bias (+ fused ReLU epilogue on the C side when the
caller is the affine kernel), im2col, the ToF gather+lerp, the DAS
aperture reduction, attention, and the elementwise relu/tanh/softmax —
are dispatched to the shared library built by
:mod:`repro.backend.cnative.build` and bound in
:mod:`repro.backend.cnative.lib`.

Why it is faster than ``numpy-fast`` on the same BLAS: the GEMMs call
the *same* ``cblas_sgemm``, but every surrounding memory-bound pass
(bias add, ReLU mask+select, softmax exp/sum temporaries, gather-lerp
temporaries, the padded im2col copy) collapses into one fused C loop —
and ctypes releases the GIL for each call, so those loops fan out over
real threads.

Numerics: float32 throughout, compiled with ``-ffast-math`` — softmax
uses the libmvec-vectorized ``expf`` (observed |err| ~1e-8 vs numpy)
and reductions are reassociated.  Complex inputs take the ``pair``
paths (gather/das) or fall back to the inherited float kernels
(GEMM-shaped ops), so analytic-signal data never loses phase.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.backend.base import Array
from repro.backend.fast import _SCRATCH_POOL_CAP, NumpyFastBackend
from repro.backend.cnative.lib import CNativeKernels, load_kernels


def _ptr(array: Array | None) -> int | None:
    """ctypes-ready base address (``None`` stays ``None``)."""
    return None if array is None else array.ctypes.data


class CNativeBackend(NumpyFastBackend):
    """Compiled float32 kernels with threaded, fused inner loops."""

    name = "cnative"
    #: Conformance tolerances vs the float64 reference.  Slightly wider
    #: than ``numpy-fast``: ``-ffast-math`` reassociates the sequential
    #: C reductions (DAS aperture sums, softmax row sums), which drifts
    #: a few ULPs further than numpy's pairwise summation on top of the
    #: shared float32 roundoff.
    rtol = 2e-3
    atol = 2e-4

    def __init__(self, kernels: CNativeKernels | None = None) -> None:
        super().__init__()
        #: Raises CNativeBuildError when the host cannot build the
        #: library — register_cnative_backend() turns that into a
        #: graceful mark_backend_unavailable().
        self._kernels = kernels if kernels is not None else load_kernels()
        self._signed_im2col: OrderedDict[tuple[Any, ...], Array] = (
            OrderedDict()
        )
        self._signed_im2col_lock = threading.Lock()

    # -- GEMM-shaped kernels --------------------------------------------

    def matmul(self, x: Array, weight: Array) -> Array:
        """Flattened SGEMM through the C affine kernel (no bias)."""
        if (
            np.iscomplexobj(x)
            or np.iscomplexobj(weight)
            or x.size == 0
            or weight.size == 0
        ):
            # Delegate complex/degenerate shapes straight to the fast
            # backend's GEMM (NOT through self.affine: the inherited
            # affine dispatches back to self.matmul).
            return super().matmul(x, weight)
        return self.affine(x, weight, None)

    def affine(
        self,
        x: Array,
        weight: Array,
        bias: Array | None,
    ) -> Array:
        """``x @ weight (+ bias)`` with the bias fused into the C epilogue."""
        return self._affine(x, weight, bias, relu=False)

    def affine_relu(
        self,
        x: Array,
        weight: Array,
        bias: Array | None,
    ) -> Array:
        """Fused ``relu(x @ weight + bias)``: ReLU rides the bias pass.

        The separate relu kernel would re-read and re-write the whole
        activation (plus a fresh allocation); here it is one extra
        ``max`` inside the epilogue loop that already touches every
        output element.
        """
        return self._affine(x, weight, bias, relu=True)

    def _affine(
        self,
        x: Array,
        weight: Array,
        bias: Array | None,
        relu: bool,
    ) -> Array:
        if (
            np.iscomplexobj(x)
            or np.iscomplexobj(weight)
            or x.size == 0
            or weight.size == 0
        ):
            fallback = super().affine(x, weight, bias)
            return super().relu(fallback) if relu else fallback
        x32 = self._compute_cast(x)
        w32 = self._compute_cast(weight)
        b32 = None if bias is None else self._compute_cast(bias)
        k = x32.shape[-1]
        n = w32.shape[-1]
        if b32 is not None and b32.shape != (n,):
            fallback = super().affine(x, weight, bias)
            return super().relu(fallback) if relu else fallback
        lead = x32.shape[:-1]
        flat = x32.reshape(-1, k)
        m = flat.shape[0]
        out = np.empty((m, n), dtype=np.float32)
        self._kernels.affine_f32(
            _ptr(flat), _ptr(w32), _ptr(b32), _ptr(out), m, n, k,
            1 if relu else 0,
        )
        return out.reshape(*lead, n)

    def im2col(
        self,
        x: Array,
        kernel_size: tuple[int, int],
        in_channels: int,
    ) -> Array:
        """Patch gather through a signed index table — no padded copy.

        The table maps each output column to a flat position in the
        *unpadded* ``(H, W, C)`` frame, with ``-1`` marking padding
        cells (the C kernel writes ``0.0`` there), so the per-frame
        padded scratch buffer the fast backend materializes disappears
        entirely.
        """
        kh, kw = kernel_size
        batch, height, width = x.shape[:3]
        x32 = self._compute_cast(x)
        if np.iscomplexobj(x32):
            return super().im2col(x, kernel_size, in_channels)
        indices = self._signed_im2col_table(
            (height, width, in_channels), kernel_size
        )
        cols = indices.shape[0]
        out = np.empty((batch, cols), dtype=np.float32)
        self._kernels.im2col_f32(
            _ptr(x32),
            _ptr(indices),
            _ptr(out),
            batch,
            height * width * in_channels,
            cols,
        )
        return out.reshape(batch, height, width, kh * kw * in_channels)

    def _signed_im2col_table(
        self,
        frame_hwc: tuple[int, int, int],
        kernel_size: tuple[int, int],
    ) -> Array:
        """LRU-cached signed (``-1`` = padding) im2col index table."""
        key = (frame_hwc, kernel_size)
        with self._signed_im2col_lock:
            indices = self._signed_im2col.get(key)
            if indices is not None:
                self._signed_im2col.move_to_end(key)
        if indices is not None:
            return indices
        # Same construction as the fast backend's table — run the
        # reference patch extraction over a linear-index volume — except
        # the pad value is -1 instead of a real position, so the gather
        # needs no padded input.
        kh, kw = kernel_size
        height, width, channels = frame_hwc
        pad_h, pad_w = kh // 2, kw // 2
        linear = np.arange(
            height * width * channels, dtype=np.int32
        ).reshape(1, height, width, channels)
        padded = np.pad(
            linear,
            ((0, 0), (pad_h, pad_h), (pad_w, pad_w), (0, 0)),
            mode="constant",
            constant_values=-1,
        )
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, (kh, kw), axis=(1, 2)
        )
        indices = np.ascontiguousarray(
            windows.transpose(0, 1, 2, 4, 5, 3).reshape(-1)
        )
        with self._signed_im2col_lock:
            while len(self._signed_im2col) >= _SCRATCH_POOL_CAP:
                self._signed_im2col.popitem(last=False)
            self._signed_im2col[key] = indices
        return indices

    def attention_scores(
        self, q: Array, k: Array, scale: float
    ) -> Array:
        """Batched SGEMM scores with the scale folded into alpha."""
        if (
            not self._kernels.has_sgemm
            or np.iscomplexobj(q)
            or np.iscomplexobj(k)
            or q.size == 0
            or k.size == 0
        ):
            return super().attention_scores(q, k, scale)
        q32 = self._compute_cast(q)
        k32 = self._compute_cast(k)
        b, h, t, d = q32.shape
        s_len = k32.shape[2]
        out = np.empty((b, h, t, s_len), dtype=np.float32)
        self._kernels.attn_scores_f32(
            _ptr(q32), _ptr(k32), _ptr(out), b * h, t, s_len, d, scale
        )
        return out

    def attention_context(
        self, attention: Array, v: Array
    ) -> Array:
        """Batched SGEMM attention-weighted value sum."""
        if (
            not self._kernels.has_sgemm
            or np.iscomplexobj(attention)
            or np.iscomplexobj(v)
            or attention.size == 0
            or v.size == 0
        ):
            return super().attention_context(attention, v)
        a32 = self._compute_cast(attention)
        v32 = self._compute_cast(v)
        b, h, t, s_len = a32.shape
        d = v32.shape[-1]
        out = np.empty((b, h, t, d), dtype=np.float32)
        self._kernels.attn_context_f32(
            _ptr(a32), _ptr(v32), _ptr(out), b * h, t, s_len, d
        )
        return out

    def attention(
        self, q: Array, k: Array, v: Array, scale: float
    ) -> tuple[Array, Array]:
        """Slice-fused attention: scores, softmax and context run
        back-to-back per (batch, head) slab while it is cache-hot."""
        if (
            not self._kernels.has_sgemm
            or np.iscomplexobj(q)
            or np.iscomplexobj(k)
            or np.iscomplexobj(v)
            or q.size == 0
            or k.size == 0
            or v.size == 0
        ):
            return super().attention(q, k, v, scale)
        q32 = self._compute_cast(q)
        k32 = self._compute_cast(k)
        v32 = self._compute_cast(v)
        b, h, t, d = q32.shape
        s_len = k32.shape[2]
        probs = np.empty((b, h, t, s_len), dtype=np.float32)
        out = np.empty((b, h, t, d), dtype=np.float32)
        self._kernels.attention_f32(
            _ptr(q32), _ptr(k32), _ptr(v32), _ptr(probs), _ptr(out),
            b * h, t, s_len, d, scale,
        )
        return probs, out

    # -- elementwise / reduction nonlinearities -------------------------

    def relu(self, x: Array) -> Array:
        """Single fused compare+select pass in C."""
        x32 = self._compute_cast(x)
        if np.iscomplexobj(x32) or x32.size == 0:
            return super().relu(x)
        out = np.empty_like(x32)
        self._kernels.relu_f32(_ptr(x32), _ptr(out), x32.size)
        return out

    def tanh(self, x: Array) -> Array:
        """Threaded ``tanhf`` map in C."""
        x32 = self._compute_cast(x)
        if np.iscomplexobj(x32) or x32.size == 0:
            return super().tanh(x)
        out = np.empty_like(x32)
        self._kernels.tanh_f32(_ptr(x32), _ptr(out), x32.size)
        return out

    def softmax(self, x: Array, axis: int = -1) -> Array:
        """Row-fused stable softmax (max, exp, sum, scale in one pass)."""
        x32 = self._compute_cast(x)
        if (
            np.iscomplexobj(x32)
            or x32.size == 0
            or axis % max(x32.ndim, 1) != x32.ndim - 1
        ):
            return super().softmax(x, axis=axis)
        cols = x32.shape[-1]
        out = np.empty_like(x32)
        self._kernels.softmax_f32(
            _ptr(x32), _ptr(out), x32.size // cols, cols
        )
        return out

    # -- beamforming kernels --------------------------------------------

    def apply_plan(self, plan: Any, rf: Array) -> Array:
        """Fused gather+lerp+mask over the shared per-plan tables.

        Reuses the fast backend's cached flat index tables verbatim
        (same ``WeakKeyDictionary``), so a plan warmed under one backend
        is already planned for the other.  Complex RF flows through the
        interleaved ``pair`` path and keeps its phase.
        """
        flat_lower, flat_upper, frac, valid = self._plan_gather_tables(
            plan
        )
        if valid.dtype == np.bool_:
            valid_u8 = valid.view(np.uint8)
        else:
            valid_u8 = np.ascontiguousarray(valid, dtype=np.uint8)
        flat_rf = self._compute_cast(rf).reshape(-1)
        pair = 2 if np.iscomplexobj(flat_rf) else 1
        n = flat_lower.size
        out = np.empty(n, dtype=flat_rf.dtype)
        self._kernels.gather_lerp_f32(
            _ptr(flat_rf),
            _ptr(flat_lower),
            _ptr(flat_upper),
            _ptr(frac),
            _ptr(valid_u8),
            _ptr(out),
            n,
            pair,
        )
        return out.reshape(
            plan.grid.nz, plan.grid.nx, plan.probe.n_elements
        )

    def das_sum(
        self, tofc: Array, apodization: Array | None
    ) -> Array:
        """Threaded aperture reduction (mean or apodization-weighted)."""
        tofc32 = self._compute_cast(tofc)
        if tofc32.size == 0:
            return super().das_sum(tofc, apodization)
        elements = tofc32.shape[-1]
        pixel_shape = tofc32.shape[:-1]
        pixels = tofc32.size // max(elements, 1)
        apod32 = (
            None
            if apodization is None
            else np.ascontiguousarray(apodization, dtype=np.float32)
        )
        pair = 2 if np.iscomplexobj(tofc32) else 1
        out = np.empty(pixel_shape, dtype=tofc32.dtype)
        self._kernels.das_sum_f32(
            _ptr(tofc32), _ptr(apod32), _ptr(out), pixels, elements, pair
        )
        return out
