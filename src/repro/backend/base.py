"""The :class:`ArrayBackend` contract and the backend registry.

Every hot kernel in the repo — the DAS gather/interpolation, the
Dense/Conv2D GEMMs, attention, the quantized-execution matmuls and the
MVDR covariance reductions — dispatches through the *current* backend
instead of calling NumPy directly.  A backend is a bundle of those
kernels with one numerical personality:

* ``numpy`` — the reference: bit-for-bit the operations the repo
  performed before the dispatch layer existed (asserted by the golden
  fixtures under ``tests/golden``),
* ``numpy-fast`` — float32 accumulation, preallocated scratch buffers,
  a fused gather+interpolation for ToF-plan application and cached
  im2col indices for Conv2D (certified against the reference by the
  conformance suite under ``tests/backend``).

Selection precedence (first match wins):

1. an explicit ``get_backend("name")`` argument,
2. the innermost active :func:`use_backend` context *in this thread*,
3. the process default (:func:`set_backend`, else the ``REPRO_BACKEND``
   environment variable, else ``"numpy"``).

The :func:`use_backend` context is thread-local on purpose: the serve
worker pool runs beamformers concurrently, and a per-beamformer backend
(``create_beamformer(..., backend=...)``) must not leak into sibling
workers.

Adding a backend is one registry entry::

    from repro.backend import ArrayBackend, register_backend

    class NumbaBackend(ArrayBackend):
        name = "numba"
        ...

    register_backend(NumbaBackend())

and the conformance suite (parametrized over
:func:`available_backends`) certifies it automatically.
"""

from __future__ import annotations

import abc
import os
import threading
from typing import Any, Callable, overload

import numpy as np
from numpy.typing import NDArray

#: The array type every kernel consumes and produces.  Dtypes are a
#: backend's *policy* (float64 reference vs float32 fast), so the alias
#: is deliberately dtype-agnostic.
Array = NDArray[Any]


class ArrayBackend(abc.ABC):
    """One implementation of every hot kernel.

    Attributes:
        name: registry identity (``"numpy"``, ``"numpy-fast"``, ...).
        rtol, atol: documented conformance tolerances of this backend's
            outputs relative to the ``numpy`` reference, on inputs
            normalized to unit scale.  The reference itself carries
            zeros (bit-for-bit).  The conformance suite compares with
            exactly these values, so they are part of the contract.
    """

    name: str = "abstract"
    rtol: float = 0.0
    atol: float = 0.0

    # -- dtype policy ----------------------------------------------------

    @abc.abstractmethod
    def asarray(self, x: Array) -> Array:
        """Cast ``x`` to this backend's real compute dtype."""

    # -- elementwise / reduction nonlinearities -------------------------
    #
    # These are concrete (not abstract) so pre-existing backends remain
    # valid: the defaults reproduce, operation for operation, what the
    # layers in ``repro.nn.layers`` historically did inline, so routing
    # through them is observationally a refactor for ``numpy`` and
    # ``numpy-fast``.  Compiled backends override them with fused
    # single-pass kernels — on the measured forward path the ``where``
    # mask and the softmax exp/sum temporaries cost more than the GEMMs.

    def relu(self, x: Array) -> Array:
        """``max(x, 0)`` in this backend's compute dtype."""
        x = self.asarray(x)
        return np.where(x > 0, x, 0.0)

    def softmax(self, x: Array, axis: int = -1) -> Array:
        """Numerically stable softmax along ``axis``."""
        x = self.asarray(x)
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out: Array = exp / exp.sum(axis=axis, keepdims=True)
        return out

    def tanh(self, x: Array) -> Array:
        """Hyperbolic tangent in this backend's compute dtype."""
        out: Array = np.tanh(self.asarray(x))
        return out

    # -- GEMM-shaped kernels --------------------------------------------

    @abc.abstractmethod
    def matmul(self, x: Array, weight: Array) -> Array:
        """``x @ weight`` with all leading axes flattened into one GEMM."""

    @abc.abstractmethod
    def affine(
        self,
        x: Array,
        weight: Array,
        bias: Array | None,
    ) -> Array:
        """``x @ weight (+ bias)`` — the Dense/Conv2D forward kernel."""

    def affine_relu(
        self,
        x: Array,
        weight: Array,
        bias: Array | None,
    ) -> Array:
        """``relu(x @ weight (+ bias))`` — the Dense->ReLU peephole.

        The default is literally :meth:`relu` over :meth:`affine` (the
        exact operation sequence the unfused layers perform), so plain
        backends are observationally unchanged; compiled backends
        override it to apply the ReLU inside the GEMM epilogue's
        existing pass over the output instead of a separate
        read-modify-write over the full activation.
        """
        return self.relu(self.affine(x, weight, bias))

    @abc.abstractmethod
    def im2col(
        self,
        x: Array,
        kernel_size: tuple[int, int],
        in_channels: int,
    ) -> Array:
        """``(B, H, W, C) -> (B, H, W, kh*kw*C)`` same-padded patches,
        ordered ``(kh, kw, C)`` along the last axis."""

    @abc.abstractmethod
    def attention_scores(
        self, q: Array, k: Array, scale: float
    ) -> Array:
        """``(B, H, T, k) x (B, H, S, k) -> (B, H, T, S)`` scaled scores."""

    @abc.abstractmethod
    def attention_context(
        self, attention: Array, v: Array
    ) -> Array:
        """``(B, H, T, S) x (B, H, S, k) -> (B, H, T, k)`` weighted sum."""

    def attention(
        self, q: Array, k: Array, v: Array, scale: float
    ) -> tuple[Array, Array]:
        """Full attention forward: ``(probabilities, context)``.

        The default composes :meth:`attention_scores`, :meth:`softmax`
        and :meth:`attention_context` — exactly the sequence the MHA
        layer historically dispatched — so plain backends are
        unchanged.  Compiled backends override it to run the three
        stages slice-by-slice while each ``(T, S)`` slab is cache-hot.
        The probabilities are part of the return value because the
        layer's backward pass consumes them.
        """
        scores = self.attention_scores(q, k, scale)
        probabilities = self.softmax(scores, axis=-1)
        return probabilities, self.attention_context(probabilities, v)

    # -- beamforming kernels --------------------------------------------

    @abc.abstractmethod
    def apply_plan(self, plan: Any, rf: Array) -> Array:
        """Gather + linearly interpolate ``rf`` through a
        :class:`~repro.beamform.tof.TofPlan`'s tables -> ToFC cube.

        ``plan`` is duck-typed (``idx0``/``frac``/``valid``/``grid``/
        ``probe`` attributes) so backends stay import-free of the
        beamforming package.
        """

    @abc.abstractmethod
    def das_sum(
        self, tofc: Array, apodization: Array | None
    ) -> Array:
        """Aperture reduction: mean (``apodization=None``) or weighted
        sum over the last axis of ``(nz, nx, E)``."""

    def prepare_mvdr_windows(self, windows: Array) -> Array:
        """One-time per-column conversion of the subaperture window view.

        ``mvdr_covariance`` and ``mvdr_output`` both consume the same
        ``(nz, W, L)`` strided view; backends that must materialize it
        (e.g. a contiguous compute-dtype copy) override this so the
        copy happens once, not once per kernel.  Default: identity.
        """
        return windows

    @abc.abstractmethod
    def mvdr_covariance(self, windows: Array) -> Array:
        """``(nz, W, L)`` subaperture windows -> ``(nz, L, L)`` averaged
        spatial covariance."""

    @abc.abstractmethod
    def mvdr_output(
        self, weights: Array, windows: Array
    ) -> Array:
        """Distortionless output ``(nz,)``: conjugate-weighted window
        sum averaged over subapertures."""

    def __reduce__(
        self,
    ) -> tuple[Callable[[str], "ArrayBackend | None"], tuple[str]]:
        """Pickle by registry name, not by state.

        Backends carry process-local machinery (thread-local scratch
        pools, locks, cached index tables) that cannot — and should not
        — cross a process boundary.  Reducing to a registry lookup means
        any object holding a backend reference (a
        :class:`~repro.api.base.Beamformer`, a serve task) pickles
        cleanly, and the receiving process resolves its *own* registered
        instance.  A custom backend must therefore be registered in the
        child too (import its module before unpickling); the sharded
        serve workers re-import :mod:`repro.backend` on spawn, which
        covers the built-ins.
        """
        return (resolve_backend, (self.name,))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


# --------------------------------------------------------------------------
# Registry + selection
# --------------------------------------------------------------------------

_REGISTRY: dict[str, ArrayBackend] = {}
#: Backends that exist in the codebase but could not be registered in
#: this process (e.g. ``cnative`` without a C compiler), mapped to a
#: human-readable reason.  :func:`resolve_backend` uses this to turn
#: "unknown backend" into an actionable error for names the user could
#: reasonably expect to work.
_UNAVAILABLE: dict[str, str] = {}
_DEFAULT_NAME = os.environ.get("REPRO_BACKEND", "numpy")
_tls = threading.local()


def register_backend(
    backend: ArrayBackend, overwrite: bool = False
) -> None:
    """Register ``backend`` under ``backend.name``.

    Once registered, the backend is selectable everywhere (``backend=``
    kwargs, :func:`use_backend`, ``REPRO_BACKEND``) and is picked up by
    the conformance suite's backend fixture.
    """
    name = backend.name
    if not name or not isinstance(name, str):
        raise ValueError(f"backend has an invalid name: {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} already registered")
    _REGISTRY[name] = backend
    _UNAVAILABLE.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    if name in ("numpy", "numpy-fast"):
        raise ValueError(f"the built-in backend {name!r} cannot be removed")
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def mark_backend_unavailable(name: str, reason: str) -> None:
    """Record that a known backend could not be registered here.

    The backend stays absent from :func:`available_backends` (nothing
    may select it implicitly), but an *explicit* request for it raises
    a :class:`ValueError` carrying ``reason`` instead of a bare
    "unknown backend" — the difference between a typo and a missing
    C compiler.
    """
    if name not in _REGISTRY:
        _UNAVAILABLE[name] = reason


def backend_unavailable_reason(name: str) -> str | None:
    """Why ``name`` failed to register, or ``None`` if it never tried."""
    return _UNAVAILABLE.get(name)


def _context_stack() -> list[ArrayBackend]:
    stack: list[ArrayBackend] | None = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


@overload
def resolve_backend(backend: None) -> None: ...


@overload
def resolve_backend(backend: "str | ArrayBackend") -> ArrayBackend: ...


def resolve_backend(
    backend: "str | ArrayBackend | None",
) -> ArrayBackend | None:
    """Normalize a user-facing backend argument.

    ``None`` stays ``None`` (meaning *inherit the ambient backend*);
    strings are looked up in the registry; instances pass through.
    """
    if backend is None or isinstance(backend, ArrayBackend):
        return backend
    if isinstance(backend, str):
        try:
            return _REGISTRY[backend]
        except KeyError:
            known = ", ".join(available_backends())
            if backend in _UNAVAILABLE:
                raise ValueError(
                    f"backend {backend!r} is not available in this "
                    f"process: {_UNAVAILABLE[backend]} "
                    f"(registered: {known})"
                ) from None
            raise ValueError(
                f"unknown backend {backend!r}; registered: {known}"
            ) from None
    raise TypeError(
        f"backend must be a name, an ArrayBackend or None, got "
        f"{type(backend).__name__}"
    )


def get_backend(name: "str | ArrayBackend | None" = None) -> ArrayBackend:
    """The backend selected by the precedence rules (module docstring)."""
    if name is not None:
        return resolve_backend(name)
    stack = _context_stack()
    if stack:
        return stack[-1]
    backend = _REGISTRY.get(_DEFAULT_NAME)
    if backend is None:
        known = ", ".join(available_backends())
        raise ValueError(
            f"default backend {_DEFAULT_NAME!r} is not registered "
            f"(registered: {known}); check REPRO_BACKEND/set_backend"
        )
    return backend


def default_backend_name() -> str:
    """Name of the current *process-wide* default backend.

    This is the value a child process must be initialized with to
    inherit the parent's backend configuration: ``REPRO_BACKEND`` is
    only read at import time, so a parent that called
    :func:`set_backend` after startup would otherwise silently hand
    spawned workers the wrong numerics.  The sharded serve engine
    (:mod:`repro.serve.sharding`) passes this to every worker, which
    calls :func:`set_backend` with it before touching any kernel.
    """
    return _DEFAULT_NAME


def set_backend(name: "str | ArrayBackend") -> None:
    """Set the *process-wide* default backend.

    Affects every thread that has no :func:`use_backend` context active.
    """
    global _DEFAULT_NAME
    _DEFAULT_NAME = resolve_backend(name).name


class use_backend:
    """Context manager selecting a backend for the current thread.

    ``use_backend(None)`` is a no-op scope (inherits the ambient
    backend) so callers can wrap unconditionally::

        with use_backend(self.backend):   # None -> inherit
            ...hot path...

    Scopes nest; each thread has its own stack.
    """

    def __init__(self, backend: "str | ArrayBackend | None") -> None:
        self._backend = resolve_backend(backend)

    def __enter__(self) -> ArrayBackend:
        if self._backend is not None:
            _context_stack().append(self._backend)
        return self._backend or get_backend()

    def __exit__(self, *exc_info: object) -> None:
        if self._backend is not None:
            _context_stack().pop()


def backend_names_and_tolerances() -> dict[str, tuple[float, float]]:
    """``{name: (rtol, atol)}`` for every registered backend (docs/tests)."""
    return {
        name: (backend.rtol, backend.atol)
        for name, backend in sorted(_REGISTRY.items())
    }
