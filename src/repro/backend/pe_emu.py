"""The ``pe-emu`` backend: quantized GEMMs through the emulated PE.

:class:`PeEmuBackend` is a *routing shim*, not a kernel library: inside
an :class:`emulated_pe_scope` it sends the three quantized GEMM shapes
(``matmul``, ``attention_scores``, ``attention_context``) through
:class:`repro.fpga.emu.EmulatedPE` — the integer datapath with lane
packing, segmented multiply and full-width accumulation — and delegates
every other kernel (DAS gathers, im2col, softmax, MVDR reductions,
complex arithmetic) to the scope's *base* backend.  Outside any scope
it delegates everything to the ``numpy`` reference, so the conformance
suite certifies it like any other backend (bit-for-bit, rtol=atol=0).

The scope is thread-local, mirroring :func:`repro.backend.use_backend`:
the emulation configuration (scheme + rounding mode + base backend)
must not live on the registered backend instance, because backends are
process-wide singletons pickled by name across serve workers — a
per-beamformer mode stored there would leak between concurrent
beamformers and vanish across process boundaries.  Instead
:class:`~repro.api.adapters.QuantizedBeamformer` carries a plain
``pe=`` string and pushes a scope around each quantized forward, so the
configuration travels with the (picklable) beamformer and re-arms
itself inside every worker::

    with emulated_pe_scope(SCHEMES["20 bits"]):
        y = quantized_forward(model.root, x, SCHEMES["20 bits"])

runs bit-identical to the plain fake-quantized forward while executing
the actual integer pipeline (see docs/fpga-emulation.md).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.backend.base import (
    Array,
    ArrayBackend,
    get_backend,
    resolve_backend,
)

if TYPE_CHECKING:  # lazy at runtime: repro.quant imports repro.backend
    from repro.fpga.emu import EmulatedPE
    from repro.quant.schemes import QuantizationScheme

_tls = threading.local()


@dataclass(frozen=True)
class EmulationSpec:
    """One active emulation configuration (what a scope pushes).

    Attributes:
        scheme: the Table-III quantization scheme being emulated.
        rounding_mode: :data:`repro.fpga.emu.ROUNDING_MODES` member.
        base: backend receiving every non-emulated kernel.
    """

    scheme: "QuantizationScheme"
    rounding_mode: str
    base: ArrayBackend


def _spec_stack() -> "list[EmulationSpec]":
    """This thread's stack of active emulation scopes."""
    stack: list[EmulationSpec] | None = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_emulation() -> EmulationSpec | None:
    """The innermost active :class:`emulated_pe_scope`'s spec, if any."""
    stack = _spec_stack()
    return stack[-1] if stack else None


class emulated_pe_scope:
    """Context manager arming PE emulation for the current thread.

    Pushes an :class:`EmulationSpec` and selects the ``pe-emu`` backend
    for the scope's duration, so every quantized GEMM dispatched inside
    runs on the integer datapath.  ``base`` defaults to the ambient
    backend at entry (unwrapping an ambient ``pe-emu`` to its own base,
    so scopes never recurse into themselves).

    Args:
        scheme: a :class:`~repro.quant.schemes.QuantizationScheme` or a
            registered scheme name (``"20 bits"``, ``"hybrid-1"``, ...).
        rounding_mode: ``"round_at_end"`` (the hardware pipeline) or
            ``"per_level"`` (the legacy per-level-rounding tree).
        base: backend (name or instance) for non-emulated kernels;
            ``None`` inherits the ambient backend.
    """

    def __init__(
        self,
        scheme: "QuantizationScheme | str",
        rounding_mode: str = "round_at_end",
        base: "str | ArrayBackend | None" = None,
    ) -> None:
        from repro.fpga.emu import ROUNDING_MODES
        from repro.quant.schemes import SCHEMES

        if isinstance(scheme, str):
            if scheme not in SCHEMES:
                known = ", ".join(SCHEMES)
                raise ValueError(
                    f"unknown scheme {scheme!r}; known: {known}"
                )
            scheme = SCHEMES[scheme]
        if rounding_mode not in ROUNDING_MODES:
            raise ValueError(
                f"rounding_mode must be one of {ROUNDING_MODES}, got "
                f"{rounding_mode!r}"
            )
        self._scheme = scheme
        self._rounding_mode = rounding_mode
        self._base = resolve_backend(base)
        self._backend_scope: Any = None

    def __enter__(self) -> EmulationSpec:
        from repro.backend.base import use_backend

        base = self._base if self._base is not None else get_backend()
        if isinstance(base, PeEmuBackend):
            base = base._delegate()
        spec = EmulationSpec(
            scheme=self._scheme,
            rounding_mode=self._rounding_mode,
            base=base,
        )
        _spec_stack().append(spec)
        self._backend_scope = use_backend("pe-emu")
        self._backend_scope.__enter__()
        return spec

    def __exit__(self, *exc_info: object) -> None:
        self._backend_scope.__exit__(*exc_info)
        self._backend_scope = None
        _spec_stack().pop()


class PeEmuBackend(ArrayBackend):
    """Backend routing quantized GEMMs through the emulated PE.

    With no scope active this is an exact proxy for the ``numpy``
    reference (rtol = atol = 0, certified by the conformance suite);
    inside a scope, ``matmul`` / ``attention_scores`` /
    ``attention_context`` run on :class:`repro.fpga.emu.EmulatedPE`
    with the scheme's operand formats, and everything else — including
    complex-valued inputs, which the integer datapath does not model —
    goes to the scope's base backend.
    """

    name = "pe-emu"
    rtol = 0.0
    atol = 0.0

    def _delegate(self) -> ArrayBackend:
        """The backend receiving non-emulated kernels right now."""
        spec = current_emulation()
        if spec is not None:
            return spec.base
        return resolve_backend("numpy")

    def _pe(
        self,
        spec: EmulationSpec,
        a_role: str,
        b_role: str,
    ) -> "EmulatedPE":
        """An :class:`EmulatedPE` with per-role operand formats."""
        from repro.fpga.emu import EmulatedPE

        return EmulatedPE(
            spec.scheme.arithmetic,
            a_format=getattr(spec.scheme, a_role),
            b_format=getattr(spec.scheme, b_role),
            rounding_mode=spec.rounding_mode,
        )

    def _active_spec(self, *arrays: Array) -> EmulationSpec | None:
        """The spec to emulate under, or ``None`` to delegate.

        Float schemes have no integer datapath, and complex operands
        (the beamforming side) never enter the accelerator at all.
        """
        spec = current_emulation()
        if spec is None or spec.scheme.arithmetic is None:
            return None
        if any(np.iscomplexobj(array) for array in arrays):
            return None
        return spec

    # -- dtype policy ----------------------------------------------------

    def asarray(self, x: Array) -> Array:
        """Delegate dtype policy to the base backend."""
        return self._delegate().asarray(x)

    # -- emulated GEMM shapes --------------------------------------------

    def matmul(self, x: Array, weight: Array) -> Array:
        """``x @ weight`` on the emulated PE (activations x weights)."""
        spec = self._active_spec(x, weight)
        if spec is None:
            return self._delegate().matmul(x, weight)
        pe = self._pe(spec, "intermediate", "weights")
        return pe.matmul(np.asarray(x, float), np.asarray(weight, float))

    def attention_scores(
        self, q: Array, k: Array, scale: float
    ) -> Array:
        """Scaled ``q k^T`` on the emulated PE (both on the
        intermediate grid), ``scale`` folded into the final round."""
        spec = self._active_spec(q, k)
        if spec is None:
            return self._delegate().attention_scores(q, k, scale)
        pe = self._pe(spec, "intermediate", "intermediate")
        q = np.asarray(q, float)
        k = np.asarray(k, float)
        return pe.matmul(q, np.swapaxes(k, -1, -2), scale=scale)

    def attention_context(
        self, attention: Array, v: Array
    ) -> Array:
        """Probability-weighted value sum on the emulated PE
        (softmax grid x intermediate grid)."""
        spec = self._active_spec(attention, v)
        if spec is None:
            return self._delegate().attention_context(attention, v)
        pe = self._pe(spec, "softmax", "intermediate")
        return pe.matmul(
            np.asarray(attention, float), np.asarray(v, float)
        )

    def attention(
        self, q: Array, k: Array, v: Array, scale: float
    ) -> tuple[Array, Array]:
        """Composed attention; emulated piecewise inside a scope."""
        if self._active_spec(q, k, v) is None:
            return self._delegate().attention(q, k, v, scale)
        return ArrayBackend.attention(self, q, k, v, scale)

    # -- delegated kernels -----------------------------------------------

    def relu(self, x: Array) -> Array:
        """Delegate (dedicated hardware unit, exact)."""
        return self._delegate().relu(x)

    def softmax(self, x: Array, axis: int = -1) -> Array:
        """Delegate (dedicated hardware unit; qexec re-quantizes)."""
        return self._delegate().softmax(x, axis=axis)

    def tanh(self, x: Array) -> Array:
        """Delegate (dedicated hardware unit; qexec re-quantizes)."""
        return self._delegate().tanh(x)

    def affine(
        self, x: Array, weight: Array, bias: Array | None
    ) -> Array:
        """Delegate (the quantized executor adds biases explicitly)."""
        return self._delegate().affine(x, weight, bias)

    def affine_relu(
        self, x: Array, weight: Array, bias: Array | None
    ) -> Array:
        """Delegate (float-path peephole, never on the quantized path)."""
        return self._delegate().affine_relu(x, weight, bias)

    def im2col(
        self,
        x: Array,
        kernel_size: tuple[int, int],
        in_channels: int,
    ) -> Array:
        """Delegate (pure data movement)."""
        return self._delegate().im2col(x, kernel_size, in_channels)

    def apply_plan(self, plan: Any, rf: Array) -> Array:
        """Delegate (beamforming front end, outside the accelerator)."""
        return self._delegate().apply_plan(plan, rf)

    def das_sum(
        self, tofc: Array, apodization: Array | None
    ) -> Array:
        """Delegate (beamforming front end, outside the accelerator)."""
        return self._delegate().das_sum(tofc, apodization)

    def prepare_mvdr_windows(self, windows: Array) -> Array:
        """Delegate (MVDR runs on the host, not the accelerator)."""
        return self._delegate().prepare_mvdr_windows(windows)

    def mvdr_covariance(self, windows: Array) -> Array:
        """Delegate (MVDR runs on the host, not the accelerator)."""
        return self._delegate().mvdr_covariance(windows)

    def mvdr_output(self, weights: Array, windows: Array) -> Array:
        """Delegate (MVDR runs on the host, not the accelerator)."""
        return self._delegate().mvdr_output(weights, windows)
