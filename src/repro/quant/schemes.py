"""The paper's quantization schemes (Table III and Section IV-A).

A scheme assigns a fixed-point format (or float) to each datapath role:

==================  =========================================
role                where it applies
==================  =========================================
``weights``         model parameters, quantized at load time
``arithmetic``      multiply/add results inside the PEs
``intermediate``    layer outputs written back to BRAM
``softmax``         the softmax unit's output probabilities
==================  =========================================

Table III:

============  ========  =========  ============  ============
scheme        weights   softmax    mul/add ops   intermediate
============  ========  =========  ============  ============
Hybrid-1      8 bits    24 bits    20 bits       20 bits
Hybrid-2      8 bits    24 bits    16 bits       16 bits
============  ========  =========  ============  ============

Uniform schemes (24 / 20 / 16 bits) use the same width for every role
except softmax probabilities, which always keep at least their own
format's fraction budget.

Fraction-bit allocation: inputs and targets live in [-1, 1], weights stay
within (-2, 2) (Q1.x), softmax outputs within [0, 1] (Q1.x), and
arithmetic/intermediate values get 5 integer bits of accumulation
headroom (Q5.x) — matching the adder-tree growth of a 16-input PE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quant.fixed_point import FixedPointFormat

_ARITH_INT_BITS = 5


def _weights_format(bits: int) -> FixedPointFormat:
    return FixedPointFormat(total_bits=bits, fraction_bits=bits - 2)


def _softmax_format(bits: int) -> FixedPointFormat:
    return FixedPointFormat(total_bits=bits, fraction_bits=bits - 2)


def _arith_format(bits: int) -> FixedPointFormat:
    return FixedPointFormat(
        total_bits=bits, fraction_bits=bits - 1 - _ARITH_INT_BITS
    )


@dataclass(frozen=True)
class QuantizationScheme:
    """Formats per datapath role; ``None`` everywhere = float reference."""

    name: str
    weights: FixedPointFormat | None
    softmax: FixedPointFormat | None
    arithmetic: FixedPointFormat | None
    intermediate: FixedPointFormat | None

    @property
    def is_float(self) -> bool:
        return (
            self.weights is None
            and self.softmax is None
            and self.arithmetic is None
            and self.intermediate is None
        )

    def role_bits(self, role: str) -> int | None:
        """Word length of a role (None = float)."""
        fmt = getattr(self, role)
        return None if fmt is None else fmt.total_bits


FLOAT = QuantizationScheme(
    name="float", weights=None, softmax=None, arithmetic=None,
    intermediate=None,
)


def uniform_scheme(bits: int) -> QuantizationScheme:
    """Uniform quantization: every role at ``bits`` (paper's 24/20/16)."""
    if bits < 8:
        raise ValueError(f"uniform schemes need >= 8 bits, got {bits}")
    return QuantizationScheme(
        name=f"{bits} bits",
        weights=_weights_format(bits),
        softmax=_softmax_format(bits),
        arithmetic=_arith_format(bits),
        intermediate=_arith_format(bits),
    )


HYBRID1 = QuantizationScheme(
    name="hybrid-1",
    weights=_weights_format(8),
    softmax=_softmax_format(24),
    arithmetic=_arith_format(20),
    intermediate=_arith_format(20),
)

HYBRID2 = QuantizationScheme(
    name="hybrid-2",
    weights=_weights_format(8),
    softmax=_softmax_format(24),
    arithmetic=_arith_format(16),
    intermediate=_arith_format(16),
)

SCHEMES: dict[str, QuantizationScheme] = {
    "float": FLOAT,
    "24 bits": uniform_scheme(24),
    "20 bits": uniform_scheme(20),
    "16 bits": uniform_scheme(16),
    "hybrid-1": HYBRID1,
    "hybrid-2": HYBRID2,
}
