"""Quantized forward execution.

Runs a trained model under a :class:`QuantizationScheme`, applying fixed
point exactly where the FPGA datapath does:

* parameters are quantized at load time (``weights`` format; biases live
  in the accumulator, so they use the ``arithmetic`` format),
* every multiply/accumulate result is quantized to the ``arithmetic``
  format,
* every layer output written back to memory is quantized to the
  ``intermediate`` format,
* softmax probabilities are quantized to the ``softmax`` format,
* non-linear units that the accelerator implements with dedicated
  hardware (ReLU, softmax, the division/sqrt inside layer norm) are
  evaluated exactly and re-quantized on output (paper Section III-D).

This is "fake quantization": values stay float64 but are snapped to the
representable grid, which is numerically identical to the integer
datapath for these word lengths.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.models.tiny_vbf import TinyVbfNetwork
from repro.nn.layers.activations import ReLU, Softmax, Tanh, softmax
from repro.nn.layers.attention import MultiHeadAttention
from repro.nn.layers.base import Layer
from repro.nn.layers.container import Residual, Sequential
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import LearnedPositionalEmbedding
from repro.nn.layers.layernorm import LayerNorm
from repro.nn.layers.patches import Patchify, Unpatchify
from repro.quant.schemes import QuantizationScheme


def _q(fmt, values: np.ndarray) -> np.ndarray:
    """Quantize with an optional format (None = float passthrough)."""
    if fmt is None:
        return values
    return fmt.quantize(values)


def quantized_forward(
    layer: Layer, x: np.ndarray, scheme: QuantizationScheme
) -> np.ndarray:
    """Evaluate ``layer`` on ``x`` under ``scheme`` (see module doc)."""
    if scheme.is_float:
        return layer.forward(x, training=False)

    if isinstance(layer, Sequential):
        for child in layer.layers:
            x = quantized_forward(child, x, scheme)
        return x

    if isinstance(layer, Residual):
        inner = quantized_forward(layer.inner, x, scheme)
        return _q(scheme.intermediate, x + inner)

    if isinstance(layer, TinyVbfNetwork):
        x = _q(scheme.intermediate, x)
        pixel = quantized_forward(layer.pixel_encoder, x, scheme)
        context = quantized_forward(layer.context, pixel, scheme)
        if layer.config.use_pixel_skip:
            combined = np.concatenate([pixel, context], axis=-1)
        else:
            combined = context
        return quantized_forward(layer.head, combined, scheme)

    if isinstance(layer, Dense):
        weight = _q(scheme.weights, layer.weight.value)
        y = _q(scheme.arithmetic, get_backend().matmul(x, weight))
        if layer.bias is not None:
            y = _q(
                scheme.arithmetic, y + _q(scheme.arithmetic,
                                          layer.bias.value)
            )
        return _q(scheme.intermediate, y)

    if isinstance(layer, MultiHeadAttention):
        return _quantized_attention(layer, x, scheme)

    if isinstance(layer, LayerNorm):
        gamma = _q(scheme.weights, layer.gamma.value)
        beta = _q(scheme.arithmetic, layer.beta.value)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normalized = (x - mean) / np.sqrt(var + layer.eps)
        return _q(scheme.intermediate, gamma * normalized + beta)

    if isinstance(layer, ReLU):
        return np.maximum(x, 0.0)

    if isinstance(layer, Tanh):
        return _q(scheme.intermediate, np.tanh(x))

    if isinstance(layer, Softmax):
        return _q(scheme.softmax, softmax(x, axis=layer.axis))

    if isinstance(layer, LearnedPositionalEmbedding):
        embedding = _q(scheme.weights, layer.embedding.value)
        return _q(scheme.intermediate, x + embedding)

    if isinstance(layer, (Patchify, Unpatchify, Dropout)):
        # Pure data movement (dropout is identity at inference).
        return layer.forward(x, training=False)

    raise TypeError(
        f"no quantized execution rule for {type(layer).__name__}"
    )


def _quantized_attention(
    layer: MultiHeadAttention, x: np.ndarray, scheme: QuantizationScheme
) -> np.ndarray:
    """MHA under quantization: Figs. 6-8 of the paper's accelerator."""
    backend = get_backend()

    def project(dense: Dense) -> np.ndarray:
        weight = _q(scheme.weights, dense.weight.value)
        y = _q(scheme.arithmetic, backend.matmul(x, weight))
        if dense.bias is not None:
            y = _q(scheme.arithmetic, y + _q(scheme.arithmetic,
                                             dense.bias.value))
        return _q(scheme.intermediate, y)

    q = layer._split_heads(project(layer.query))
    k = layer._split_heads(project(layer.key))
    v = layer._split_heads(project(layer.value))

    scale = 1.0 / np.sqrt(layer.head_dim)
    scores = _q(
        scheme.arithmetic, backend.attention_scores(q, k, scale)
    )
    attention = _q(scheme.softmax, softmax(scores, axis=-1))
    context = _q(
        scheme.arithmetic, backend.attention_context(attention, v)
    )
    merged = layer._merge_heads(context)

    weight = _q(scheme.weights, layer.output.weight.value)
    out = _q(scheme.arithmetic, backend.matmul(merged, weight))
    if layer.output.bias is not None:
        out = _q(scheme.arithmetic,
                 out + _q(scheme.arithmetic, layer.output.bias.value))
    return _q(scheme.intermediate, out)


#: ``pe=`` knob values -> :mod:`repro.fpga.emu` rounding modes.  ``None``
#: keeps the modeled (fake-quantized) float path; ``"emu"`` runs the
#: round-at-the-end integer pipeline; ``"emu-per-level"`` the legacy
#: per-level-rounding tree.
PE_MODES: dict[str | None, str | None] = {
    None: None,
    "emu": "round_at_end",
    "emu-per-level": "per_level",
}


def resolve_pe_mode(pe: str | None) -> str | None:
    """Validate a ``pe=`` knob value, returning its rounding mode."""
    if pe not in PE_MODES:
        known = ", ".join(repr(key) for key in PE_MODES)
        raise ValueError(f"pe must be one of {known}, got {pe!r}")
    return PE_MODES[pe]


class QuantizedModel:
    """A trained model bound to a quantization scheme.

    ``pe`` selects the execution substrate: ``None`` (default) keeps
    the modeled fake-quantized path; ``"emu"`` / ``"emu-per-level"``
    route every quantized GEMM through the bit-accurate integer PE
    emulator (:mod:`repro.fpga.emu`) via an
    :class:`~repro.backend.pe_emu.emulated_pe_scope`.
    """

    def __init__(
        self, model, scheme: QuantizationScheme, pe: str | None = None
    ) -> None:
        self.model = model
        self.scheme = scheme
        self._pe_mode = resolve_pe_mode(pe)
        self.pe = pe

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._pe_mode is not None:
            from repro.backend.pe_emu import emulated_pe_scope

            with emulated_pe_scope(self.scheme, self._pe_mode):
                return quantized_forward(
                    self.model.root, np.asarray(x, float), self.scheme
                )
        return quantized_forward(self.model.root, np.asarray(x, float),
                                 self.scheme)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
