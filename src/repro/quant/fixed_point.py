"""Saturating fixed-point formats (Q notation).

A :class:`FixedPointFormat` is a signed two's-complement format with
``total_bits = 1 (sign) + integer_bits + fraction_bits``.  Quantization
rounds to the nearest representable step and saturates at the format
limits — the behaviour of the accelerator's datapath registers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format.

    Attributes:
        total_bits: word length including the sign bit.
        fraction_bits: bits right of the binary point.
    """

    total_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError(
                f"total_bits must be >= 2, got {self.total_bits}"
            )
        if self.fraction_bits < 0:
            raise ValueError(
                f"fraction_bits must be >= 0, got {self.fraction_bits}"
            )
        if self.fraction_bits > self.total_bits - 1:
            raise ValueError(
                f"fraction_bits ({self.fraction_bits}) must leave room "
                f"for the sign bit in {self.total_bits} total bits"
            )

    @property
    def integer_bits(self) -> int:
        return self.total_bits - 1 - self.fraction_bits

    @property
    def resolution(self) -> float:
        """Size of one quantization step."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.total_bits - 1) - 1) * self.resolution

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.total_bits - 1)) * self.resolution

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round to the nearest representable value, saturating."""
        values = np.asarray(values, dtype=float)
        steps = np.round(values / self.resolution)
        steps = np.clip(
            steps,
            -(2 ** (self.total_bits - 1)),
            2 ** (self.total_bits - 1) - 1,
        )
        return steps * self.resolution

    def to_integers(self, values: np.ndarray) -> np.ndarray:
        """Integer (step-count) representation of ``quantize(values)``."""
        return np.round(
            self.quantize(values) / self.resolution
        ).astype(np.int64)

    def from_integers(self, steps: np.ndarray) -> np.ndarray:
        """Real values from an integer step-count representation."""
        return np.asarray(steps, dtype=np.int64) * self.resolution

    def quantization_noise_bound(self) -> float:
        """Worst-case rounding error (half a step) inside the range."""
        return self.resolution / 2.0

    def __str__(self) -> str:
        return (
            f"Q{self.integer_bits}.{self.fraction_bits}"
            f" ({self.total_bits} bits)"
        )
