"""Fixed-point quantization of Tiny-VBF (paper Section IV-A, Table III).

The paper quantizes the trained Tiny-VBF with uniform bit-widths (24, 20,
16) and two *hybrid* schemes that allocate different widths to weights
(8 bits), the softmax unit (24 bits), multiply/add arithmetic and
intermediate results (20 or 16 bits).  This package implements:

* :mod:`repro.quant.fixed_point` — saturating round-to-nearest fixed
  point formats,
* :mod:`repro.quant.schemes` — the paper's quantization schemes,
* :mod:`repro.quant.qexec` — a quantized forward executor that applies
  the scheme at the same datapath points the FPGA accelerator does
  (weights at load, products/sums at the arithmetic width, layer outputs
  at the intermediate width, softmax at its own width).
"""

from repro.quant.fixed_point import FixedPointFormat
from repro.quant.schemes import (
    FLOAT,
    HYBRID1,
    HYBRID2,
    SCHEMES,
    QuantizationScheme,
    uniform_scheme,
)
from repro.quant.qexec import QuantizedModel, quantized_forward

__all__ = [
    "FixedPointFormat",
    "QuantizationScheme",
    "FLOAT",
    "HYBRID1",
    "HYBRID2",
    "SCHEMES",
    "uniform_scheme",
    "QuantizedModel",
    "quantized_forward",
]
