"""repro: reproduction of Tiny-VBF (DATE 2024).

A vision-transformer ultrasound beamformer for single-angle plane-wave
imaging, built with every substrate it depends on:

* :mod:`repro.api` — the unified :class:`Beamformer` interface and
  ``create_beamformer`` factory over every datapath (classical, learned,
  FPGA-quantized) with plan-cached ToF geometry,
* :mod:`repro.backend` — pluggable compute backends for the hot paths
  (``numpy`` reference, ``numpy-fast`` float32) behind one registry,
* :mod:`repro.serve` — streaming engine: frame sources, geometry-aware
  micro-batching scheduler, threaded and process-sharded executors with
  backpressure, shared-memory transport, telemetry,
* :mod:`repro.gateway` — TCP serving frontend: versioned wire protocol,
  session server with admission control, pure-Python client,
* :mod:`repro.ultrasound` — plane-wave acquisition simulator and
  PICMUS-style dataset presets,
* :mod:`repro.beamform` — ToF correction, DAS, MVDR, compounding, B-mode,
* :mod:`repro.nn` — a from-scratch NumPy deep-learning framework,
* :mod:`repro.models` — Tiny-VBF, Tiny-CNN and FCNN beamformers,
* :mod:`repro.quant` — fixed-point quantization schemes (Table III),
* :mod:`repro.fpga` — cycle-level accelerator simulator + resource model,
* :mod:`repro.metrics` — CR/CNR/GCNR, FWHM resolution, GOPs/frame,
* :mod:`repro.eval` — experiment runners regenerating the paper's tables
  and figures,
* :mod:`repro.training` — MVDR-supervised training pipeline with a weight
  cache.

See docs/architecture.md for the layer map, DESIGN.md for the
per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "api",
    "backend",
    "gateway",
    "serve",
    "ultrasound",
    "beamform",
    "nn",
    "models",
    "quant",
    "fpga",
    "metrics",
    "eval",
    "training",
    "utils",
]
