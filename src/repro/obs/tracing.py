"""Per-frame tracing: spans, traces, sampling, and the wire context.

One served frame yields one :class:`Trace` — an ordered tree of
:class:`Span` records covering ingress (gateway or source pump),
batching wait, shard dispatch, worker execute (in another process),
collection, and response.  The cross-process hop does **not** pickle
span objects: the parent packs a compact fixed-size struct
(:data:`CTX_STRUCT`, 17 bytes — trace id, parent span id, flags) into
the batch envelope, and the worker reports back *relative* span
offsets that the collector rebases onto the parent's clock.  Worker
and parent monotonic clocks share no epoch, so rebasing anchors the
worker's window to the collector's receive time minus the reported
execute duration.

Sampling is decided once at ingress (``Tracer.start_trace`` returns
``None`` for unsampled frames) so the full pipeline pays only a
``None`` check per frame when tracing is off.

Clocks are duck-typed (``.now() -> float``); pass a
:class:`repro.serve.clock.FakeClock` in tests for deterministic
timestamps.  This module imports nothing from :mod:`repro.serve`.
"""

from __future__ import annotations

import collections
import os
import random
import struct
import threading
import time
from typing import Iterator

#: Wire format of a trace context: ``(trace_id: u64, parent_span_id:
#: u64, flags: u8)`` big-endian — 17 bytes, fixed size, no pickle.
#: Rides in the sharded batch envelope next to each frame payload.
CTX_STRUCT = struct.Struct("!QQB")

#: Flag bit: the frame is sampled (a context is only ever packed for
#: sampled frames today, but the bit keeps the struct self-describing).
FLAG_SAMPLED = 0x01


def pack_context(trace_id: int, parent_span_id: int, flags: int = FLAG_SAMPLED) -> bytes:
    """Pack a trace context into its 17-byte wire form."""
    return CTX_STRUCT.pack(trace_id, parent_span_id, flags)


def unpack_context(blob: bytes) -> tuple[int, int, int]:
    """Unpack a 17-byte wire context into ``(trace_id, parent, flags)``."""
    return CTX_STRUCT.unpack(blob)


class _SystemClock:
    """Fallback duck-typed clock over :func:`time.monotonic`."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()


class Span:
    """One timed operation inside a trace.

    Spans are created through :class:`Trace` (``with trace.span(...)``
    for live scopes, :meth:`Trace.add_span` for retroactive records
    with both endpoints known) — never constructed directly in serving
    code; analysis rule RA008 enforces that discipline so the flight
    recorder cannot accumulate open spans.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start", "end", "process", "attrs",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int,
        start: float,
        end: float | None = None,
        process: int | None = None,
        attrs: dict | None = None,
    ) -> None:
        """Record the span's identity and start; ``end`` may come later."""
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.process = os.getpid() if process is None else process
        self.attrs = attrs or {}

    @property
    def duration(self) -> float | None:
        """Seconds between start and end, or ``None`` while open."""
        if self.end is None:
            return None
        return self.end - self.start

    def as_dict(self) -> dict:
        """JSON-safe view of the span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "process": self.process,
            "attrs": dict(self.attrs),
        }


class _SpanScope:
    """Context manager closing a live span on exit (success or error)."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", span: Span) -> None:
        self._trace = trace
        self._span = span

    @property
    def span_id(self) -> int:
        """The underlying span's id (for parenting children)."""
        return self._span.span_id

    def set(self, **attrs: object) -> None:
        """Attach attributes to the live span."""
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_SpanScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._trace._close(self._span)


class Trace:
    """The span tree of one frame's journey through the pipeline.

    A trace owns a root span covering the whole frame lifetime and a
    flat list of child spans (the tree is reconstructed from
    ``parent_id`` links).  Span ids are a per-trace counter — unique
    within the trace, which is all parenting needs.  The component
    that *created* the trace finishes it (``owner`` records which tier
    that was, so the engine does not finish gateway-owned traces).
    """

    def __init__(
        self,
        trace_id: int,
        name: str,
        start: float,
        tracer: "Tracer | None" = None,
        owner: str = "",
        **attrs: object,
    ) -> None:
        """Open the trace with a root span starting at ``start``."""
        self.trace_id = trace_id
        self.owner = owner
        self._tracer = tracer
        self._lock = threading.Lock()
        self._next_span_id = 1
        self._spans: list[Span] = []
        self._finished = False
        self.root = Span(name, 0, -1, start, attrs=dict(attrs))

    def _clock_now(self) -> float:
        if self._tracer is not None:
            return self._tracer.clock.now()
        return time.monotonic()

    def _new_id(self) -> int:
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
            return span_id

    def _close(self, span: Span) -> None:
        if span.end is None:
            span.end = self._clock_now()
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, parent: int = 0, **attrs: object) -> _SpanScope:
        """Open a live child span; use as ``with trace.span("x"): ...``."""
        live = Span(
            name, self._new_id(), parent, self._clock_now(), attrs=dict(attrs)
        )
        return _SpanScope(self, live)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: int = 0,
        process: int | None = None,
        **attrs: object,
    ) -> int:
        """Record a completed span retroactively; returns its id.

        This is the workhorse for pipeline stages whose endpoints are
        already measured (queue wait, shard execute) — both timestamps
        are known, so nothing is ever left open.
        """
        span = Span(
            name, self._new_id(), parent, start,
            end=end, process=process, attrs=dict(attrs),
        )
        with self._lock:
            self._spans.append(span)
        return span.span_id

    def set(self, **attrs: object) -> None:
        """Attach attributes to the root span."""
        self.root.attrs.update(attrs)

    def finish(self, end: float | None = None, **attrs: object) -> None:
        """Close the root span and hand the trace to its tracer.

        Idempotent: requeued duplicates and orphaned deliveries may
        race to finish; only the first call publishes.
        """
        with self._lock:
            if self._finished:
                return
            self._finished = True
        self.root.attrs.update(attrs)
        self.root.end = end if end is not None else self._clock_now()
        if self._tracer is not None:
            self._tracer._completed(self)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has run."""
        return self._finished

    def spans(self) -> list[Span]:
        """All spans, root first, children in completion order."""
        with self._lock:
            return [self.root, *self._spans]

    def as_dict(self) -> dict:
        """JSON-safe view: trace id, owner, and the full span list."""
        return {
            "trace_id": self.trace_id,
            "owner": self.owner,
            "spans": [span.as_dict() for span in self.spans()],
        }


class Tracer:
    """Sampling trace factory + bounded store of completed traces.

    ``sample_rate`` is the probability a frame is traced: ``0.0`` never
    allocates anything (the hot path sees a single ``None``), ``1.0``
    traces every frame.  Completed traces land in a bounded deque
    (newest kept) served by the gateway ``traces`` verb, and optionally
    in a :class:`~repro.obs.recorder.FlightRecorder` for post-mortems.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        clock: object | None = None,
        capacity: int = 64,
        metrics: object | None = None,
        recorder: object | None = None,
        seed: int | None = None,
    ) -> None:
        """Configure sampling, clock, and completed-trace retention."""
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.clock = clock if clock is not None else _SystemClock()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._done: collections.deque[Trace] = collections.deque(
            maxlen=capacity
        )
        self._next_trace_id = self._rng.getrandbits(32) << 16 | 1
        self._recorder = recorder
        self._traces_total = None
        if metrics is not None:
            self._traces_total = metrics.counter(
                "repro_traces_total",
                "Traces started/completed by the tracer.",
                labels=("event",),
            )

    def start_trace(
        self,
        name: str,
        start: float | None = None,
        owner: str = "",
        **attrs: object,
    ) -> Trace | None:
        """Open a new sampled trace, or ``None`` if this frame is not sampled."""
        if self.sample_rate <= 0.0:
            return None
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            return None
        with self._lock:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
        if start is None:
            start = self.clock.now()
        if self._traces_total is not None:
            self._traces_total.inc(event="started")
        return Trace(trace_id, name, start, tracer=self, owner=owner, **attrs)

    def _completed(self, trace: Trace) -> None:
        with self._lock:
            self._done.append(trace)
        if self._traces_total is not None:
            self._traces_total.inc(event="completed")
        if self._recorder is not None:
            self._recorder.record_trace(trace.as_dict())

    def recent(self, n: int = 16) -> list[dict]:
        """The ``n`` most recently completed traces, newest last."""
        with self._lock:
            traces = list(self._done)[-n:]
        return [trace.as_dict() for trace in traces]

    def drain(self) -> Iterator[dict]:
        """Pop and yield every stored completed trace (oldest first)."""
        while True:
            with self._lock:
                if not self._done:
                    return
                trace = self._done.popleft()
            yield trace.as_dict()


def span_tree(trace_dict: dict) -> dict:
    """Rebuild the nested tree from a :meth:`Trace.as_dict` payload.

    Returns the root span dict with a ``children`` list added to every
    node (children ordered by start time).  Used by the obs CLI's trace
    dump and by the e2e completeness tests.
    """
    spans = [dict(span) for span in trace_dict["spans"]]
    by_id = {span["span_id"]: span for span in spans}
    for span in spans:
        span["children"] = []
    root = by_id[0]
    for span in spans:
        if span["span_id"] == 0:
            continue
        parent = by_id.get(span["parent_id"], root)
        parent["children"].append(span)
    for span in spans:
        span["children"].sort(key=lambda child: child["start"])
    return root


def render_trace(trace_dict: dict) -> str:
    """Human-readable indented rendering of one trace (for the CLI)."""
    root = span_tree(trace_dict)
    lines = [
        f"trace {trace_dict['trace_id']:#x} owner={trace_dict['owner'] or '-'}"
    ]

    def walk(span: dict, depth: int) -> None:
        duration = span.get("duration")
        took = f"{duration * 1e3:.3f}ms" if duration is not None else "open"
        attrs = "".join(
            f" {key}={value}" for key, value in sorted(span["attrs"].items())
        )
        lines.append(
            f"{'  ' * depth}- {span['name']} [{took}]"
            f" pid={span['process']}{attrs}"
        )
        for child in span["children"]:
            walk(child, depth + 1)

    walk(root, 1)
    return "\n".join(lines)
