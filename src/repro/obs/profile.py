"""Opt-in kernel profiling: a timing wrapper around any ArrayBackend.

:class:`ProfilingBackend` delegates every kernel of the
:class:`~repro.backend.ArrayBackend` contract to an inner backend,
timing each call into the ``repro_kernel_seconds{kernel=...,
backend=...}`` histogram of a :class:`~repro.obs.metrics.MetricsRegistry`.
That gives the per-kernel breakdown (gather-lerp, im2col, matmul,
attention, MVDR reductions) that the compiled-backend roadmap item
will be judged against — measured on live traffic, not a synthetic
microbench.

The wrapper keeps the inner backend's registry ``name`` (an instance
attribute), so the inherited pickle-by-name ``__reduce__`` still
resolves correctly across process boundaries; it defines **no** pickle
hooks of its own (analysis rule RA004 forbids them on ArrayBackend
subclasses).  A child process that unpickles a beamformer therefore
gets its own plain registered backend — to profile *inside* shard
workers, the sharded engine passes ``profile_kernels=True`` and each
worker wraps its local default backend with a local registry whose
state is folded back to the parent at end-of-run.

This module is the only place :mod:`repro.obs` touches
:mod:`repro.backend`; the rest of the package is dependency-free.
"""

from __future__ import annotations

import time
from typing import Any

from repro.backend import (
    Array,
    ArrayBackend,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.obs.metrics import MetricsRegistry

#: Histogram family every profiled kernel call lands in.
KERNEL_METRIC = "repro_kernel_seconds"


class ProfilingBackend(ArrayBackend):
    """Times every kernel call of a wrapped backend into a histogram.

    The wrapper is numerically transparent: each kernel returns the
    inner backend's result unchanged, and ``rtol``/``atol`` are copied
    from the inner backend so conformance comparisons are unaffected.
    """

    def __init__(
        self,
        inner: "str | ArrayBackend",
        metrics: MetricsRegistry,
        clock: object | None = None,
    ) -> None:
        """Wrap ``inner`` (name or instance), publishing into ``metrics``."""
        resolved = resolve_backend(inner)
        if isinstance(resolved, ProfilingBackend):
            resolved = resolved.inner  # never stack wrappers
        self.inner = resolved
        self.name = resolved.name
        self.rtol = resolved.rtol
        self.atol = resolved.atol
        self._clock_now = (
            clock.now if clock is not None else time.monotonic  # type: ignore[attr-defined]
        )
        self._histogram = metrics.histogram(
            KERNEL_METRIC,
            "Per-call latency of dispatched ArrayBackend kernels.",
            labels=("kernel", "backend"),
        )

    def _observe(self, kernel: str, started: float) -> None:
        self._histogram.observe(
            self._clock_now() - started, kernel=kernel, backend=self.name
        )

    # -- dtype policy ----------------------------------------------------

    def asarray(self, x: Array) -> Array:
        """Timed delegate of :meth:`ArrayBackend.asarray`."""
        started = self._clock_now()
        out = self.inner.asarray(x)
        self._observe("asarray", started)
        return out

    # -- elementwise / reduction nonlinearities -------------------------

    def relu(self, x: Array) -> Array:
        """Timed delegate of :meth:`ArrayBackend.relu`."""
        started = self._clock_now()
        out = self.inner.relu(x)
        self._observe("relu", started)
        return out

    def softmax(self, x: Array, axis: int = -1) -> Array:
        """Timed delegate of :meth:`ArrayBackend.softmax`."""
        started = self._clock_now()
        out = self.inner.softmax(x, axis=axis)
        self._observe("softmax", started)
        return out

    def tanh(self, x: Array) -> Array:
        """Timed delegate of :meth:`ArrayBackend.tanh`."""
        started = self._clock_now()
        out = self.inner.tanh(x)
        self._observe("tanh", started)
        return out

    # -- GEMM-shaped kernels --------------------------------------------

    def matmul(self, x: Array, weight: Array) -> Array:
        """Timed delegate of :meth:`ArrayBackend.matmul`."""
        started = self._clock_now()
        out = self.inner.matmul(x, weight)
        self._observe("matmul", started)
        return out

    def affine(self, x: Array, weight: Array, bias: Array | None) -> Array:
        """Timed delegate of :meth:`ArrayBackend.affine`."""
        started = self._clock_now()
        out = self.inner.affine(x, weight, bias)
        self._observe("affine", started)
        return out

    def affine_relu(
        self, x: Array, weight: Array, bias: Array | None
    ) -> Array:
        """Timed delegate of :meth:`ArrayBackend.affine_relu`.

        Forwards to the inner backend's own (possibly fused) kernel —
        inheriting the base default would re-dispatch through the
        wrapper's ``affine``/``relu`` and silently unfuse a compiled
        backend under profiling.
        """
        started = self._clock_now()
        out = self.inner.affine_relu(x, weight, bias)
        self._observe("affine_relu", started)
        return out

    def im2col(
        self,
        x: Array,
        kernel_size: tuple[int, int],
        in_channels: int,
    ) -> Array:
        """Timed delegate of :meth:`ArrayBackend.im2col`."""
        started = self._clock_now()
        out = self.inner.im2col(x, kernel_size, in_channels)
        self._observe("im2col", started)
        return out

    def attention_scores(self, q: Array, k: Array, scale: float) -> Array:
        """Timed delegate of :meth:`ArrayBackend.attention_scores`."""
        started = self._clock_now()
        out = self.inner.attention_scores(q, k, scale)
        self._observe("attention_scores", started)
        return out

    def attention_context(self, attention: Array, v: Array) -> Array:
        """Timed delegate of :meth:`ArrayBackend.attention_context`."""
        started = self._clock_now()
        out = self.inner.attention_context(attention, v)
        self._observe("attention_context", started)
        return out

    def attention(
        self, q: Array, k: Array, v: Array, scale: float
    ) -> tuple[Array, Array]:
        """Timed delegate of :meth:`ArrayBackend.attention` (forwards to
        the inner backend's possibly-fused implementation)."""
        started = self._clock_now()
        out = self.inner.attention(q, k, v, scale)
        self._observe("attention", started)
        return out

    # -- beamforming kernels --------------------------------------------

    def apply_plan(self, plan: Any, rf: Array) -> Array:
        """Timed delegate of :meth:`ArrayBackend.apply_plan`."""
        started = self._clock_now()
        out = self.inner.apply_plan(plan, rf)
        self._observe("apply_plan", started)
        return out

    def das_sum(self, tofc: Array, apodization: Array | None) -> Array:
        """Timed delegate of :meth:`ArrayBackend.das_sum`."""
        started = self._clock_now()
        out = self.inner.das_sum(tofc, apodization)
        self._observe("das_sum", started)
        return out

    def prepare_mvdr_windows(self, windows: Array) -> Array:
        """Timed delegate of :meth:`ArrayBackend.prepare_mvdr_windows`."""
        started = self._clock_now()
        out = self.inner.prepare_mvdr_windows(windows)
        self._observe("prepare_mvdr_windows", started)
        return out

    def mvdr_covariance(self, windows: Array) -> Array:
        """Timed delegate of :meth:`ArrayBackend.mvdr_covariance`."""
        started = self._clock_now()
        out = self.inner.mvdr_covariance(windows)
        self._observe("mvdr_covariance", started)
        return out

    def mvdr_output(self, weights: Array, windows: Array) -> Array:
        """Timed delegate of :meth:`ArrayBackend.mvdr_output`."""
        started = self._clock_now()
        out = self.inner.mvdr_output(weights, windows)
        self._observe("mvdr_output", started)
        return out


def enable_kernel_profiling(
    metrics: MetricsRegistry,
    backend: "str | ArrayBackend | None" = None,
    clock: object | None = None,
) -> ProfilingBackend:
    """Wrap a backend and re-register the wrapper under its own name.

    After this call, every resolution of that backend name — including
    beamformers created with ``backend="numpy-fast"`` and ambient
    :func:`~repro.backend.get_backend` lookups — dispatches through the
    timing wrapper.  Returns the wrapper; calling
    :func:`disable_kernel_profiling` (or ``register_backend(wrapper.
    inner, overwrite=True)``) restores the plain backend.
    """
    wrapper = ProfilingBackend(
        backend if backend is not None else get_backend(), metrics, clock
    )
    register_backend(wrapper, overwrite=True)
    return wrapper


def disable_kernel_profiling(wrapper: ProfilingBackend) -> None:
    """Undo :func:`enable_kernel_profiling` for ``wrapper``."""
    register_backend(wrapper.inner, overwrite=True)
