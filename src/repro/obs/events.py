"""Structured JSON-lines event log for lifecycle events.

Serving-tier lifecycle — session admit/reject, worker spawn/exit/
restart, drain begin/complete, drop-oldest evictions, engine-broken —
is emitted as one JSON object per line through :class:`EventLog`,
replacing scattered log strings with a machine-parseable stream.  Each
event also feeds the ``repro_events_total{event=...}`` counter and the
flight recorder ring, so a post-mortem dump carries the recent
lifecycle alongside recent traces.

The output stream is opened (or injected) at construction time, never
inside the emit path — gateway coroutines call :meth:`EventLog.emit`
directly, and opening files inside a coroutine would violate RA003.
The ``json.dumps`` here is diagnostics, not wire traffic: RA005's
exact-float rule governs the gateway protocol module only.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import IO


class _SystemClock:
    """Fallback duck-typed clock over :func:`time.monotonic`."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()


class EventLog:
    """Thread-safe JSON-lines logger for lifecycle events.

    With neither ``stream`` nor ``path`` the log still counts and
    records (metrics + flight recorder) but writes nowhere — the
    default for library use, so engines get observability without
    spamming stderr.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        path: str | None = None,
        clock: object | None = None,
        recorder: object | None = None,
        metrics: object | None = None,
    ) -> None:
        """Bind the sink(s); the file (if any) opens here, once."""
        if stream is not None and path is not None:
            raise ValueError("pass stream= or path=, not both")
        self._stream: IO[str] | None = stream
        self._owns_stream = False
        if path is not None:
            self._stream = open(path, "a", encoding="utf-8", buffering=1)
            self._owns_stream = True
        self._clock = clock if clock is not None else _SystemClock()
        self._recorder = recorder
        self._lock = threading.Lock()
        self._events_total = None
        if metrics is not None:
            self._events_total = metrics.counter(
                "repro_events_total",
                "Lifecycle events emitted, by event name.",
                labels=("event",),
            )

    def emit(self, event: str, **fields: object) -> dict:
        """Emit one event; returns the record that was written."""
        record: dict = {"ts": self._clock.now(), "event": event}
        record.update(fields)
        if self._events_total is not None:
            self._events_total.inc(event=event)
        if self._recorder is not None:
            self._recorder.record_event(record)
        if self._stream is not None:
            line = json.dumps(record, sort_keys=True)
            with self._lock:
                try:
                    self._stream.write(line + "\n")
                except ValueError:
                    # Stream already closed (interpreter teardown or an
                    # explicit close during drain) — the recorder and
                    # counters above still captured the event.
                    pass
        return record

    def close(self) -> None:
        """Close the underlying file if this log opened it."""
        if self._owns_stream and self._stream is not None:
            with self._lock:
                self._stream.close()
                self._stream = None
                self._owns_stream = False


def parse_event_lines(text: str) -> list[dict]:
    """Parse a JSON-lines event dump back into records (test helper)."""
    records = []
    for line in io.StringIO(text):
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
