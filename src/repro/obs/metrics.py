"""Metrics primitives: counters, gauges, histograms, and exporters.

One :class:`MetricsRegistry` is the single sink every tier publishes
into — :class:`~repro.serve.telemetry.ServeTelemetry` (per-stage
latencies, frame counters), the sharded engine (worker lifecycle), the
gateway (session/frame admission), and the opt-in kernel profiler
(:mod:`repro.obs.profile`).  The registry exports two formats:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format, served raw by the gateway's ``metrics`` verb and
  scraped by ``python -m repro.obs metrics``,
* :meth:`MetricsRegistry.as_dict` — a JSON-safe nested dict, the shape
  carried in the ``metrics_ok`` reply header.

Cross-process folding: a shard worker accumulates into its own local
registry and ships :meth:`MetricsRegistry.state` back over the result
queue at ``end_run``; the parent folds it in with
:meth:`MetricsRegistry.merge`, so per-kernel timings measured inside
worker processes land in the same histograms the operator scrapes.

The module also carries :func:`parse_prometheus` — a dependency-free
promtext parser used by the CI scrape validation and the obs CLI, so
the exposition format is round-trip tested without installing a
Prometheus client.

This package deliberately imports nothing from :mod:`repro.serve`:
clocks are duck-typed (any object with a ``now()`` method, e.g.
:class:`repro.serve.clock.FakeClock`), keeping ``repro.obs`` a leaf
the serving tiers can depend on without cycles.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable, Iterator

#: Default histogram bucket upper bounds, in seconds.  Tuned for the
#: latencies this repo actually produces: sub-millisecond kernels up to
#: multi-second cold forwards.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: The metric kinds a registry can hold (Prometheus TYPE names).
METRIC_KINDS = ("counter", "gauge", "histogram")


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_key(
    label_names: tuple[str, ...], labels: dict[str, object]
) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"metric expects labels {label_names}, got {tuple(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _render_labels(
    label_names: tuple[str, ...],
    values: tuple[str, ...],
    extra: tuple[tuple[str, str], ...] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(label_names, values)
    ]
    pairs.extend(f'{name}="{_escape_label(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class Metric:
    """Base of one registered metric family (a name + label schema).

    Children (one per distinct label-value tuple) are created lazily on
    first touch; a label-less metric has exactly one child keyed ``()``.
    All mutation goes through the registry's lock, shared by every
    family, so cross-metric invariants (e.g. a scrape) see a consistent
    snapshot.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        """Bind the family to its name, help line and label schema."""
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = lock
        self._children: dict[tuple[str, ...], object] = {}

    def _child(self, labels: dict[str, object]):
        key = _label_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def _new_child(self):
        raise NotImplementedError

    def samples(self) -> Iterator[tuple[str, tuple[str, ...], float]]:
        """Yield ``(sample_suffix_or_name, label_values, value)`` rows."""
        raise NotImplementedError

    def state(self) -> dict:
        """JSON-safe internal state (for :meth:`MetricsRegistry.state`)."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum (Prometheus ``counter``)."""

    kind = "counter"

    def _new_child(self) -> list[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labelled child."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._child(labels)[0] += amount

    def value(self, **labels: object) -> float:
        """Current total of the labelled child (0.0 if never touched)."""
        with self._lock:
            key = _label_key(self.label_names, labels)
            child = self._children.get(key)
            return child[0] if child else 0.0

    def samples(self):
        """One row per labelled child."""
        for key, child in sorted(self._children.items()):
            yield self.name, key, child[0]

    def state(self) -> dict:
        """``{label-values-json: total}``."""
        return {
            json.dumps(key): child[0]
            for key, child in self._children.items()
        }


class Gauge(Metric):
    """A value that can go up and down (Prometheus ``gauge``)."""

    kind = "gauge"

    def _new_child(self) -> list[float]:
        return [0.0]

    def set(self, value: float, **labels: object) -> None:
        """Set the labelled child to ``value``."""
        with self._lock:
            self._child(labels)[0] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (may be negative) to the labelled child."""
        with self._lock:
            self._child(labels)[0] += amount

    def value(self, **labels: object) -> float:
        """Current value of the labelled child (0.0 if never touched)."""
        with self._lock:
            key = _label_key(self.label_names, labels)
            child = self._children.get(key)
            return child[0] if child else 0.0

    def samples(self):
        """One row per labelled child."""
        for key, child in sorted(self._children.items()):
            yield self.name, key, child[0]

    def state(self) -> dict:
        """``{label-values-json: value}``."""
        return {
            json.dumps(key): child[0]
            for key, child in self._children.items()
        }


class _HistogramChild:
    """Bucket counts + sum + count of one labelled histogram series."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last = +Inf overflow
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its (non-cumulative) bucket."""
        self.total += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class Histogram(Metric):
    """Bucketed distribution of observations (Prometheus ``histogram``).

    Buckets are fixed at registration; each child renders cumulative
    ``_bucket{le=...}`` rows plus ``_sum`` and ``_count``, exactly the
    shape a Prometheus scraper expects.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        """Register the family with its fixed bucket bounds."""
        super().__init__(name, help_text, label_names, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labelled series."""
        with self._lock:
            self._child(labels).observe(float(value))

    def snapshot(self, **labels: object) -> dict:
        """``{count, sum}`` of the labelled series (zeros if untouched)."""
        with self._lock:
            key = _label_key(self.label_names, labels)
            child = self._children.get(key)
            if child is None:
                return {"count": 0, "sum": 0.0}
            return {"count": child.count, "sum": child.total}

    def samples(self):
        """Cumulative bucket rows + ``_sum``/``_count`` per child."""
        for key, child in sorted(self._children.items()):
            cumulative = 0
            for bound, count in zip(child.buckets, child.counts):
                cumulative += count
                yield (
                    self.name + "_bucket",
                    key + (("le", format(bound, "g")),),
                    float(cumulative),
                )
            cumulative += child.counts[-1]
            yield (
                self.name + "_bucket",
                key + (("le", "+Inf"),),
                float(cumulative),
            )
            yield self.name + "_sum", key, child.total
            yield self.name + "_count", key, float(child.count)

    def state(self) -> dict:
        """``{label-values-json: {counts, sum, count}}`` (+ bucket bounds)."""
        return {
            "buckets": list(self.buckets),
            "series": {
                json.dumps(key): {
                    "counts": list(child.counts),
                    "sum": child.total,
                    "count": child.count,
                }
                for key, child in self._children.items()
            },
        }


class MetricsRegistry:
    """Thread-safe home of every metric family one process exports.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family (and raises if the kind
    or label schema changed), so independent subsystems can share a
    family without coordinating registration order.
    """

    def __init__(self) -> None:
        """Create an empty registry with one shared mutation lock."""
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(
        self, cls, name: str, help_text: str, labels: tuple[str, ...], **kw
    ):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.label_names != tuple(labels)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{existing.label_names}"
                    )
                return existing
            metric = cls(name, help_text, tuple(labels), self._lock, **kw)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Counter:
        """Get or create the named :class:`Counter` family."""
        return self._get_or_create(Counter, name, help_text, tuple(labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Iterable[str] = ()
    ) -> Gauge:
        """Get or create the named :class:`Gauge` family."""
        return self._get_or_create(Gauge, name, help_text, tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the named :class:`Histogram` family."""
        return self._get_or_create(
            Histogram, name, help_text, tuple(labels), buckets=buckets
        )

    def names(self) -> tuple[str, ...]:
        """Registered family names, sorted."""
        with self._lock:
            return tuple(sorted(self._metrics))

    def reset(self) -> None:
        """Zero every family's series, keeping registrations intact.

        Holders of family objects (e.g. a worker's profiling wrapper)
        keep observing into the same families.  Used by shard workers
        to ship per-run deltas: ``state()`` then ``reset()`` at each
        ``end_run``, so the parent can merge without double counting.
        """
        with self._lock:
            for metric in self._metrics.values():
                metric._children.clear()

    # -- exporters -------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
                for sample, key, value in metric.samples():
                    extra: tuple = ()
                    plain = key
                    if key and isinstance(key[-1], tuple):
                        plain, extra = key[:-1], (key[-1],)
                    labels = _render_labels(
                        metric.label_names, plain, extra
                    )
                    lines.append(f"{sample}{labels} {format(value, 'g')}")
        return "\n".join(lines) + "\n"

    def as_dict(self) -> dict:
        """JSON-safe nested view: ``{name: {type, help, samples}}``.

        Each sample is ``{"labels": {...}, "value": v}`` (histograms
        additionally expose their bucket rows the same way).
        """
        out: dict = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                samples = []
                for sample, key, value in metric.samples():
                    extra: tuple = ()
                    plain = key
                    if key and isinstance(key[-1], tuple):
                        plain, extra = key[:-1], (key[-1],)
                    labels = dict(zip(metric.label_names, plain))
                    labels.update(dict(extra))
                    samples.append(
                        {"sample": sample, "labels": labels, "value": value}
                    )
                out[name] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "samples": samples,
                }
        return out

    # -- cross-process folding -------------------------------------------

    def state(self) -> dict:
        """Serializable registry contents for cross-process transfer."""
        with self._lock:
            return {
                name: {
                    "kind": metric.kind,
                    "help": metric.help,
                    "labels": list(metric.label_names),
                    "data": metric.state(),
                }
                for name, metric in self._metrics.items()
            }

    def merge(self, state: dict) -> None:
        """Fold a :meth:`state` payload (e.g. from a shard worker) in.

        Counters and histogram series *add*; gauges take the incoming
        value (last writer wins — gauges describe a current level, not
        a total).
        """
        for name, entry in state.items():
            kind = entry["kind"]
            labels = tuple(entry["labels"])
            if kind == "counter":
                counter = self.counter(name, entry["help"], labels)
                for key_json, total in entry["data"].items():
                    key = tuple(json.loads(key_json))
                    counter.inc(total, **dict(zip(labels, key)))
            elif kind == "gauge":
                gauge = self.gauge(name, entry["help"], labels)
                for key_json, value in entry["data"].items():
                    key = tuple(json.loads(key_json))
                    gauge.set(value, **dict(zip(labels, key)))
            elif kind == "histogram":
                data = entry["data"]
                histogram = self.histogram(
                    name, entry["help"], labels,
                    buckets=tuple(data["buckets"]),
                )
                with self._lock:
                    for key_json, series in data["series"].items():
                        key = tuple(json.loads(key_json))
                        child = histogram._child(dict(zip(labels, key)))
                        if child.buckets != tuple(data["buckets"]):
                            raise ValueError(
                                f"histogram {name!r} bucket mismatch "
                                f"on merge"
                            )
                        for index, count in enumerate(series["counts"]):
                            child.counts[index] += count
                        child.total += series["sum"]
                        child.count += series["count"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} in state")


# --------------------------------------------------------------------------
# Promtext parsing (CI validation + obs CLI)
# --------------------------------------------------------------------------


def parse_prometheus(text: str) -> dict:
    """Parse a Prometheus text exposition into ``{family: info}``.

    Returns ``{family_name: {"type": str, "samples": [(sample_name,
    labels_dict, value), ...]}}``.  ``_bucket``/``_sum``/``_count``
    samples are attributed to their histogram family.  Raises
    :class:`ValueError` on malformed lines — the CI gateway job runs
    this over a live scrape, so a formatting regression fails fast.
    """
    families: dict = {}
    types: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in METRIC_KINDS:
                raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
            types[parts[2]] = parts[3]
            families.setdefault(
                parts[2], {"type": parts[3], "samples": []}
            )
            continue
        if line.startswith("#"):
            continue
        name, labels, value = _parse_sample(line, lineno)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        if family not in families:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
        families[family]["samples"].append((name, labels, value))
    return families


def _parse_sample(line: str, lineno: int) -> tuple[str, dict, float]:
    name = line
    labels: dict[str, str] = {}
    if "{" in line:
        name, rest = line.split("{", 1)
        if "}" not in rest:
            raise ValueError(f"line {lineno}: unterminated labels: {line!r}")
        body, tail = rest.rsplit("}", 1)
        labels = _parse_labels(body, lineno)
        value_text = tail.strip()
    else:
        try:
            name, value_text = line.rsplit(None, 1)
        except ValueError:
            raise ValueError(f"line {lineno}: no value: {line!r}") from None
    name = name.strip()
    if not name or not name.replace("_", "a").replace(":", "a").isalnum():
        raise ValueError(f"line {lineno}: bad metric name {name!r}")
    try:
        value = float(value_text)
    except ValueError:
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            raise ValueError(
                f"line {lineno}: bad value {value_text!r}"
            ) from None
    return name, labels, value


def _parse_labels(body: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    index = 0
    while index < len(body):
        eq = body.index("=", index)
        key = body[index:eq].strip().lstrip(",").strip()
        if body[eq + 1] != '"':
            raise ValueError(f"line {lineno}: unquoted label value")
        cursor = eq + 2
        chunks: list[str] = []
        while True:
            char = body[cursor]
            if char == "\\":
                escape = body[cursor + 1]
                chunks.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escape, escape)
                )
                cursor += 2
            elif char == '"':
                cursor += 1
                break
            else:
                chunks.append(char)
                cursor += 1
        labels[key] = "".join(chunks)
        index = cursor
    return labels


def validate_exposition(
    text: str, required: Iterable[str] = ()
) -> dict:
    """Parse ``text`` and fail on NaN samples or missing families.

    The CI contract of the gateway ``metrics`` scrape: every registered
    family must render, every sample must parse, and no value may be
    NaN.  Returns the parsed families on success.
    """
    families = parse_prometheus(text)
    for family, info in families.items():
        for sample, labels, value in info["samples"]:
            if isinstance(value, float) and math.isnan(value):
                raise ValueError(
                    f"metric {sample}{labels} is NaN"
                )
    missing = sorted(set(required) - set(families))
    if missing:
        raise ValueError(f"metrics missing from exposition: {missing}")
    return families
