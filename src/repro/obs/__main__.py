"""``python -m repro.obs`` — tail a live gateway's metrics and traces.

Two subcommands, both speaking the gateway wire protocol over an
*observer* session (no geometry, no frame credit — pure control
plane):

``metrics``
    Scrape the gateway's metric registry once (or every ``--watch N``
    seconds) and print it as Prometheus text (default) or JSON.  The
    scrape is validated with the in-repo promtext parser, so a
    malformed exposition is an error here before it is one in
    Prometheus.

``traces``
    Fetch the most recently completed frame traces and render each
    span tree (name, duration, pid, attributes) — the quickest way to
    see where a frame's microseconds went, e.g.::

        python -m repro.obs traces --port 7001

Exit codes: 0 on success, 1 on connection/protocol failure, 2 on a
metrics exposition that fails validation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.obs.metrics import validate_exposition
from repro.obs.tracing import render_trace


def build_parser() -> argparse.ArgumentParser:
    """The obs CLI argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Tail a live repro.gateway: metrics and frame traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    metrics = sub.add_parser(
        "metrics", help="scrape the gateway metric registry"
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, required=True)
    metrics.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="output format (default: prometheus text exposition)",
    )
    metrics.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-scrape every SECONDS until interrupted",
    )

    traces = sub.add_parser(
        "traces", help="dump recently completed frame traces"
    )
    traces.add_argument("--host", default="127.0.0.1")
    traces.add_argument("--port", type=int, required=True)
    traces.add_argument(
        "-n", type=int, default=16, help="max traces to fetch (default 16)"
    )
    traces.add_argument(
        "--json",
        action="store_true",
        help="print raw trace dicts instead of rendered trees",
    )
    return parser


def _scrape_metrics(args: argparse.Namespace) -> int:
    from repro.gateway.client import GatewayClient, GatewayError

    try:
        with GatewayClient(args.host, args.port) as client:
            client.connect()
            while True:
                reply = client.metrics()
                try:
                    validate_exposition(reply["prometheus"])
                except ValueError as exc:
                    print(f"invalid exposition: {exc}", file=sys.stderr)
                    return 2
                if args.format == "json":
                    print(json.dumps(reply["json"], indent=2, sort_keys=True))
                else:
                    sys.stdout.write(reply["prometheus"])
                sys.stdout.flush()
                if args.watch is None:
                    return 0
                time.sleep(args.watch)
    except (ConnectionError, OSError, GatewayError) as exc:
        print(f"gateway unreachable: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0


def _dump_traces(args: argparse.Namespace) -> int:
    from repro.gateway.client import GatewayClient, GatewayError

    try:
        with GatewayClient(args.host, args.port) as client:
            client.connect()
            traces = client.traces(n=args.n)
    except (ConnectionError, OSError, GatewayError) as exc:
        print(f"gateway unreachable: {exc}", file=sys.stderr)
        return 1
    if not traces:
        print(
            "no completed traces (is --trace-sample-rate > 0 on the "
            "server?)"
        )
        return 0
    for trace_dict in traces:
        if args.json:
            print(json.dumps(trace_dict, sort_keys=True))
        else:
            print(render_trace(trace_dict))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "metrics":
        return _scrape_metrics(args)
    return _dump_traces(args)


if __name__ == "__main__":
    raise SystemExit(main())
