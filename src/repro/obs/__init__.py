"""repro.obs — observability for the serving stack.

One coherent subsystem for the three telemetry surfaces the serving
tiers previously improvised separately:

* **Metrics** (:mod:`repro.obs.metrics`): counter/gauge/histogram
  registry with Prometheus-text and JSON exporters, published into by
  :class:`~repro.serve.telemetry.ServeTelemetry`, the sharded engine,
  the gateway, and the kernel profiler; scraped via the gateway
  ``metrics`` verb or ``python -m repro.obs metrics``.
* **Tracing** (:mod:`repro.obs.tracing`): sampled per-frame span trees
  (ingress → batch wait → shard → worker execute → collect → respond)
  propagated across process boundaries as a 17-byte fixed struct, not
  a pickled object; dumped via the gateway ``traces`` verb or
  ``python -m repro.obs traces``.
* **Events + flight recorder** (:mod:`repro.obs.events`,
  :mod:`repro.obs.recorder`): JSON-lines lifecycle log (session
  admit/reject, worker spawn/exit/restart, drain, drop-oldest,
  engine-broken) feeding a bounded ring that engines dump on worker
  crash or unclean drain.

:class:`Observability` bundles the four pieces; engines and the
gateway accept one bundle through their ``observability=`` parameter
and default to a private zero-sample-rate bundle, so observability is
always wired but costs ~nothing until the operator turns a knob
(``--trace-sample-rate``, ``--profile-kernels``, ``--event-log``).

Everything except :mod:`repro.obs.profile` (which wraps
:class:`~repro.backend.ArrayBackend`) is dependency-free of the other
``repro`` packages — ``repro.obs`` is a leaf the serving tiers import,
never the reverse.  See ``docs/observability.md`` for the operator
guide.
"""

from __future__ import annotations

from repro.obs.events import EventLog, parse_event_lines
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    validate_exposition,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.tracing import (
    CTX_STRUCT,
    FLAG_SAMPLED,
    Span,
    Trace,
    Tracer,
    pack_context,
    render_trace,
    span_tree,
    unpack_context,
)

__all__ = [
    "CTX_STRUCT",
    "DEFAULT_BUCKETS",
    "FLAG_SAMPLED",
    "Counter",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Trace",
    "Tracer",
    "pack_context",
    "parse_event_lines",
    "parse_prometheus",
    "render_trace",
    "span_tree",
    "unpack_context",
    "validate_exposition",
]


class Observability:
    """The bundle of observability sinks one engine/gateway shares.

    Attributes:
        metrics: the process-wide-for-this-engine metric registry.
        tracer: sampling trace factory (``sample_rate`` 0 disables).
        events: JSON-lines lifecycle logger.
        recorder: bounded flight-recorder ring behind both of the above.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        tracer: Tracer,
        events: EventLog,
        recorder: FlightRecorder,
    ) -> None:
        """Bundle pre-built components (use :meth:`create` normally)."""
        self.metrics = metrics
        self.tracer = tracer
        self.events = events
        self.recorder = recorder

    @classmethod
    def create(
        cls,
        sample_rate: float = 0.0,
        clock: object | None = None,
        event_stream: object | None = None,
        event_path: str | None = None,
        trace_capacity: int = 64,
        recorder_capacity: int = 512,
        seed: int | None = None,
    ) -> "Observability":
        """Build a fully wired bundle.

        ``clock`` is duck-typed (``.now()``); pass the engine's clock so
        spans, events and telemetry share a timebase (and fake clocks
        work in tests).  With no ``event_stream``/``event_path`` the
        event log records and counts but writes nowhere.
        """
        metrics = MetricsRegistry()
        recorder = FlightRecorder(capacity=recorder_capacity)
        tracer = Tracer(
            sample_rate=sample_rate,
            clock=clock,
            capacity=trace_capacity,
            metrics=metrics,
            recorder=recorder,
            seed=seed,
        )
        events = EventLog(
            stream=event_stream,  # type: ignore[arg-type]
            path=event_path,
            clock=clock,
            recorder=recorder,
            metrics=metrics,
        )
        return cls(metrics, tracer, events, recorder)
