"""Flight recorder: a bounded ring of recent events and traces.

Post-mortem context for crashes: the serving tiers continuously feed
lifecycle events (via :class:`~repro.obs.events.EventLog`) and
completed traces (via :class:`~repro.obs.tracing.Tracer`) into a
bounded deque; when a worker crashes or a drain aborts, the engine
dumps the ring — the last N things that happened, in order — to the
process log.  Bounded by construction (RA002's spirit), so an
always-on recorder costs a fixed amount of memory.
"""

from __future__ import annotations

import collections
import json
import threading


class FlightRecorder:
    """Bounded in-memory ring of recent observability entries."""

    def __init__(self, capacity: int = 512) -> None:
        """Size the ring; oldest entries are evicted beyond ``capacity``."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: collections.deque[tuple[str, dict]] = collections.deque(
            maxlen=capacity
        )

    def record_event(self, record: dict) -> None:
        """Append one lifecycle-event record."""
        with self._lock:
            self._ring.append(("event", record))

    def record_trace(self, trace_dict: dict) -> None:
        """Append one completed trace (its ``as_dict`` form)."""
        with self._lock:
            self._ring.append(("trace", trace_dict))

    def entries(self) -> list[tuple[str, dict]]:
        """Snapshot of the ring, oldest first: ``[(kind, record), ...]``."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        """Number of entries currently held."""
        with self._lock:
            return len(self._ring)

    def dump(self) -> str:
        """The ring as JSON lines (``{"kind": ..., **record}`` per line).

        This is the post-mortem format documented in
        ``docs/observability.md``; engines log it on worker crash and
        unclean drain.
        """
        lines = []
        for kind, record in self.entries():
            payload = {"kind": kind}
            payload.update(record)
            lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines)
