"""FLOP counting for complexity comparisons (GOPs/frame).

The paper's headline complexity numbers (Tiny-VBF 0.34 GOPs/frame vs
Tiny-CNN 11.7 and FCNN 1.4 at a 368 x 128 frame) are reproduced by
walking a model's layer graph and counting arithmetic operations with
the usual convention: one multiply-accumulate = 2 ops, elementwise
non-linearities cost a small constant per element.

``count_flops(layer, input_shape)`` returns ``(flops, output_shape)``;
``input_shape`` includes the batch axis (use batch 1 for per-frame cost).
"""

from __future__ import annotations

import math

from repro.nn.layers.attention import MultiHeadAttention
from repro.nn.layers.base import Layer
from repro.nn.layers.container import Residual, Sequential
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import LearnedPositionalEmbedding
from repro.nn.layers.layernorm import LayerNorm
from repro.nn.layers.patches import Patchify, Unpatchify
from repro.nn.layers.activations import ReLU, Softmax, Tanh

# Cost (ops per element) of elementwise non-linearities; exp/tanh are
# counted as a handful of ops following common profiler conventions.
_RELU_OPS = 1.0
_TANH_OPS = 4.0
_SOFTMAX_OPS = 4.0  # max-subtract, exp, sum, divide
_LAYERNORM_OPS = 8.0  # mean, var, sqrt, divide, scale, shift


def _numel(shape: tuple[int, ...]) -> int:
    return int(math.prod(shape))


# Extension point: packages outside repro.nn (e.g. repro.models) register
# cost models for their custom layers here: type -> fn(layer, input_shape).
CUSTOM_COSTS: dict[type, object] = {}


def register_flops(layer_type: type, cost_fn) -> None:
    """Register a FLOP model ``cost_fn(layer, input_shape)`` for a type."""
    CUSTOM_COSTS[layer_type] = cost_fn


def count_flops(
    layer: Layer, input_shape: tuple[int, ...]
) -> tuple[float, tuple[int, ...]]:
    """Count forward-pass FLOPs of ``layer`` for one input of shape
    ``input_shape`` (including the batch axis).

    Returns ``(flops, output_shape)``.  Raises ``TypeError`` for layer
    types without a registered cost model.
    """
    for layer_type, cost_fn in CUSTOM_COSTS.items():
        if isinstance(layer, layer_type):
            return cost_fn(layer, tuple(input_shape))

    if isinstance(layer, Sequential):
        total = 0.0
        shape = tuple(input_shape)
        for child in layer.layers:
            flops, shape = count_flops(child, shape)
            total += flops
        return total, shape

    if isinstance(layer, Residual):
        inner_flops, inner_shape = count_flops(layer.inner, input_shape)
        if tuple(inner_shape) != tuple(input_shape):
            raise ValueError(
                "Residual inner output shape "
                f"{inner_shape} != input {input_shape}"
            )
        return inner_flops + _numel(input_shape), tuple(input_shape)

    if isinstance(layer, Dense):
        leading = _numel(input_shape[:-1])
        flops = 2.0 * leading * layer.in_features * layer.out_features
        return flops, (*input_shape[:-1], layer.out_features)

    if isinstance(layer, Conv2D):
        batch, height, width, _ = input_shape
        kh, kw = layer.kernel_size
        flops = (
            2.0
            * batch
            * height
            * width
            * kh
            * kw
            * layer.in_channels
            * layer.out_channels
        )
        return flops, (batch, height, width, layer.out_channels)

    if isinstance(layer, MultiHeadAttention):
        batch, tokens, d_model = input_shape
        projections = 4 * 2.0 * batch * tokens * d_model * d_model
        scores = 2.0 * batch * tokens * tokens * d_model
        soft = _SOFTMAX_OPS * batch * layer.n_heads * tokens * tokens
        context = 2.0 * batch * tokens * tokens * d_model
        return projections + scores + soft + context, tuple(input_shape)

    if isinstance(layer, LayerNorm):
        return _LAYERNORM_OPS * _numel(input_shape), tuple(input_shape)

    if isinstance(layer, ReLU):
        return _RELU_OPS * _numel(input_shape), tuple(input_shape)

    if isinstance(layer, Tanh):
        return _TANH_OPS * _numel(input_shape), tuple(input_shape)

    if isinstance(layer, Softmax):
        return _SOFTMAX_OPS * _numel(input_shape), tuple(input_shape)

    if isinstance(layer, Dropout):
        return 0.0, tuple(input_shape)

    if isinstance(layer, LearnedPositionalEmbedding):
        return float(_numel(input_shape)), tuple(input_shape)

    if isinstance(layer, Patchify):
        batch, height, width, channels = input_shape
        pz, px = layer.patch_size
        tokens = (height // pz) * (width // px)
        return 0.0, (batch, tokens, pz * px * channels)

    if isinstance(layer, Unpatchify):
        batch = input_shape[0]
        nz, nx = layer.image_shape
        return 0.0, (batch, nz, nx, layer.channels)

    raise TypeError(
        f"no FLOP model registered for layer type {type(layer).__name__}"
    )


def gops_per_frame(layer: Layer, frame_shape: tuple[int, ...]) -> float:
    """GOPs for one frame (batch axis of 1 is prepended)."""
    flops, _ = count_flops(layer, (1, *frame_shape))
    return flops / 1e9
