"""Model wrapper: prediction, weight (de)serialization, summaries."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.layers.base import Layer
from repro.utils.io import load_npz, save_npz


class Model:
    """A trainable model around a root :class:`Layer`.

    The root layer is typically a :class:`Sequential`; the model adds
    batched prediction, weight save/load (order-based, validated by
    shape) and a parameter summary.
    """

    def __init__(self, root: Layer, name: str = "model") -> None:
        self.root = root
        self.name = name

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.root.forward(x, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.root.backward(grad_output)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, training=False)

    def predict(self, x: np.ndarray, batch_size: int = 8) -> np.ndarray:
        """Inference in batches along axis 0."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        x = np.asarray(x, dtype=float)
        outputs = [
            self.forward(x[start : start + batch_size], training=False)
            for start in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def parameters(self):
        return self.root.parameters()

    @property
    def n_parameters(self) -> int:
        """Total trainable weight count (the paper quotes 1,507,922)."""
        return sum(p.size for p in self.parameters())

    def summary(self) -> str:
        lines = [f"Model {self.name}: {self.n_parameters} parameters"]
        for parameter in self.parameters():
            lines.append(
                f"  {parameter.name:40s} {str(parameter.value.shape):>16s}"
            )
        return "\n".join(lines)

    # -- weight serialization ---------------------------------------------

    def save_weights(self, path: str | Path) -> Path:
        """Save all parameters (ordered) to an ``.npz`` bundle."""
        arrays = {
            f"p{i:04d}": p.value for i, p in enumerate(self.parameters())
        }
        arrays["__count__"] = np.array(len(self.parameters()))
        return save_npz(path, arrays)

    def load_weights(self, path: str | Path) -> None:
        """Load parameters saved by :meth:`save_weights`.

        Validates count and per-parameter shapes so weights cannot be
        loaded into a differently configured model.
        """
        bundle = load_npz(path)
        parameters = self.parameters()
        count = int(bundle.get("__count__", -1))
        if count != len(parameters):
            raise ValueError(
                f"weight bundle has {count} parameters, model expects "
                f"{len(parameters)}"
            )
        for i, parameter in enumerate(parameters):
            stored = bundle[f"p{i:04d}"]
            if stored.shape != parameter.value.shape:
                raise ValueError(
                    f"shape mismatch for {parameter.name}: bundle "
                    f"{stored.shape} vs model {parameter.value.shape}"
                )
            parameter.value[...] = stored
