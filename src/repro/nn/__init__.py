"""A from-scratch NumPy deep-learning framework.

This package replaces the TensorFlow 2.4 stack the paper trained with.
It provides exactly the operator set Tiny-VBF, Tiny-CNN and FCNN need —
dense, convolution, layer normalization, multi-head attention, ReLU /
softmax, residual containers, patch embedding — each with an analytic
backward pass (verified against numerical differentiation in the tests),
plus MSE loss, the Adam optimizer, the paper's cyclic polynomial
learning-rate decay, a training loop and a FLOP counter.

Design notes:

* Layers are explicit ``forward``/``backward`` objects (no tape autograd):
  the model graphs here are static pipelines, and explicit backward code
  keeps every gradient auditable and testable.
* Arrays are channels-last everywhere, matching the ToFC data layout
  ``(batch, nz, nx, n_elements)``.
* All randomness (initialization, shuffling, dropout) flows through
  explicit seeds.
"""

from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    LayerNorm,
    LearnedPositionalEmbedding,
    Layer,
    MultiHeadAttention,
    Parameter,
    Patchify,
    ReLU,
    Residual,
    Sequential,
    Softmax,
    Tanh,
    Unpatchify,
)
from repro.nn.losses import MSELoss
from repro.nn.model import Model
from repro.nn.optim import SGD, Adam
from repro.nn.schedules import ConstantSchedule, CyclicPolynomialDecay
from repro.nn.trainer import History, Trainer
from repro.nn.flops import count_flops

__all__ = [
    "Layer",
    "Parameter",
    "Dense",
    "Conv2D",
    "LayerNorm",
    "MultiHeadAttention",
    "ReLU",
    "Softmax",
    "Tanh",
    "Dropout",
    "Sequential",
    "Residual",
    "Patchify",
    "Unpatchify",
    "LearnedPositionalEmbedding",
    "MSELoss",
    "Model",
    "Adam",
    "SGD",
    "ConstantSchedule",
    "CyclicPolynomialDecay",
    "Trainer",
    "History",
    "count_flops",
]
