"""Learning-rate schedules.

The paper uses "a polynomial decay schedule with cyclic changes" from
1e-4 down to 1e-6 (Section III-C); :class:`CyclicPolynomialDecay`
implements exactly that — TensorFlow's ``PolynomialDecay(..., cycle=True)``
semantics.
"""

from __future__ import annotations

import numpy as np


class Schedule:
    """A learning rate as a function of the global step."""

    def learning_rate(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        return self.learning_rate(step)


class ConstantSchedule(Schedule):
    """Fixed learning rate."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"learning rate must be > 0, got {value}")
        self.value = float(value)

    def learning_rate(self, step: int) -> float:
        return self.value


class CyclicPolynomialDecay(Schedule):
    """Polynomial decay with cycling (TensorFlow ``cycle=True`` semantics).

    Within each cycle the rate decays from ``initial`` to ``final`` as

        lr(step) = (initial - final) * (1 - step/decay_steps')^power + final

    where ``decay_steps'`` is ``decay_steps`` multiplied up to the next
    integer number of cycles containing ``step``, producing the paper's
    "cyclic changes": the rate snaps back up at every cycle boundary and
    the cycles stretch geometrically.
    """

    def __init__(
        self,
        initial: float = 1e-4,
        final: float = 1e-6,
        decay_steps: int = 1000,
        power: float = 1.0,
    ) -> None:
        if initial <= 0 or final <= 0:
            raise ValueError(
                f"rates must be > 0, got initial={initial}, final={final}"
            )
        if final > initial:
            raise ValueError(
                f"final ({final}) must not exceed initial ({initial})"
            )
        if decay_steps < 1:
            raise ValueError(f"decay_steps must be >= 1, got {decay_steps}")
        if power <= 0:
            raise ValueError(f"power must be > 0, got {power}")
        self.initial = float(initial)
        self.final = float(final)
        self.decay_steps = int(decay_steps)
        self.power = float(power)

    def learning_rate(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        multiplier = max(1.0, np.ceil((step + 1) / self.decay_steps))
        effective_steps = self.decay_steps * multiplier
        fraction = 1.0 - step / effective_steps
        return (
            (self.initial - self.final) * fraction**self.power + self.final
        )
