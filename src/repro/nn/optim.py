"""Optimizers: Adam (the paper's choice) and SGD."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Parameter
from repro.nn.schedules import ConstantSchedule, Schedule


def _as_schedule(learning_rate: float | Schedule) -> Schedule:
    if isinstance(learning_rate, Schedule):
        return learning_rate
    return ConstantSchedule(float(learning_rate))


class Optimizer:
    """Base optimizer: owns the parameter list and the global step."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float | Schedule,
    ) -> None:
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)
        self.schedule = _as_schedule(learning_rate)
        self.step_count = 0

    @property
    def current_learning_rate(self) -> float:
        return self.schedule.learning_rate(self.step_count)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float | Schedule = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        lr = self.current_learning_rate
        for parameter, velocity in zip(self.parameters, self._velocity):
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity -= lr * parameter.grad
                parameter.value += velocity
            else:
                parameter.value -= lr * parameter.grad
        self.step_count += 1


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float | Schedule = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(
                f"betas must be in [0, 1), got {beta1}, {beta2}"
            )
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        lr = self.current_learning_rate
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.value -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
