"""Loss functions."""

from __future__ import annotations

import numpy as np


class MSELoss:
    """Mean squared error over all elements.

    The paper trains with MSE on the IQ-demodulated beamformed image
    *before* log compression (Section III-C); targets and predictions are
    both ``(batch, nz, nx, 2)`` IQ stacks normalized to [-1, 1].
    """

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None
        self._n: int | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction = np.asarray(prediction, dtype=float)
        target = np.asarray(target, dtype=float)
        if prediction.shape != target.shape:
            raise ValueError(
                f"shape mismatch: prediction {prediction.shape} vs "
                f"target {target.shape}"
            )
        self._diff = prediction - target
        self._n = prediction.size
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        """Gradient of the loss with respect to the prediction."""
        if self._diff is None or self._n is None:
            raise RuntimeError("MSELoss: backward before forward")
        return (2.0 / self._n) * self._diff

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)
