"""Training loop."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import MSELoss
from repro.nn.model import Model
from repro.nn.optim import Optimizer
from repro.utils.rng import make_rng


@dataclass
class History:
    """Per-epoch training record."""

    loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    learning_rate: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.loss:
            raise ValueError("history is empty")
        return self.loss[-1]


class Trainer:
    """Mini-batch training of a :class:`Model` against array data.

    Mirrors the paper's setup (Section III-C): Adam, MSE on IQ images,
    batch training with shuffling.
    """

    def __init__(
        self,
        model: Model,
        optimizer: Optimizer,
        loss: MSELoss | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss or MSELoss()
        self._rng = make_rng(seed)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        batch_size: int = 10,
        shuffle: bool = True,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        verbose_every: int = 0,
    ) -> History:
        """Train for ``epochs`` passes over ``(x, y)``.

        Args:
            x: inputs ``(n, ...)``.
            y: targets ``(n, ...)`` aligned with ``x``.
            epochs: number of full passes.
            batch_size: the paper uses 10.
            shuffle: reshuffle sample order each epoch.
            validation: optional held-out ``(x_val, y_val)``.
            verbose_every: print a progress line every N epochs (0 = quiet).

        Returns:
            :class:`History` with per-epoch mean loss.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x and y disagree on sample count: {x.shape[0]} vs "
                f"{y.shape[0]}"
            )
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")

        n = x.shape[0]
        history = History()
        for epoch in range(epochs):
            order = (
                self._rng.permutation(n) if shuffle else np.arange(n)
            )
            epoch_losses = []
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                self.optimizer.zero_grad()
                prediction = self.model.forward(x[batch], training=True)
                batch_loss = self.loss.forward(prediction, y[batch])
                self.model.backward(self.loss.backward())
                self.optimizer.step()
                epoch_losses.append(batch_loss)
            history.loss.append(float(np.mean(epoch_losses)))
            history.learning_rate.append(
                self.optimizer.current_learning_rate
            )
            if validation is not None:
                x_val, y_val = validation
                prediction = self.model.predict(x_val)
                history.val_loss.append(
                    float(np.mean((prediction - y_val) ** 2))
                )
            if verbose_every and (epoch + 1) % verbose_every == 0:
                message = (
                    f"epoch {epoch + 1}/{epochs} "
                    f"loss={history.loss[-1]:.3e}"
                )
                if history.val_loss:
                    message += f" val={history.val_loss[-1]:.3e}"
                print(message)
        return history
