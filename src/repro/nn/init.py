"""Weight initializers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng


def glorot_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialization: U(-limit, limit).

    ``limit = sqrt(6 / (fan_in + fan_out))`` — keeps activation variance
    stable through linear layers, the TensorFlow default the paper's
    models would have used.
    """
    if fan_in < 1 or fan_out < 1:
        raise ValueError(
            f"fan_in/fan_out must be >= 1, got {fan_in}, {fan_out}"
        )
    rng = make_rng(seed)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, shape)


def he_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """He uniform initialization, suited to ReLU fan-in."""
    if fan_in < 1:
        raise ValueError(f"fan_in must be >= 1, got {fan_in}")
    rng = make_rng(seed)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, shape)
