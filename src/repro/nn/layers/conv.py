"""2-D convolution (channels-last, stride 1, 'same' padding).

Used by the Tiny-CNN baseline [7].  The implementation is im2col-based:
patches are gathered into a matrix so the convolution becomes one GEMM,
which is the only way to make NumPy training throughput acceptable.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn.init import glorot_uniform
from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.dense import _flat_matmul


class Conv2D(Layer):
    """Convolution over ``(batch, height, width, in_channels)`` inputs.

    Stride is fixed at 1 and padding is 'same' (output spatial size equals
    input size), matching the Tiny-CNN architecture where the apodization
    weight map must align with the ToFC input pixel-for-pixel.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: tuple[int, int] = (3, 3),
        bias: bool = True,
        seed: int | np.random.Generator | None = None,
        name: str = "conv",
    ) -> None:
        kh, kw = kernel_size
        if kh < 1 or kw < 1 or kh % 2 == 0 or kw % 2 == 0:
            raise ValueError(
                f"kernel_size must be odd and >= 1, got {kernel_size}"
            )
        if in_channels < 1 or out_channels < 1:
            raise ValueError(
                "in_channels/out_channels must be >= 1, got "
                f"{in_channels}, {out_channels}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.name = name
        fan_in = kh * kw * in_channels
        self.weight = Parameter(
            glorot_uniform(
                (fan_in, out_channels), fan_in, out_channels, seed
            ),
            name=f"{name}/weight",
        )
        self.bias = (
            Parameter(np.zeros(out_channels), name=f"{name}/bias")
            if bias
            else None
        )
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        """(B, H, W, C) -> (B, H, W, kh*kw*C) patch matrix."""
        return get_backend().im2col(
            x, self.kernel_size, self.in_channels
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        backend = get_backend()
        x = backend.asarray(x)
        if x.ndim != 4 or x.shape[-1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (batch, h, w, {self.in_channels}), "
                f"got {x.shape}"
            )
        cols = self._im2col(x)
        self._cols = cols
        self._x_shape = x.shape
        return backend.affine(
            cols,
            self.weight.value,
            self.bias.value if self.bias is not None else None,
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        grad_output = np.asarray(grad_output, dtype=float)
        cols = self._cols
        self.weight.grad += np.einsum(
            "bhwi,bhwo->io", cols, grad_output, optimize=True
        )
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 1, 2))

        grad_cols = _flat_matmul(grad_output, self.weight.value.T)
        return self._col2im(grad_cols)

    def _col2im(self, grad_cols: np.ndarray) -> np.ndarray:
        """Scatter-add patch gradients back onto the (padded) input."""
        kh, kw = self.kernel_size
        pad_h, pad_w = kh // 2, kw // 2
        batch, height, width, _ = self._x_shape
        grad_padded = np.zeros(
            (batch, height + 2 * pad_h, width + 2 * pad_w, self.in_channels)
        )
        grad_patches = grad_cols.reshape(
            batch, height, width, kh, kw, self.in_channels
        )
        for dy in range(kh):
            for dx in range(kw):
                grad_padded[:, dy : dy + height, dx : dx + width, :] += (
                    grad_patches[:, :, :, dy, dx, :]
                )
        return grad_padded[
            :, pad_h : pad_h + height, pad_w : pad_w + width, :
        ]

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params
