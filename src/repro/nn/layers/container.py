"""Composite layers: Sequential pipelines and residual (skip) connections."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer, Parameter


class Sequential(Layer):
    """Apply layers in order; backward runs them in reverse."""

    def __init__(self, layers: list[Layer], name: str = "sequential") -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)
        self.name = name

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params


class Residual(Layer):
    """Skip connection: ``y = x + inner(x)``.

    The transformer block uses two of these ("two skip connectors",
    paper Section III-A).
    """

    def __init__(self, inner: Layer, name: str = "residual") -> None:
        self.inner = inner
        self.name = name

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x + self.inner.forward(x, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output + self.inner.backward(grad_output)

    def parameters(self) -> list[Parameter]:
        return self.inner.parameters()
