"""Composite layers: Sequential pipelines and residual (skip) connections."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.activations import ReLU
from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.dense import Dense


class Sequential(Layer):
    """Apply layers in order; backward runs them in reverse."""

    def __init__(self, layers: list[Layer], name: str = "sequential") -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)
        self.name = name

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # Peephole: an exactly-Dense followed by an exactly-ReLU runs as
        # one fused backend call (identical numerics for the default
        # backends — the base `affine_relu` *is* relu-after-affine — and
        # one fewer full pass over the activation for compiled ones).
        # Both layers' backward caches are populated as usual, so
        # training and backward are oblivious to the fusion.
        layers = self.layers
        count = len(layers)
        index = 0
        while index < count:
            layer = layers[index]
            if (
                index + 1 < count
                and type(layer) is Dense
                and type(layers[index + 1]) is ReLU
            ):
                x = layer.forward_fused_relu(
                    x, layers[index + 1], training=training
                )
                index += 2
                continue
            x = layer.forward(x, training=training)
            index += 1
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params


class Residual(Layer):
    """Skip connection: ``y = x + inner(x)``.

    The transformer block uses two of these ("two skip connectors",
    paper Section III-A).
    """

    def __init__(self, inner: Layer, name: str = "residual") -> None:
        self.inner = inner
        self.name = name

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x + self.inner.forward(x, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output + self.inner.backward(grad_output)

    def parameters(self) -> list[Parameter]:
        return self.inner.parameters()
