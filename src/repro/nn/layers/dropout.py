"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn.layers.base import Layer
from repro.utils.rng import make_rng


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``.

    At inference the layer is the identity, so quantized/FPGA inference
    paths never see it.
    """

    def __init__(
        self,
        rate: float,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = make_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = get_backend().asarray(x)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (
            self._rng.uniform(size=x.shape) < keep
        ).astype(float) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
