"""Learned positional embedding for token sequences."""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn.layers.base import Layer, Parameter
from repro.utils.rng import make_rng


class LearnedPositionalEmbedding(Layer):
    """Adds a learned per-token offset to ``(batch, tokens, dim)`` input.

    ViT-style: one trainable vector per token position, initialized with
    small Gaussian noise.
    """

    def __init__(
        self,
        n_tokens: int,
        dim: int,
        seed: int | np.random.Generator | None = None,
        name: str = "pos_embed",
    ) -> None:
        if n_tokens < 1 or dim < 1:
            raise ValueError(
                f"n_tokens and dim must be >= 1, got {n_tokens}, {dim}"
            )
        rng = make_rng(seed)
        self.n_tokens = n_tokens
        self.dim = dim
        self.name = name
        self.embedding = Parameter(
            0.02 * rng.standard_normal((n_tokens, dim)),
            name=f"{name}/embedding",
        )
        self._batch: int | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        backend = get_backend()
        x = backend.asarray(x)
        if x.ndim != 3 or x.shape[1:] != (self.n_tokens, self.dim):
            raise ValueError(
                f"{self.name}: expected (batch, {self.n_tokens}, "
                f"{self.dim}), got {x.shape}"
            )
        self._batch = x.shape[0]
        return x + backend.asarray(self.embedding.value)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._batch is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        self.embedding.grad += np.asarray(grad_output, dtype=float).sum(
            axis=0
        )
        return grad_output

    def parameters(self) -> list[Parameter]:
        return [self.embedding]
