"""Layer and Parameter primitives.

Every layer implements

* ``forward(x, training=False)`` — compute the output, caching whatever
  the backward pass needs,
* ``backward(grad_output)`` — return the gradient with respect to the
  layer input and *accumulate* gradients into each parameter's ``grad``,
* ``parameters()`` — the layer's trainable :class:`Parameter` objects in
  a deterministic order (used by optimizers and weight serialization).

Gradients accumulate across backward calls until the optimizer's
``zero_grad`` — matching the usual deep-learning framework contract and
enabling gradient accumulation over micro-batches.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable array with its accumulated gradient.

    Attributes:
        value: the parameter tensor (float64).
        grad: accumulated gradient, same shape as ``value``.
        name: diagnostic label (e.g. ``"dense_0/weight"``).
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)
        self.name = str(name)

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name}, shape={self.value.shape})"


class Layer:
    """Base class for all layers (see module docstring for the contract)."""

    def forward(
        self, x: np.ndarray, training: bool = False
    ) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters in deterministic order (default: none)."""
        return []

    def __call__(
        self, x: np.ndarray, training: bool = False
    ) -> np.ndarray:
        return self.forward(x, training=training)

    @property
    def n_parameters(self) -> int:
        """Total number of scalar weights in this layer (recursively)."""
        return sum(p.size for p in self.parameters())
