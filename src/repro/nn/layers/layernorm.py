"""Layer normalization (Ba et al.), as used in the transformer blocks."""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn.layers.base import Layer, Parameter


class LayerNorm(Layer):
    """Normalize the last axis to zero mean / unit variance, then affine.

    ``y = gamma * (x - mean) / sqrt(var + eps) + beta``

    The division and square root here are two of the four non-linear
    operations the Tiny-VBF accelerator implements in hardware
    (paper Section III-D).
    """

    def __init__(
        self, dim: int, eps: float = 1e-5, name: str = "layernorm"
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        self.dim = dim
        self.eps = eps
        self.name = name
        self.gamma = Parameter(np.ones(dim), name=f"{name}/gamma")
        self.beta = Parameter(np.zeros(dim), name=f"{name}/beta")
        self._normalized: np.ndarray | None = None
        self._inv_std: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        backend = get_backend()
        x = backend.asarray(x)
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"{self.name}: expected last axis {self.dim}, got {x.shape}"
            )
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean) * inv_std
        self._normalized = normalized
        self._inv_std = inv_std
        return (
            backend.asarray(self.gamma.value) * normalized
            + backend.asarray(self.beta.value)
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._normalized is None or self._inv_std is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        normalized = self._normalized
        inv_std = self._inv_std
        grad_output = np.asarray(grad_output, dtype=float)

        axes = tuple(range(grad_output.ndim - 1))
        self.gamma.grad += (grad_output * normalized).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)

        # Gradient through the normalization (standard layernorm algebra).
        g = grad_output * self.gamma.value
        mean_g = g.mean(axis=-1, keepdims=True)
        mean_g_normalized = (g * normalized).mean(axis=-1, keepdims=True)
        return inv_std * (g - mean_g - normalized * mean_g_normalized)

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]
