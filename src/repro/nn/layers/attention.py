"""Multi-Head Attention (MHAL in the paper's terminology).

The scaled dot-product attention of Vaswani et al. / Dosovitskiy et al.
with learned Q/K/V/output projections.  This is the core of the Tiny-VBF
transformer block and the operation the FPGA accelerator spends Figs. 6-8
on (Q/K/V projection, attention-score matrix, single-head output).
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn.layers.activations import softmax_backward
from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.dense import Dense
from repro.utils.rng import make_rng


class MultiHeadAttention(Layer):
    """Self-attention over token sequences ``(batch, tokens, d_model)``.

    ``d_model`` is split across ``n_heads`` heads of size
    ``k = d_model / n_heads`` — the paper's "projection dimension divided
    by the number of heads" (Section III-D).
    """

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        seed: int | np.random.Generator | None = None,
        name: str = "mha",
    ) -> None:
        if d_model < 1 or n_heads < 1:
            raise ValueError(
                f"d_model and n_heads must be >= 1, got {d_model}, {n_heads}"
            )
        if d_model % n_heads != 0:
            raise ValueError(
                f"d_model ({d_model}) must be divisible by n_heads "
                f"({n_heads})"
            )
        rng = make_rng(seed)
        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        self.name = name
        self.query = Dense(d_model, d_model, seed=rng, name=f"{name}/query")
        self.key = Dense(d_model, d_model, seed=rng, name=f"{name}/key")
        self.value = Dense(d_model, d_model, seed=rng, name=f"{name}/value")
        self.output = Dense(d_model, d_model, seed=rng, name=f"{name}/output")
        self._cache: dict[str, np.ndarray] | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, T, D) -> (B, H, T, k)."""
        batch, tokens, _ = x.shape
        return x.reshape(
            batch, tokens, self.n_heads, self.head_dim
        ).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, H, T, k) -> (B, T, D)."""
        batch, _, tokens, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, tokens, self.d_model)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        backend = get_backend()
        x = backend.asarray(x)
        if x.ndim != 3 or x.shape[-1] != self.d_model:
            raise ValueError(
                f"{self.name}: expected (batch, tokens, {self.d_model}), "
                f"got {x.shape}"
            )
        q = self._split_heads(self.query.forward(x, training))
        k = self._split_heads(self.key.forward(x, training))
        v = self._split_heads(self.value.forward(x, training))

        scale = 1.0 / np.sqrt(self.head_dim)
        # One backend call for scores -> softmax -> context (compiled
        # backends fuse the three per head-slice); the returned
        # probabilities feed backward exactly as before.
        attention, context = backend.attention(q, k, v, scale)
        merged = self._merge_heads(context)
        out = self.output.forward(merged, training)
        self._cache = {
            "q": q,
            "k": k,
            "v": v,
            "attention": attention,
        }
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        cache = self._cache
        q, k, v = cache["q"], cache["k"], cache["v"]
        attention = cache["attention"]
        scale = 1.0 / np.sqrt(self.head_dim)

        grad_merged = self.output.backward(grad_output)
        grad_context = self._split_heads(grad_merged)

        grad_attention = np.einsum(
            "bhtk,bhsk->bhts", grad_context, v, optimize=True
        )
        grad_v = np.einsum(
            "bhts,bhtk->bhsk", attention, grad_context, optimize=True
        )
        grad_scores = softmax_backward(attention, grad_attention) * scale
        grad_q = np.einsum(
            "bhts,bhsk->bhtk", grad_scores, k, optimize=True
        )
        grad_k = np.einsum(
            "bhts,bhtk->bhsk", grad_scores, q, optimize=True
        )

        grad_x = self.query.backward(self._merge_heads(grad_q))
        grad_x = grad_x + self.key.backward(self._merge_heads(grad_k))
        grad_x = grad_x + self.value.backward(self._merge_heads(grad_v))
        return grad_x

    def parameters(self) -> list[Parameter]:
        return (
            self.query.parameters()
            + self.key.parameters()
            + self.value.parameters()
            + self.output.parameters()
        )
