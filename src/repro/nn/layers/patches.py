"""Patchify / unpatchify layers: image <-> token sequence.

Tiny-VBF tokenizes the (channel-compressed) ToFC image into
non-overlapping ``(pz, px)`` tiles; each tile's features are flattened
into one token.  ``Unpatchify`` is the exact inverse used by the decoder
to reassemble the IQ image from per-token predictions.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn.layers.base import Layer


class Patchify(Layer):
    """(B, H, W, C) -> (B, n_patches, pz*px*C) with row-major patch order."""

    def __init__(self, patch_size: tuple[int, int]) -> None:
        pz, px = patch_size
        if pz < 1 or px < 1:
            raise ValueError(f"patch_size must be >= 1, got {patch_size}")
        self.patch_size = (pz, px)
        self._x_shape: tuple[int, ...] | None = None

    @staticmethod
    def token_count(
        image_shape: tuple[int, int], patch_size: tuple[int, int]
    ) -> int:
        """Number of tokens for an image of ``(nz, nx)`` pixels."""
        nz, nx = image_shape
        pz, px = patch_size
        if nz % pz != 0 or nx % px != 0:
            raise ValueError(
                f"image {image_shape} not divisible by patches {patch_size}"
            )
        return (nz // pz) * (nx // px)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = get_backend().asarray(x)
        if x.ndim != 4:
            raise ValueError(f"expected (B, H, W, C), got {x.shape}")
        batch, height, width, channels = x.shape
        pz, px = self.patch_size
        if height % pz != 0 or width % px != 0:
            raise ValueError(
                f"image ({height}, {width}) not divisible by patch "
                f"size {self.patch_size}"
            )
        self._x_shape = x.shape
        tiles = x.reshape(
            batch, height // pz, pz, width // px, px, channels
        )
        # (B, gz, gx, pz, px, C) -> tokens in row-major grid order.
        tokens = tiles.transpose(0, 1, 3, 2, 4, 5).reshape(
            batch, (height // pz) * (width // px), pz * px * channels
        )
        return tokens

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("Patchify: backward before forward")
        batch, height, width, channels = self._x_shape
        pz, px = self.patch_size
        grad = np.asarray(grad_output, dtype=float).reshape(
            batch, height // pz, width // px, pz, px, channels
        )
        return grad.transpose(0, 1, 3, 2, 4, 5).reshape(
            batch, height, width, channels
        )


class Unpatchify(Layer):
    """(B, n_patches, pz*px*C) -> (B, H, W, C): inverse of Patchify."""

    def __init__(
        self,
        patch_size: tuple[int, int],
        image_shape: tuple[int, int],
        channels: int,
    ) -> None:
        pz, px = patch_size
        nz, nx = image_shape
        if nz % pz != 0 or nx % px != 0:
            raise ValueError(
                f"image {image_shape} not divisible by patches {patch_size}"
            )
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        self.patch_size = (pz, px)
        self.image_shape = (nz, nx)
        self.channels = channels
        self._patchify = Patchify(patch_size)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = get_backend().asarray(x)
        nz, nx = self.image_shape
        pz, px = self.patch_size
        n_patches = (nz // pz) * (nx // px)
        expected = (x.shape[0], n_patches, pz * px * self.channels)
        if x.shape != expected:
            raise ValueError(
                f"Unpatchify: expected {expected}, got {x.shape}"
            )
        tiles = x.reshape(
            x.shape[0], nz // pz, nx // px, pz, px, self.channels
        )
        return tiles.transpose(0, 1, 3, 2, 4, 5).reshape(
            x.shape[0], nz, nx, self.channels
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # The inverse rearrangement is exactly Patchify's forward.
        grad = np.asarray(grad_output, dtype=float)
        batch, height, width, channels = grad.shape
        pz, px = self.patch_size
        tiles = grad.reshape(
            batch, height // pz, pz, width // px, px, channels
        )
        return tiles.transpose(0, 1, 3, 2, 4, 5).reshape(
            batch, (height // pz) * (width // px), pz * px * channels
        )
