"""Elementwise activations and the softmax layer.

The Tiny-VBF accelerator implements exactly ReLU and softmax as
non-linear units (paper Section III-D), so these are the activations the
models use; Tanh is provided for bounded-output experiments.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.nn.layers.base import Layer


class ReLU(Layer):
    """Rectified linear unit, ``max(x, 0)``."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # Dispatch through the backend: compiled backends fuse the mask
        # and select into one pass.  The cached output doubles as the
        # gradient mask (y > 0 <=> x > 0 for every x that survives).
        self._y = get_backend().relu(x)
        return self._y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("ReLU: backward before forward")
        return np.where(self._y > 0, grad_output, 0.0)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._y = get_backend().tanh(x)
        return self._y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("Tanh: backward before forward")
        return grad_output * (1.0 - self._y**2)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis`` (in the active
    backend's compute dtype, via the backend's fused kernel)."""
    return get_backend().softmax(x, axis=axis)


def softmax_backward(
    probabilities: np.ndarray, grad_output: np.ndarray, axis: int = -1
) -> np.ndarray:
    """Backward pass of softmax given its output probabilities."""
    inner = (grad_output * probabilities).sum(axis=axis, keepdims=True)
    return probabilities * (grad_output - inner)


class Softmax(Layer):
    """Softmax over the last axis as a standalone layer."""

    def __init__(self, axis: int = -1) -> None:
        self.axis = axis
        self._probabilities: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._probabilities = softmax(x, axis=self.axis)
        return self._probabilities

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._probabilities is None:
            raise RuntimeError("Softmax: backward before forward")
        return softmax_backward(
            self._probabilities, grad_output, axis=self.axis
        )
