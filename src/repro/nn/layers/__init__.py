"""Layer zoo for the NumPy NN framework."""

from repro.nn.layers.base import Layer, Parameter
from repro.nn.layers.dense import Dense
from repro.nn.layers.activations import ReLU, Softmax, Tanh, softmax
from repro.nn.layers.layernorm import LayerNorm
from repro.nn.layers.attention import MultiHeadAttention
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.patches import Patchify, Unpatchify
from repro.nn.layers.embedding import LearnedPositionalEmbedding
from repro.nn.layers.container import Residual, Sequential
from repro.nn.layers.dropout import Dropout

__all__ = [
    "Layer",
    "Parameter",
    "Dense",
    "ReLU",
    "Softmax",
    "Tanh",
    "softmax",
    "LayerNorm",
    "MultiHeadAttention",
    "Conv2D",
    "Patchify",
    "Unpatchify",
    "LearnedPositionalEmbedding",
    "Residual",
    "Sequential",
    "Dropout",
]
