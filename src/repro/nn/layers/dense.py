"""Fully connected (dense) layer."""

from __future__ import annotations

import numpy as np

from repro.backend import get_backend
from repro.backend.reference import flat_matmul as _flat_matmul
from repro.nn.init import glorot_uniform
from repro.nn.layers.base import Layer, Parameter

# _flat_matmul (the flattened-GEMM kernel) now lives in
# repro.backend.reference; the alias above keeps the historical import
# path for callers that need the reference kernel unconditionally
# (e.g. gradient code, which stays float64 under every backend).


class Dense(Layer):
    """Affine map ``y = x @ W + b`` applied to the last axis.

    Accepts input of any rank ``(..., in_features)``; leading axes are
    treated as batch axes.  This is how the paper's models apply dense
    layers per pixel (FCNN), per token (transformer) and per patch
    (encoder/decoder).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: int | np.random.Generator | None = None,
        name: str = "dense",
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError(
                "in_features and out_features must be >= 1, got "
                f"{in_features}, {out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.weight = Parameter(
            glorot_uniform(
                (in_features, out_features), in_features, out_features, seed
            ),
            name=f"{name}/weight",
        )
        self.bias = (
            Parameter(np.zeros(out_features), name=f"{name}/bias")
            if bias
            else None
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        backend = get_backend()
        x = backend.asarray(x)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected last axis {self.in_features}, "
                f"got input shape {x.shape}"
            )
        self._x = x
        return backend.affine(
            x,
            self.weight.value,
            self.bias.value if self.bias is not None else None,
        )

    def forward_fused_relu(
        self, x: np.ndarray, relu: Layer, training: bool = False
    ) -> np.ndarray:
        """Forward through this layer and a following ReLU in one call.

        Dispatches the backend's ``affine_relu`` kernel (compiled
        backends fold the ReLU into the GEMM epilogue) while leaving
        both layers' backward caches exactly as the unfused pair would:
        this layer keeps its input, ``relu`` keeps the activation, so
        ``backward`` through either is unchanged.  Called by
        :class:`~repro.nn.layers.container.Sequential` when it sees the
        adjacent pair; not part of the generic ``Layer`` contract.
        """
        backend = get_backend()
        x = backend.asarray(x)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected last axis {self.in_features}, "
                f"got input shape {x.shape}"
            )
        self._x = x
        y = backend.affine_relu(
            x,
            self.weight.value,
            self.bias.value if self.bias is not None else None,
        )
        relu._y = y  # the ReLU's backward mask (y > 0 <=> x > 0)
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x = self._x
        grad_output = np.asarray(grad_output, dtype=float)
        # Sum over all leading (batch) axes.
        self.weight.grad += np.einsum(
            "...i,...o->io", x, grad_output, optimize=True
        )
        if self.bias is not None:
            axes = tuple(range(grad_output.ndim - 1))
            self.bias.grad += grad_output.sum(axis=axes)
        return _flat_matmul(grad_output, self.weight.value.T)

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params
