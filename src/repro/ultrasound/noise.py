"""Measurement impairments for in-vitro style data.

The paper evaluates on both PICMUS in-silico (clean Field II simulation)
and in-vitro (Verasonics phantom scans) datasets.  The in-vitro data
differs from simulation mainly through measurement impairments; this module
injects the three dominant ones so that the "phantom" presets reproduce the
qualitative in-silico vs in-vitro gap (lower CNR, slightly wider PSFs):

* thermal (electronic) noise — white Gaussian, set by SNR,
* reverberation clutter — delayed, attenuated copies of the echo field,
* element response spread — per-channel gain error and timing jitter.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import check_positive


def add_thermal_noise(
    rf: np.ndarray,
    snr_db: float,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Add white Gaussian noise at ``snr_db`` relative to RF signal power.

    SNR is measured against the mean power of the nonzero signal region so
    that long silent tails do not inflate the apparent SNR.
    """
    rf = np.asarray(rf, dtype=float)
    rng = make_rng(seed)
    active = rf[np.abs(rf) > 0]
    if active.size == 0:
        return rf.copy()
    signal_power = float(np.mean(active**2))
    noise_power = signal_power / (10.0 ** (snr_db / 10.0))
    noise = rng.normal(0.0, np.sqrt(noise_power), rf.shape)
    return rf + noise


def add_reverberation_clutter(
    rf: np.ndarray,
    delay_samples: int,
    relative_amplitude: float,
    n_echoes: int = 2,
) -> np.ndarray:
    """Add multipath reverberation: decaying, delayed copies of the field.

    Each echo k (1-based) is the original RF delayed by ``k*delay_samples``
    and scaled by ``relative_amplitude**k``, modelling repeated bounces
    between strong interfaces and the probe face.
    """
    if delay_samples < 1:
        raise ValueError(f"delay_samples must be >= 1, got {delay_samples}")
    if not 0.0 <= relative_amplitude < 1.0:
        raise ValueError(
            "relative_amplitude must be in [0, 1), got "
            f"{relative_amplitude}"
        )
    if n_echoes < 1:
        raise ValueError(f"n_echoes must be >= 1, got {n_echoes}")
    rf = np.asarray(rf, dtype=float)
    out = rf.copy()
    for k in range(1, n_echoes + 1):
        shift = k * delay_samples
        if shift >= rf.shape[0]:
            break
        out[shift:] += (relative_amplitude**k) * rf[:-shift]
    return out


def apply_element_variation(
    rf: np.ndarray,
    gain_std: float = 0.05,
    jitter_std_samples: float = 0.25,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Apply per-element gain error and sub-sample timing jitter.

    Gain errors are multiplicative ``N(1, gain_std)``; timing jitter shifts
    each channel by a random sub-sample delay implemented in the frequency
    domain (exact fractional delay, no interpolation loss).
    """
    if gain_std < 0 or jitter_std_samples < 0:
        raise ValueError("gain_std and jitter_std_samples must be >= 0")
    rf = np.asarray(rf, dtype=float)
    rng = make_rng(seed)
    n_samples, n_elements = rf.shape
    gains = rng.normal(1.0, gain_std, n_elements)
    delays = rng.normal(0.0, jitter_std_samples, n_elements)

    spectrum = np.fft.rfft(rf, axis=0)
    freq_bins = np.fft.rfftfreq(n_samples)  # cycles / sample
    phase = np.exp(-2j * np.pi * freq_bins[:, np.newaxis] * delays)
    shifted = np.fft.irfft(spectrum * phase, n=n_samples, axis=0)
    return shifted * gains


def in_vitro_impairments(
    rf: np.ndarray,
    seed: int | np.random.Generator | None = 0,
    snr_db: float = 30.0,
    clutter_amplitude: float = 0.08,
    clutter_delay_samples: int = 60,
) -> np.ndarray:
    """Apply the full in-vitro impairment chain with calibrated defaults.

    Defaults were chosen so the phantom presets land in the paper's
    qualitative regime: contrast (CR/CNR) drops relative to the clean
    simulation while point targets stay clearly resolvable.
    """
    check_positive("snr_db", snr_db)
    rng = make_rng(seed)
    out = apply_element_variation(rf, seed=rng)
    out = add_reverberation_clutter(
        out, clutter_delay_samples, clutter_amplitude
    )
    out = add_thermal_noise(out, snr_db, seed=rng)
    return out
