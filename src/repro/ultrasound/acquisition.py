"""Plane-wave RF channel-data simulation.

The simulator implements the linear point-scatterer forward model: each
scatterer re-radiates a delayed copy of the transmit pulse, and each array
element records the superposition

    rf[t, e] = sum_s  a_s * D(s, e) * G(r_se) * A(r) * p(t - tau_s,e)

with tau_s,e = tau_tx(s) + tau_rx(s, e), directivity ``D``, geometric
spreading ``G`` and attenuation ``A``.  This is the same physics class as
Field II (which generated the PICMUS in-silico data), so the resulting RF
exercises identical beamforming and learning code paths.

The inner loop is vectorized per element via ``numpy.bincount`` deposition
of the band-limited pulse, which keeps full-frame simulations (thousands of
scatterers x 128 elements) in the sub-second range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ultrasound.medium import Medium, WATER_LIKE_TISSUE
from repro.ultrasound.phantoms import Phantom
from repro.ultrasound.probe import LinearProbe
from repro.ultrasound.pulse import GaussianPulse
from repro.ultrasound.wavefield import (
    element_directivity,
    geometric_spreading,
    plane_wave_tx_delay,
    rx_delay,
)


@dataclass(frozen=True)
class PlaneWaveAcquisition:
    """Configuration of one plane-wave transmit/receive event.

    Attributes:
        probe: array geometry and sampling.
        pulse: transmit excitation; defaults to a Gaussian pulse at the
            probe's center frequency.
        medium: propagation medium.
        max_depth_m: depth coverage; the record length is sized to capture
            the round trip to ``max_depth_m`` for all elements.
    """

    probe: LinearProbe
    pulse: GaussianPulse | None = None
    medium: Medium = field(default_factory=lambda: WATER_LIKE_TISSUE)
    max_depth_m: float = 45e-3

    def __post_init__(self) -> None:
        if self.max_depth_m <= 0:
            raise ValueError(
                f"max_depth_m must be > 0, got {self.max_depth_m}"
            )

    @property
    def effective_pulse(self) -> GaussianPulse:
        if self.pulse is not None:
            return self.pulse
        return GaussianPulse(
            center_frequency_hz=self.probe.center_frequency_hz
        )

    @property
    def n_samples(self) -> int:
        """Record length covering the round trip to ``max_depth_m``."""
        c = self.medium.sound_speed_m_s
        # Worst case: deepest point at a lateral corner of the aperture.
        half_aperture = self.probe.aperture_m / 2.0
        max_path = self.max_depth_m + np.hypot(
            self.max_depth_m, half_aperture * 2.0
        )
        t_max = max_path / c + 2.0 * self.effective_pulse.half_duration_s
        return int(np.ceil(t_max * self.probe.sampling_frequency_hz)) + 1

    @property
    def time_axis_s(self) -> np.ndarray:
        """Receive time axis (t = 0 is the wavefront at the array center)."""
        return np.arange(self.n_samples) / self.probe.sampling_frequency_hz

    def simulate(
        self, phantom: Phantom, angle_rad: float = 0.0
    ) -> np.ndarray:
        """Simulate RF channel data for one plane-wave insonification.

        Returns an ``(n_samples, n_elements)`` float64 array.
        """
        return simulate_rf(self, phantom, angle_rad)


def simulate_rf(
    acquisition: PlaneWaveAcquisition,
    phantom: Phantom,
    angle_rad: float = 0.0,
) -> np.ndarray:
    """Simulate single-angle plane-wave RF data (see module docstring)."""
    probe = acquisition.probe
    medium = acquisition.medium
    pulse = acquisition.effective_pulse
    fs = probe.sampling_frequency_hz
    c = medium.sound_speed_m_s

    positions = phantom.positions_m
    amplitudes = phantom.amplitudes
    if positions.shape[0] == 0:
        return np.zeros((acquisition.n_samples, probe.n_elements))

    sx = positions[:, 0]
    sz = positions[:, 1]
    element_x = probe.element_positions_m

    tau_tx = plane_wave_tx_delay(sx, sz, angle_rad, c)  # (S,)
    tau_rx = rx_delay(sx, sz, element_x, c)  # (S, E)
    arrival = tau_tx[:, np.newaxis] + tau_rx  # (S, E)

    wavelength = probe.wavelength_m(c)
    directivity = element_directivity(
        sx, sz, element_x, probe.element_width_m, wavelength
    )  # (S, E)
    rx_distance = tau_rx * c
    spreading = geometric_spreading(rx_distance)
    # Attenuation over the full round-trip path at the carrier frequency.
    round_trip = tau_tx[:, np.newaxis] * c + rx_distance
    if medium.attenuation_db_cm_mhz > 0:
        loss_db = (
            medium.attenuation_db_cm_mhz
            * (round_trip * 100.0)
            * (probe.center_frequency_hz / 1e6)
        )
        attenuation = 10.0 ** (-loss_db / 20.0)
    else:
        attenuation = 1.0

    gain = amplitudes[:, np.newaxis] * directivity * spreading * attenuation

    n_samples = acquisition.n_samples
    rf = np.zeros((n_samples, probe.n_elements))

    half_support = (pulse.support_samples(fs) - 1) // 2
    offsets = np.arange(-half_support, half_support + 1)  # (L,)

    for element in range(probe.n_elements):
        t_arr = arrival[:, element]  # (S,)
        g = gain[:, element]  # (S,)
        # Nearest sample to each arrival, then evaluate the pulse exactly
        # at the fractional offset so no resampling error is introduced.
        center_idx = np.round(t_arr * fs).astype(np.int64)  # (S,)
        idx = center_idx[:, np.newaxis] + offsets  # (S, L)
        t_rel = idx / fs - t_arr[:, np.newaxis]  # (S, L)
        contrib = g[:, np.newaxis] * pulse.waveform(t_rel)  # (S, L)
        flat_idx = idx.ravel()
        valid = (flat_idx >= 0) & (flat_idx < n_samples)
        rf[:, element] += np.bincount(
            flat_idx[valid],
            weights=contrib.ravel()[valid],
            minlength=n_samples,
        )
    return rf


def simulate_multi_angle_rf(
    acquisition: PlaneWaveAcquisition,
    phantom: Phantom,
    angles_rad: np.ndarray,
) -> np.ndarray:
    """Simulate a stack of acquisitions, one per steering angle.

    Returns ``(n_angles, n_samples, n_elements)``; used for the CUBDL-style
    multi-angle training set and for coherent plane-wave compounding.
    """
    angles = np.atleast_1d(np.asarray(angles_rad, dtype=float))
    stack = [simulate_rf(acquisition, phantom, angle) for angle in angles]
    return np.stack(stack, axis=0)
