"""Streaming acquisition adapters: live-probe-style frame generation.

The serving layer (:mod:`repro.serve`) consumes *streams* of
:class:`~repro.ultrasound.datasets.PlaneWaveDataset` frames rather than
single dataset objects.  Two generators provide those streams:

* :func:`stream_scene_drift` — physically re-simulated frames of a
  slowly evolving scene: the scatterer cloud random-walks between frames
  (tissue motion / probe micro-movement) and each frame runs the full
  forward model.  This is the highest-fidelity stand-in for a live
  probe.
* :func:`stream_gain_drift` — cheap per-frame multiplicative gain
  perturbation of one base acquisition.  Same geometry, fresh sample
  values, no re-simulation cost — the workhorse for serving benches and
  tests where simulation time would dominate the measurement.

Both preserve the base acquisition geometry exactly (probe, grid, angle,
sound speed, record length), so every streamed frame resolves to the
same cached :class:`~repro.beamform.tof.TofPlan` and the serving
scheduler can batch the whole stream under one plan.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator

import numpy as np

from repro.ultrasound.acquisition import simulate_rf
from repro.ultrasound.datasets import PlaneWaveDataset, acquisition_for
from repro.ultrasound.phantoms import Phantom
from repro.utils.rng import make_rng


def drifted_phantom(
    phantom: Phantom,
    rng: np.random.Generator,
    drift_sigma_m: float,
) -> Phantom:
    """One random-walk step of the scatterer cloud.

    Every scatterer moves independently by an isotropic Gaussian step of
    standard deviation ``drift_sigma_m`` (per axis); amplitudes are
    unchanged.  Successive calls therefore model slow, incoherent scene
    motion — enough to decorrelate speckle over tens of frames without
    deforming the macroscopic targets.
    """
    if drift_sigma_m < 0:
        raise ValueError(
            f"drift_sigma_m must be >= 0, got {drift_sigma_m}"
        )
    if drift_sigma_m == 0 or phantom.positions_m.shape[0] == 0:
        return phantom
    step = rng.normal(0.0, drift_sigma_m, size=phantom.positions_m.shape)
    return Phantom(
        positions_m=phantom.positions_m + step,
        amplitudes=phantom.amplitudes,
    )


def stream_scene_drift(
    base: PlaneWaveDataset,
    n_frames: int,
    drift_sigma_m: float = 50e-6,
    seed: int = 0,
) -> Iterator[PlaneWaveDataset]:
    """Yield ``n_frames`` re-simulated frames of a drifting scene.

    Each frame advances the scatterer cloud by one
    :func:`drifted_phantom` step and runs the full plane-wave forward
    model on the base acquisition geometry.  Deterministic in ``seed``.
    """
    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    rng = make_rng(seed)
    acquisition = acquisition_for(base.probe, base.medium, base.grid)
    if acquisition.n_samples != base.rf.shape[0]:
        raise ValueError(
            "base dataset record length "
            f"({base.rf.shape[0]}) does not match its acquisition "
            f"geometry ({acquisition.n_samples}); streamed frames would "
            "not share the base ToF plan"
        )
    phantom = base.phantom
    for index in range(n_frames):
        phantom = drifted_phantom(phantom, rng, drift_sigma_m)
        rf = simulate_rf(acquisition, phantom, base.angle_rad)
        yield replace(
            base,
            spec=replace(base.spec, name=f"{base.name}/drift{index:04d}"),
            rf=rf,
            phantom=phantom,
        )


def stream_gain_drift(
    base: PlaneWaveDataset,
    n_frames: int,
    gain_rms: float = 0.01,
    seed: int = 0,
) -> Iterator[PlaneWaveDataset]:
    """Yield ``n_frames`` gain-perturbed copies of one acquisition.

    Each frame multiplies the base RF by ``1 + gain_rms * N(0, 1)``
    (elementwise) — a cheap stand-in for frame-to-frame signal variation
    that keeps the geometry (and therefore the ToF plan) fixed.
    Deterministic in ``seed``.
    """
    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    if gain_rms < 0:
        raise ValueError(f"gain_rms must be >= 0, got {gain_rms}")
    rng = make_rng(seed)
    for index in range(n_frames):
        gain = 1.0 + gain_rms * rng.standard_normal(base.rf.shape)
        yield replace(
            base,
            spec=replace(base.spec, name=f"{base.name}/gain{index:04d}"),
            rf=base.rf * gain,
        )
