"""PICMUS-style dataset presets and training-set generation.

The paper evaluates on the PICMUS 2016 challenge datasets:

* **simulation** (in-silico, Field II): a *resolution-distortion* set with
  horizontal rows of point targets in two depth zones, and a *contrast*
  set with anechoic cysts at 13 / 25 / 37 mm depth in uniform speckle,
* **phantom** (in-vitro, Verasonics Vantage 256): the same target classes
  measured on a physical phantom — point rows around 14 / 33 mm and cysts
  around 15 / 35 mm — i.e. clean simulation physics plus measurement
  impairments.

PICMUS itself is not downloadable in this environment, so these presets
regenerate the same *geometry* with our plane-wave simulator
(:mod:`repro.ultrasound.acquisition`) and reproduce the in-vitro character
by injecting calibrated impairments (:mod:`repro.ultrasound.noise`).
Two scales are provided:

* ``small`` (default): 32-element aperture, 368 x 64 pixel grid — fast
  enough for tests, training and benches on a laptop-class CPU,
* ``paper``: 128-element L11-5v aperture with the paper's 368 x 128 grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.beamform.geometry import ImagingGrid
from repro.ultrasound.acquisition import (
    PlaneWaveAcquisition,
    simulate_multi_angle_rf,
    simulate_rf,
)
from repro.ultrasound.medium import Medium
from repro.ultrasound.noise import in_vitro_impairments
from repro.ultrasound.phantoms import (
    Phantom,
    cyst_phantom,
    point_phantom,
    resolution_point_layout,
    speckle_field,
)
from repro.ultrasound.probe import LinearProbe, l11_5v, small_probe
from repro.utils.rng import make_rng
from repro.utils.validation import require_in

SCALES = ("small", "paper")


@dataclass(frozen=True)
class DatasetSpec:
    """Geometry of a dataset preset (documented per bench in DESIGN.md)."""

    name: str
    kind: str  # "contrast" | "resolution" | "training"
    scale: str
    n_elements: int
    grid_shape: tuple[int, int]  # (nz, nx)
    x_span_m: tuple[float, float]
    z_span_m: tuple[float, float]
    cyst_centers_m: tuple[tuple[float, float], ...] = ()
    cyst_radius_m: float = 0.0
    point_positions_m: tuple[tuple[float, float], ...] = ()
    in_vitro: bool = False


@dataclass(frozen=True)
class PlaneWaveDataset:
    """A simulated single-angle plane-wave acquisition plus its metadata.

    Attributes:
        spec: geometry description (targets, grid, scale).
        rf: ``(n_samples, n_elements)`` received channel data.
        angle_rad: plane-wave steering angle of this acquisition.
        probe: receiving array.
        grid: reconstruction pixel grid.
        medium: propagation medium used by the simulator.
        phantom: the generating scatterer cloud (useful for tests).
        t_start_s: receive time of the first RF sample.
    """

    spec: DatasetSpec
    rf: np.ndarray
    angle_rad: float
    probe: LinearProbe
    grid: ImagingGrid
    medium: Medium
    phantom: Phantom
    t_start_s: float = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def sound_speed_m_s(self) -> float:
        return self.medium.sound_speed_m_s

    @property
    def cysts(self) -> tuple[tuple[tuple[float, float], float], ...]:
        """Cyst (center, radius) pairs for contrast metrics."""
        return tuple(
            (center, self.spec.cyst_radius_m)
            for center in self.spec.cyst_centers_m
        )

    @property
    def points(self) -> tuple[tuple[float, float], ...]:
        """Point-target positions for resolution metrics."""
        return self.spec.point_positions_m


# --------------------------------------------------------------------------
# Scale definitions
# --------------------------------------------------------------------------


def _probe_for(scale: str) -> LinearProbe:
    require_in("scale", scale, SCALES)
    return l11_5v() if scale == "paper" else small_probe(32)


def _grid_for(scale: str) -> ImagingGrid:
    if scale == "paper":
        # The paper's frame is 368 x 128 over the full L11-5v aperture.
        return ImagingGrid.from_spans(
            x_span_m=(-19.05e-3, 19.05e-3),
            z_span_m=(5e-3, 50e-3),
            nx=128,
            nz=368,
        )
    # Small scale keeps the paper's 368 depth rows (axial resolution
    # metrics need fine dz) over a narrower 64-column lateral field.
    return ImagingGrid.from_spans(
        x_span_m=(-6e-3, 6e-3),
        z_span_m=(5e-3, 42e-3),
        nx=64,
        nz=368,
    )


def _speckle_region(
    grid: ImagingGrid,
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Scatterer region: the image plus margins to avoid edge artifacts."""
    margin_x = 2e-3
    margin_z = 2e-3
    return (
        (grid.x_m[0] - margin_x, grid.x_m[-1] + margin_x),
        (max(1e-3, grid.z_m[0] - margin_z), grid.z_m[-1] + margin_z),
    )


def _n_speckle(scale: str) -> int:
    return 30000 if scale == "paper" else 6000


def acquisition_for(
    probe: LinearProbe, medium: Medium, grid: ImagingGrid
) -> PlaneWaveAcquisition:
    """The acquisition every preset (and streamed frame) records with:
    depth coverage is the grid's deepest row plus a 3 mm margin.  Shared
    with :mod:`repro.ultrasound.streaming` so re-simulated frames always
    reproduce the base dataset's record length (and thus its ToF plan).
    """
    return PlaneWaveAcquisition(
        probe=probe,
        medium=medium,
        max_depth_m=float(grid.z_m[-1]) + 3e-3,
    )


_IN_SILICO_MEDIUM = Medium(sound_speed_m_s=1540.0, attenuation_db_cm_mhz=0.0)
_IN_VITRO_MEDIUM = Medium(sound_speed_m_s=1540.0, attenuation_db_cm_mhz=0.3)


# --------------------------------------------------------------------------
# Evaluation presets
# --------------------------------------------------------------------------


def simulation_contrast(
    scale: str = "small", seed: int = 101
) -> PlaneWaveDataset:
    """PICMUS-style in-silico contrast set: anechoic cysts at 3 depths.

    Cysts sit at 13 / 25 / 37 mm (paper Fig. 9) on the array axis.
    """
    return _contrast_dataset(
        name="simulation_contrast",
        scale=scale,
        seed=seed,
        cyst_depths_m=(13e-3, 25e-3, 37e-3),
        in_vitro=False,
    )


def phantom_contrast(
    scale: str = "small", seed: int = 202
) -> PlaneWaveDataset:
    """In-vitro style contrast set: cysts at 15 / 35 mm plus impairments
    (paper Fig. 10)."""
    return _contrast_dataset(
        name="phantom_contrast",
        scale=scale,
        seed=seed,
        cyst_depths_m=(15e-3, 35e-3),
        in_vitro=True,
    )


def simulation_resolution(
    scale: str = "small", seed: int = 303
) -> PlaneWaveDataset:
    """In-silico resolution set: point rows at 15 / 35 mm (paper Fig. 11),
    anechoic background."""
    return _resolution_dataset(
        name="simulation_resolution",
        scale=scale,
        seed=seed,
        row_depths_m=(15.12e-3, 35.15e-3),
        in_vitro=False,
    )


def phantom_resolution(
    scale: str = "small", seed: int = 404
) -> PlaneWaveDataset:
    """In-vitro style resolution set: point rows at 14 / 33 mm plus
    impairments (paper Fig. 13)."""
    return _resolution_dataset(
        name="phantom_resolution",
        scale=scale,
        seed=seed,
        row_depths_m=(14.01e-3, 32.79e-3),
        in_vitro=True,
    )


def _contrast_dataset(
    name: str,
    scale: str,
    seed: int,
    cyst_depths_m: tuple[float, ...],
    in_vitro: bool,
) -> PlaneWaveDataset:
    probe = _probe_for(scale)
    grid = _grid_for(scale)
    medium = _IN_VITRO_MEDIUM if in_vitro else _IN_SILICO_MEDIUM
    cyst_radius = 4e-3 if scale == "paper" else 3e-3
    centers = tuple((0.0, depth) for depth in cyst_depths_m)

    x_span, z_span = _speckle_region(grid)
    phantom = cyst_phantom(
        x_span_m=x_span,
        z_span_m=z_span,
        cyst_centers_m=np.asarray(centers),
        cyst_radius_m=cyst_radius,
        n_scatterers=_n_speckle(scale),
        seed=seed,
    )
    acquisition = acquisition_for(probe, medium, grid)
    rf = simulate_rf(acquisition, phantom, angle_rad=0.0)
    if in_vitro:
        rf = in_vitro_impairments(rf, seed=seed + 1)

    spec = DatasetSpec(
        name=name,
        kind="contrast",
        scale=scale,
        n_elements=probe.n_elements,
        grid_shape=grid.shape,
        x_span_m=(float(grid.x_m[0]), float(grid.x_m[-1])),
        z_span_m=(float(grid.z_m[0]), float(grid.z_m[-1])),
        cyst_centers_m=centers,
        cyst_radius_m=cyst_radius,
        in_vitro=in_vitro,
    )
    return PlaneWaveDataset(
        spec=spec,
        rf=rf,
        angle_rad=0.0,
        probe=probe,
        grid=grid,
        medium=medium,
        phantom=phantom,
    )


def _resolution_dataset(
    name: str,
    scale: str,
    seed: int,
    row_depths_m: tuple[float, ...],
    in_vitro: bool,
) -> PlaneWaveDataset:
    probe = _probe_for(scale)
    grid = _grid_for(scale)
    medium = _IN_VITRO_MEDIUM if in_vitro else _IN_SILICO_MEDIUM
    if scale == "paper":
        lateral_offsets = (-12e-3, -6e-3, 0.0, 6e-3, 12e-3)
    else:
        lateral_offsets = (-4.4e-3, -2.2e-3, 0.0, 2.2e-3, 4.4e-3)
    points = resolution_point_layout(row_depths_m, lateral_offsets)
    phantom = point_phantom(points, amplitude=1.0)

    acquisition = acquisition_for(probe, medium, grid)
    rf = simulate_rf(acquisition, phantom, angle_rad=0.0)
    if in_vitro:
        rf = in_vitro_impairments(rf, seed=seed + 1, snr_db=35.0)

    spec = DatasetSpec(
        name=name,
        kind="resolution",
        scale=scale,
        n_elements=probe.n_elements,
        grid_shape=grid.shape,
        x_span_m=(float(grid.x_m[0]), float(grid.x_m[-1])),
        z_span_m=(float(grid.z_m[0]), float(grid.z_m[-1])),
        point_positions_m=tuple(map(tuple, points)),
        in_vitro=in_vitro,
    )
    return PlaneWaveDataset(
        spec=spec,
        rf=rf,
        angle_rad=0.0,
        probe=probe,
        grid=grid,
        medium=medium,
        phantom=phantom,
    )


# --------------------------------------------------------------------------
# Training data
# --------------------------------------------------------------------------


def training_frames(
    n_frames: int,
    scale: str = "small",
    seed: int = 7,
) -> list[PlaneWaveDataset]:
    """Generate a diverse single-angle training corpus.

    Mirrors the paper's training recipe (Verasonics acquisitions of mixed
    scenes, Section III-B): every frame contains speckle background plus a
    random draw of anechoic cysts and bright point targets, so the model
    sees both contrast and resolution structure.
    """
    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    rng = make_rng(seed)
    probe = _probe_for(scale)
    grid = _grid_for(scale)
    medium = _IN_SILICO_MEDIUM
    acquisition = acquisition_for(probe, medium, grid)
    x_span, z_span = _speckle_region(grid)

    frames = []
    for index in range(n_frames):
        frame_seed = int(rng.integers(0, 2**31 - 1))
        frame_rng = make_rng(frame_seed)
        phantom = _random_scene(
            frame_rng, grid, x_span, z_span, _n_speckle(scale)
        )
        rf = simulate_rf(acquisition, phantom, angle_rad=0.0)
        spec = DatasetSpec(
            name=f"training_{index:03d}",
            kind="training",
            scale=scale,
            n_elements=probe.n_elements,
            grid_shape=grid.shape,
            x_span_m=(float(grid.x_m[0]), float(grid.x_m[-1])),
            z_span_m=(float(grid.z_m[0]), float(grid.z_m[-1])),
        )
        frames.append(
            PlaneWaveDataset(
                spec=spec,
                rf=rf,
                angle_rad=0.0,
                probe=probe,
                grid=grid,
                medium=medium,
                phantom=phantom,
            )
        )
    return frames


def _random_scene(
    rng: np.random.Generator,
    grid: ImagingGrid,
    x_span: tuple[float, float],
    z_span: tuple[float, float],
    n_scatterers: int,
) -> Phantom:
    """One random training scene.

    Scene types are mixed deliberately: cyst-in-speckle frames are
    peak-normalized by speckle (matching the contrast evaluation data),
    point-only frames by the point echoes (matching the
    resolution-distortion data), and mixed frames cover everything in
    between.  Without the pure types the models face a normalization
    distribution shift at evaluation time.
    """
    scene_type = rng.choice(
        ["cysts", "points", "mixed"], p=[0.35, 0.3, 0.35]
    )

    if scene_type == "points":
        # PICMUS-style point rows: a shallow and a deep row (plus
        # occasionally a third), each with several isolated targets.
        # Deep rows are guaranteed so the models learn to sharpen
        # aperture-limited far-field mainlobes too.
        z_lo, z_hi = grid.z_m[0] + 2e-3, grid.z_m[-1] - 2e-3
        z_mid = 0.5 * (z_lo + z_hi)
        row_depths = [
            rng.uniform(z_lo, z_mid - 2e-3),
            rng.uniform(z_mid + 2e-3, z_hi),
        ]
        if rng.uniform() < 0.5:
            row_depths.append(rng.uniform(z_lo, z_hi))
        points = []
        amplitudes = []
        for depth in row_depths:
            n_points = int(rng.integers(3, 6))
            xs = rng.uniform(
                grid.x_m[0] + 1e-3, grid.x_m[-1] - 1e-3, n_points
            )
            points.extend((x, depth) for x in xs)
            amplitudes.extend(rng.uniform(0.7, 1.3, n_points))
        return Phantom(
            positions_m=np.asarray(points),
            amplitudes=np.asarray(amplitudes),
        )

    n_cysts = int(rng.integers(1, 3))
    margin = 4e-3
    centers = np.column_stack(
        [
            rng.uniform(grid.x_m[0] + margin, grid.x_m[-1] - margin, n_cysts),
            rng.uniform(grid.z_m[0] + margin, grid.z_m[-1] - margin, n_cysts),
        ]
    )
    radius = float(rng.uniform(2e-3, 3.5e-3))
    scene = cyst_phantom(
        x_span_m=x_span,
        z_span_m=z_span,
        cyst_centers_m=centers,
        cyst_radius_m=radius,
        n_scatterers=n_scatterers,
        seed=rng,
    )
    if scene_type == "cysts":
        return scene
    n_points = int(rng.integers(2, 5))
    points = np.column_stack(
        [
            rng.uniform(grid.x_m[0] + 1e-3, grid.x_m[-1] - 1e-3, n_points),
            rng.uniform(grid.z_m[0] + 2e-3, grid.z_m[-1] - 2e-3, n_points),
        ]
    )
    bright = point_phantom(points, amplitude=float(rng.uniform(5.0, 10.0)))
    return scene.combined_with(bright)


# --------------------------------------------------------------------------
# Multi-angle (CUBDL-style) set
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MultiAngleDataset:
    """A multi-angle acquisition stack for compounding / fine-tuning."""

    base: PlaneWaveDataset
    rf_stack: np.ndarray  # (n_angles, n_samples, n_elements)
    angles_rad: np.ndarray  # (n_angles,)


def multi_angle_set(
    n_angles: int = 10,
    max_angle_deg: float = 8.0,
    scale: str = "small",
    seed: int = 505,
) -> MultiAngleDataset:
    """Simulate a CUBDL-style multi-angle plane-wave acquisition.

    The paper fine-tunes on 10-angle CUBDL data (Section III-B); this
    preset provides an equivalent stack over a contrast scene whose
    compounded reconstruction can serve as a high-quality reference.
    """
    if n_angles < 1:
        raise ValueError(f"n_angles must be >= 1, got {n_angles}")
    base = simulation_contrast(scale=scale, seed=seed)
    angles = np.deg2rad(
        np.linspace(-max_angle_deg, max_angle_deg, n_angles)
    )
    acquisition = acquisition_for(base.probe, base.medium, base.grid)
    rf_stack = simulate_multi_angle_rf(acquisition, base.phantom, angles)
    return MultiAngleDataset(base=base, rf_stack=rf_stack, angles_rad=angles)
