"""Scatterer phantoms: point targets, speckle, anechoic cysts.

A phantom is simply a cloud of point scatterers with amplitudes.  The
builders below reproduce the geometry of the PICMUS evaluation phantoms
used by the paper:

* *resolution-distortion*: bright point targets arranged horizontally in
  two depth zones against an anechoic background (paper Figs. 11-14),
* *contrast*: anechoic cysts embedded in uniform speckle at several depths
  (paper Figs. 9-10, Tables I/V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Phantom:
    """A cloud of point scatterers.

    Attributes:
        positions_m: ``(n, 2)`` array of (x, z) scatterer positions.
        amplitudes: ``(n,)`` scattering amplitudes (may be signed).
    """

    positions_m: np.ndarray
    amplitudes: np.ndarray

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions_m, dtype=float)
        amplitudes = np.asarray(self.amplitudes, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(
                f"positions_m must be (n, 2), got {positions.shape}"
            )
        if amplitudes.shape != (positions.shape[0],):
            raise ValueError(
                "amplitudes must be (n,) matching positions, got "
                f"{amplitudes.shape} for {positions.shape[0]} scatterers"
            )
        object.__setattr__(self, "positions_m", positions)
        object.__setattr__(self, "amplitudes", amplitudes)

    @property
    def n_scatterers(self) -> int:
        return self.positions_m.shape[0]

    def combined_with(self, other: "Phantom") -> "Phantom":
        """Union of two scatterer clouds."""
        return Phantom(
            positions_m=np.vstack([self.positions_m, other.positions_m]),
            amplitudes=np.concatenate([self.amplitudes, other.amplitudes]),
        )


def point_phantom(
    points_m: np.ndarray, amplitude: float = 1.0
) -> Phantom:
    """Phantom made of isolated unit point targets at ``points_m`` (n, 2)."""
    points = np.atleast_2d(np.asarray(points_m, dtype=float))
    return Phantom(
        positions_m=points,
        amplitudes=np.full(points.shape[0], float(amplitude)),
    )


def speckle_field(
    x_span_m: tuple[float, float],
    z_span_m: tuple[float, float],
    n_scatterers: int,
    seed: int | np.random.Generator | None = 0,
    mean_amplitude: float = 1.0,
) -> Phantom:
    """Uniformly distributed diffuse scatterers with Gaussian amplitudes.

    Gaussian (zero-mean) scattering amplitudes produce Rayleigh-distributed
    envelope statistics once many scatterers fall inside a resolution cell,
    which is the fully-developed-speckle regime the contrast metrics
    (CNR/GCNR) assume.
    """
    if n_scatterers < 1:
        raise ValueError(f"n_scatterers must be >= 1, got {n_scatterers}")
    check_positive("mean_amplitude", mean_amplitude)
    rng = make_rng(seed)
    x = rng.uniform(x_span_m[0], x_span_m[1], n_scatterers)
    z = rng.uniform(z_span_m[0], z_span_m[1], n_scatterers)
    amplitudes = rng.normal(0.0, mean_amplitude, n_scatterers)
    return Phantom(
        positions_m=np.column_stack([x, z]), amplitudes=amplitudes
    )


def cyst_phantom(
    x_span_m: tuple[float, float],
    z_span_m: tuple[float, float],
    cyst_centers_m: np.ndarray,
    cyst_radius_m: float,
    n_scatterers: int,
    seed: int | np.random.Generator | None = 0,
) -> Phantom:
    """Speckle field with anechoic disks carved out at ``cyst_centers_m``.

    Scatterers inside any cyst are removed (anechoic = no scattering),
    reproducing the PICMUS contrast phantom geometry.
    """
    check_positive("cyst_radius_m", cyst_radius_m)
    centers = np.atleast_2d(np.asarray(cyst_centers_m, dtype=float))
    base = speckle_field(x_span_m, z_span_m, n_scatterers, seed=seed)
    keep = np.ones(base.n_scatterers, dtype=bool)
    for cx, cz in centers:
        inside = (
            (base.positions_m[:, 0] - cx) ** 2
            + (base.positions_m[:, 1] - cz) ** 2
        ) < cyst_radius_m**2
        keep &= ~inside
    return Phantom(
        positions_m=base.positions_m[keep],
        amplitudes=base.amplitudes[keep],
    )


def resolution_point_layout(
    depths_m: tuple[float, ...],
    lateral_offsets_m: tuple[float, ...],
) -> np.ndarray:
    """PICMUS-style point grid: a horizontal row of points at each depth."""
    points = [
        (x, z) for z in depths_m for x in lateral_offsets_m
    ]
    return np.asarray(points, dtype=float)
