"""Linear-array probe geometry.

The paper acquires data with a Verasonics L11-5v: 128 elements, 0.3 mm
pitch, operated at a 7.6 MHz center frequency and sampled at 31.25 MHz
(Section III-B).  :func:`l11_5v` reproduces that geometry;
:func:`small_probe` is a reduced-aperture variant used by tests and the
default benchmark scale so that simulation and MVDR stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LinearProbe:
    """Geometry and front-end sampling of a 1-D linear array.

    Attributes:
        n_elements: number of transducer elements (channels).
        pitch_m: element-to-element spacing in meters.
        element_width_m: physical element width (used for directivity).
        center_frequency_hz: transmit pulse center frequency.
        sampling_frequency_hz: ADC sampling rate of the received RF.
    """

    n_elements: int
    pitch_m: float
    element_width_m: float
    center_frequency_hz: float
    sampling_frequency_hz: float

    def __post_init__(self) -> None:
        if self.n_elements < 2:
            raise ValueError(
                f"n_elements must be >= 2, got {self.n_elements}"
            )
        check_positive("pitch_m", self.pitch_m)
        check_positive("element_width_m", self.element_width_m)
        check_positive("center_frequency_hz", self.center_frequency_hz)
        check_positive("sampling_frequency_hz", self.sampling_frequency_hz)
        if self.element_width_m > self.pitch_m:
            raise ValueError(
                "element_width_m cannot exceed pitch_m "
                f"({self.element_width_m} > {self.pitch_m})"
            )
        if self.sampling_frequency_hz < 2 * self.center_frequency_hz:
            raise ValueError(
                "sampling_frequency_hz violates Nyquist for the center "
                f"frequency ({self.sampling_frequency_hz} < "
                f"2 * {self.center_frequency_hz})"
            )

    @property
    def element_positions_m(self) -> np.ndarray:
        """Lateral x-coordinates of element centers, centered on 0."""
        idx = np.arange(self.n_elements)
        return (idx - (self.n_elements - 1) / 2.0) * self.pitch_m

    @property
    def aperture_m(self) -> float:
        """Total aperture width from first to last element center."""
        return (self.n_elements - 1) * self.pitch_m

    def wavelength_m(self, sound_speed_m_s: float) -> float:
        """Wavelength of the center frequency in the given medium."""
        check_positive("sound_speed_m_s", sound_speed_m_s)
        return sound_speed_m_s / self.center_frequency_hz


def l11_5v() -> LinearProbe:
    """Paper-scale probe: Verasonics L11-5v style 128-element array."""
    return LinearProbe(
        n_elements=128,
        pitch_m=0.3e-3,
        element_width_m=0.27e-3,
        center_frequency_hz=7.6e6,
        sampling_frequency_hz=31.25e6,
    )


def small_probe(n_elements: int = 32) -> LinearProbe:
    """Reduced-aperture probe used for fast tests and default benches.

    Same pitch/frequency family as the L11-5v so that beamforming physics
    (f-number, wavelength-relative resolution) carries over; only the
    element count (and hence aperture) shrinks.
    """
    return LinearProbe(
        n_elements=n_elements,
        pitch_m=0.3e-3,
        element_width_m=0.27e-3,
        center_frequency_hz=7.6e6,
        sampling_frequency_hz=31.25e6,
    )
