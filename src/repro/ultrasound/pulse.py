"""Transmit pulse model: a Gaussian-modulated sinusoid.

This is the standard Field II style excitation: a carrier at the probe's
center frequency under a Gaussian envelope whose width is set by the
fractional bandwidth (-6 dB, two-sided).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

# A Gaussian envelope exp(-t^2 / (2 sigma^2)) is 0.5 (i.e. -6 dB) at
# t = sigma * sqrt(2 ln 2); the -6 dB *bandwidth* of its spectrum relates to
# sigma via BW = 2 sqrt(2 ln 2) / (2 pi sigma).
_TWO_SQRT_2LN2 = 2.0 * np.sqrt(2.0 * np.log(2.0))


@dataclass(frozen=True)
class GaussianPulse:
    """Gaussian-modulated sinusoidal pulse.

    Attributes:
        center_frequency_hz: carrier frequency.
        fractional_bandwidth: -6 dB two-sided bandwidth over the carrier
            frequency (PICMUS probes are around 0.65-0.75).
        phase_rad: carrier phase at t = 0.
    """

    center_frequency_hz: float
    fractional_bandwidth: float = 0.67
    phase_rad: float = 0.0

    def __post_init__(self) -> None:
        check_positive("center_frequency_hz", self.center_frequency_hz)
        if not 0.05 <= self.fractional_bandwidth <= 2.0:
            raise ValueError(
                "fractional_bandwidth must be in [0.05, 2.0], got "
                f"{self.fractional_bandwidth}"
            )

    @property
    def sigma_s(self) -> float:
        """Gaussian envelope standard deviation in seconds."""
        bandwidth_hz = self.fractional_bandwidth * self.center_frequency_hz
        return _TWO_SQRT_2LN2 / (2.0 * np.pi * bandwidth_hz)

    @property
    def half_duration_s(self) -> float:
        """Half-width of the effective support (4 sigma, ~ -139 dB tail)."""
        return 4.0 * self.sigma_s

    def waveform(self, t_s: np.ndarray) -> np.ndarray:
        """Evaluate the pulse at times ``t_s`` (seconds, zero-centered)."""
        t = np.asarray(t_s, dtype=float)
        envelope = np.exp(-(t**2) / (2.0 * self.sigma_s**2))
        carrier = np.cos(
            2.0 * np.pi * self.center_frequency_hz * t + self.phase_rad
        )
        return envelope * carrier

    def envelope(self, t_s: np.ndarray) -> np.ndarray:
        """Evaluate only the Gaussian envelope at times ``t_s``."""
        t = np.asarray(t_s, dtype=float)
        return np.exp(-(t**2) / (2.0 * self.sigma_s**2))

    def support_samples(self, sampling_frequency_hz: float) -> int:
        """Number of samples covering [-half_duration, +half_duration]."""
        check_positive("sampling_frequency_hz", sampling_frequency_hz)
        half = int(np.ceil(self.half_duration_s * sampling_frequency_hz))
        return 2 * half + 1
