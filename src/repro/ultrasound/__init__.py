"""Plane-wave ultrasound acquisition simulator.

This subpackage is the stand-in for the physical acquisition hardware used
in the paper (Verasonics Vantage research scanners with an L11-5v linear
probe) and for the Field II simulations behind the PICMUS in-silico
datasets.  It implements a linear point-scatterer forward model:

1. a plane wave is transmitted at a steering angle,
2. every scatterer re-radiates a band-limited pulse,
3. every element records the superposition with geometric spreading,
   element directivity, frequency-independent attenuation and (optionally)
   measurement impairments (thermal noise, reverberation clutter, element
   gain/phase spread).

The same physics class underlies Field II, so the datasets produced here
exercise the identical beamforming/learning code paths as PICMUS data.
"""

from repro.ultrasound.probe import LinearProbe, l11_5v, small_probe
from repro.ultrasound.pulse import GaussianPulse
from repro.ultrasound.medium import Medium, WATER_LIKE_TISSUE
from repro.ultrasound.phantoms import (
    Phantom,
    cyst_phantom,
    point_phantom,
    speckle_field,
)
from repro.ultrasound.acquisition import PlaneWaveAcquisition, simulate_rf
from repro.ultrasound.noise import (
    add_reverberation_clutter,
    add_thermal_noise,
    apply_element_variation,
)
from repro.ultrasound.datasets import (
    DatasetSpec,
    PlaneWaveDataset,
    phantom_contrast,
    phantom_resolution,
    simulation_contrast,
    simulation_resolution,
    multi_angle_set,
    training_frames,
)
from repro.ultrasound.streaming import (
    drifted_phantom,
    stream_gain_drift,
    stream_scene_drift,
)

__all__ = [
    "LinearProbe",
    "l11_5v",
    "small_probe",
    "GaussianPulse",
    "Medium",
    "WATER_LIKE_TISSUE",
    "Phantom",
    "cyst_phantom",
    "point_phantom",
    "speckle_field",
    "PlaneWaveAcquisition",
    "simulate_rf",
    "add_thermal_noise",
    "add_reverberation_clutter",
    "apply_element_variation",
    "DatasetSpec",
    "PlaneWaveDataset",
    "simulation_resolution",
    "simulation_contrast",
    "phantom_resolution",
    "phantom_contrast",
    "multi_angle_set",
    "training_frames",
    "drifted_phantom",
    "stream_gain_drift",
    "stream_scene_drift",
]
