"""Propagation medium parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Medium:
    """Homogeneous propagation medium.

    Attributes:
        sound_speed_m_s: speed of sound (PICMUS assumes 1540 m/s).
        attenuation_db_cm_mhz: amplitude attenuation coefficient in
            dB / (cm * MHz); 0.0 reproduces a lossless Field II style
            simulation, ~0.5 is soft-tissue-like and is used for the
            in-vitro style presets.
    """

    sound_speed_m_s: float = 1540.0
    attenuation_db_cm_mhz: float = 0.0

    def __post_init__(self) -> None:
        check_positive("sound_speed_m_s", self.sound_speed_m_s)
        if self.attenuation_db_cm_mhz < 0:
            raise ValueError(
                "attenuation_db_cm_mhz must be >= 0, got "
                f"{self.attenuation_db_cm_mhz}"
            )

    def attenuation_amplitude(
        self, path_length_m: float, frequency_hz: float
    ) -> float:
        """Linear amplitude factor after propagating ``path_length_m``."""
        loss_db = (
            self.attenuation_db_cm_mhz
            * (path_length_m * 100.0)
            * (frequency_hz / 1e6)
        )
        return 10.0 ** (-loss_db / 20.0)


WATER_LIKE_TISSUE = Medium(sound_speed_m_s=1540.0, attenuation_db_cm_mhz=0.0)
