"""Plane-wave propagation geometry: transmit/receive delays, directivity.

Shared between the acquisition simulator and (via cross-checked tests) the
beamformer's time-of-flight module.  Coordinates follow the ultrasound
convention: ``x`` lateral (along the array), ``z`` depth (into the medium),
with the array at ``z = 0``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def plane_wave_tx_delay(
    x_m: np.ndarray,
    z_m: np.ndarray,
    angle_rad: float,
    sound_speed_m_s: float,
) -> np.ndarray:
    """Transmit time of flight of a steered plane wave to points (x, z).

    The wavefront passes through the array center (origin) at t = 0 and
    travels along (sin angle, cos angle):

        tau_tx = (z cos(angle) + x sin(angle)) / c

    For angle = 0 this reduces to z / c.  Negative values are possible for
    steep angles and lateral points behind the wavefront at t = 0; the
    simulator and beamformer both use the same convention so delays stay
    consistent.
    """
    check_positive("sound_speed_m_s", sound_speed_m_s)
    x = np.asarray(x_m, dtype=float)
    z = np.asarray(z_m, dtype=float)
    return (z * np.cos(angle_rad) + x * np.sin(angle_rad)) / sound_speed_m_s


def rx_delay(
    x_m: np.ndarray,
    z_m: np.ndarray,
    element_x_m: np.ndarray,
    sound_speed_m_s: float,
) -> np.ndarray:
    """Receive time of flight from points (x, z) back to array elements.

    Broadcasting: ``x_m``/``z_m`` of shape ``S`` against ``element_x_m`` of
    shape ``E`` yields ``S x E`` (points as leading axes).
    """
    check_positive("sound_speed_m_s", sound_speed_m_s)
    x = np.asarray(x_m, dtype=float)[..., np.newaxis]
    z = np.asarray(z_m, dtype=float)[..., np.newaxis]
    ex = np.asarray(element_x_m, dtype=float)
    distance = np.sqrt((x - ex) ** 2 + z**2)
    return distance / sound_speed_m_s


def element_directivity(
    x_m: np.ndarray,
    z_m: np.ndarray,
    element_x_m: np.ndarray,
    element_width_m: float,
    wavelength_m: float,
) -> np.ndarray:
    """Soft-baffle directivity of a rectangular element toward (x, z).

    Standard far-field model: ``sinc(w sin(theta) / lambda) * cos(theta)``
    where ``theta`` is the angle between the element normal (+z) and the
    point.  Broadcasting matches :func:`rx_delay` (points x elements).
    """
    check_positive("element_width_m", element_width_m)
    check_positive("wavelength_m", wavelength_m)
    x = np.asarray(x_m, dtype=float)[..., np.newaxis]
    z = np.asarray(z_m, dtype=float)[..., np.newaxis]
    ex = np.asarray(element_x_m, dtype=float)
    distance = np.sqrt((x - ex) ** 2 + z**2)
    # Guard the on-element singularity (distance -> 0).
    distance = np.maximum(distance, 1e-9)
    sin_theta = (x - ex) / distance
    cos_theta = z / distance
    return np.sinc(element_width_m * sin_theta / wavelength_m) * cos_theta


def geometric_spreading(
    distance_m: np.ndarray, reference_m: float = 1e-3
) -> np.ndarray:
    """Amplitude decay 1/sqrt(r) for a cylindrical (2-D) wave.

    Normalized so a scatterer at ``reference_m`` has unit gain; the sqrt
    law (rather than 1/r) matches the effectively 2-D imaging geometry of
    a linear array with an elevation focus.
    """
    check_positive("reference_m", reference_m)
    distance = np.maximum(np.asarray(distance_m, dtype=float), reference_m)
    return np.sqrt(reference_m / distance)
