"""Model registry: build any of the paper's learned beamformers by name.

The registry gives the training pipeline, the evaluation harness and the
benchmarks one entry point:

    model = build_model("tiny_vbf", scale="small")

Model kinds: ``tiny_vbf`` (the paper's contribution), ``tiny_cnn`` [7]
and ``fcnn`` [6].  Scales: ``small`` (32-channel, fast) and ``paper``
(368 x 128 frame with 128 channels).
"""

from __future__ import annotations

import numpy as np

from repro.models import fcnn, tiny_cnn, tiny_vbf
from repro.models.common import complex_to_stacked
from repro.nn import Model
from repro.nn.flops import gops_per_frame
from repro.utils.validation import require_in

MODEL_KINDS = ("tiny_vbf", "tiny_cnn", "fcnn")
SCALES = ("small", "paper")

# Image grids matching repro.ultrasound.datasets presets.
_IMAGE_SHAPES = {"small": (368, 64), "paper": (368, 128)}
_CHANNELS = {"small": 32, "paper": 128}


def image_shape_for(scale: str) -> tuple[int, int]:
    require_in("scale", scale, SCALES)
    return _IMAGE_SHAPES[scale]


def channels_for(scale: str) -> int:
    require_in("scale", scale, SCALES)
    return _CHANNELS[scale]


def model_config(kind: str, scale: str = "small", seed: int = 0):
    """Return the dataclass config for ``kind`` at ``scale``."""
    require_in("kind", kind, MODEL_KINDS)
    require_in("scale", scale, SCALES)
    if kind == "tiny_vbf":
        maker = (
            tiny_vbf.paper_config if scale == "paper"
            else tiny_vbf.small_config
        )
        return maker(seed=seed)
    if kind == "tiny_cnn":
        maker = (
            tiny_cnn.paper_config if scale == "paper"
            else tiny_cnn.small_config
        )
        return maker(seed=seed)
    maker = fcnn.paper_config if scale == "paper" else fcnn.small_config
    return maker(seed=seed)


def build_model(kind: str, scale: str = "small", seed: int = 0) -> Model:
    """Build a freshly initialized model of ``kind`` at ``scale``."""
    config = model_config(kind, scale, seed)
    if kind == "tiny_vbf":
        return tiny_vbf.build_tiny_vbf(config)
    if kind == "tiny_cnn":
        return tiny_cnn.build_tiny_cnn(config)
    return fcnn.build_fcnn(config)


def model_input(kind: str, tofc_complex: np.ndarray) -> np.ndarray:
    """Convert a normalized complex ToFC cube to a model's input layout.

    Tiny-VBF consumes the analytic ToFC pair concatenated along the
    channel axis (I channels then Q channels, ``2*ch`` wide); the
    apodization baselines consume the complex data stacked as
    ``(..., ch, 2)`` so their predicted weights can contract both
    quadratures.  The evaluation grid samples depth at ~lambda/2, so the
    quadrature cannot be recovered from neighbouring pixels — the IQ pair
    must be provided explicitly (see DESIGN.md).

    Accepts ``(nz, nx, ch)`` (a batch axis is added) or
    ``(batch, nz, nx, ch)``.
    """
    require_in("kind", kind, MODEL_KINDS)
    tofc_complex = np.asarray(tofc_complex)
    if tofc_complex.ndim == 3:
        tofc_complex = tofc_complex[np.newaxis]
    if tofc_complex.ndim != 4:
        raise ValueError(
            "expected (nz, nx, ch) or (batch, nz, nx, ch), got "
            f"{tofc_complex.shape}"
        )
    if kind == "tiny_vbf":
        return np.concatenate(
            [tofc_complex.real, tofc_complex.imag], axis=-1
        )
    return complex_to_stacked(tofc_complex)


def model_gops(kind: str, scale: str = "paper") -> float:
    """GOPs/frame of ``kind`` at ``scale`` (paper Table in Section I/IV)."""
    config = model_config(kind, scale)
    image = image_shape_for(scale)
    channels = channels_for(scale)
    model = build_model(kind, scale)
    if kind == "tiny_vbf":
        frame = (*image, 2 * channels)
    else:
        frame = (*image, channels, 2)
    return gops_per_frame(model.root, frame)
