"""Shared building blocks for the learned beamformers.

The two baselines (Tiny-CNN [7], FCNN [6]) share one computational
pattern: a network predicts per-pixel, per-channel *apodization weights*
from the real ToFC data, and the beamformed IQ image is the weighted sum
of the complex ToFC data along the channel axis:

    IQ(z, x) = sum_ch  w(z, x, ch) * tofc(z, x, ch)

:class:`WeightedSumBeamformer` implements that pattern as a layer with a
full backward pass, so both baselines train end-to-end against MVDR IQ
targets exactly like Tiny-VBF.
"""

from __future__ import annotations

import numpy as np

from repro.nn.flops import count_flops, register_flops
from repro.nn.layers.base import Layer, Parameter


def complex_to_stacked(tofc: np.ndarray) -> np.ndarray:
    """Complex array -> real array with a trailing [real, imag] axis."""
    tofc = np.asarray(tofc)
    return np.stack([tofc.real, tofc.imag], axis=-1)


def stacked_to_complex(stacked: np.ndarray) -> np.ndarray:
    """Inverse of :func:`complex_to_stacked` (trailing axis of size 2)."""
    stacked = np.asarray(stacked, dtype=float)
    if stacked.shape[-1] != 2:
        raise ValueError(
            f"expected trailing axis of size 2, got {stacked.shape}"
        )
    return stacked[..., 0] + 1j * stacked[..., 1]


class WeightedSumBeamformer(Layer):
    """Apodization-weight beamforming head.

    Input: ``(batch, nz, nx, n_channels, 2)`` — complex ToFC stacked as
    [real, imag].  The wrapped ``weight_net`` sees only the real part
    (the raw RF channel data, as in [7]) and must output
    ``(batch, nz, nx, n_channels)`` weights.  Output:
    ``(batch, nz, nx, 2)`` beamformed IQ.
    """

    def __init__(self, weight_net: Layer, n_channels: int) -> None:
        if n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {n_channels}")
        self.weight_net = weight_net
        self.n_channels = n_channels
        self._cache: dict[str, np.ndarray] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 5 or x.shape[-2:] != (self.n_channels, 2):
            raise ValueError(
                "expected (batch, nz, nx, "
                f"{self.n_channels}, 2), got {x.shape}"
            )
        rf = x[..., 0]
        weights = self.weight_net.forward(rf, training=training)
        if weights.shape != rf.shape:
            raise ValueError(
                "weight_net must preserve shape; got "
                f"{weights.shape} for input {rf.shape}"
            )
        out_i = np.sum(weights * x[..., 0], axis=-1)
        out_q = np.sum(weights * x[..., 1], axis=-1)
        self._cache = {"x": x, "weights": weights}
        return np.stack([out_i, out_q], axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "WeightedSumBeamformer: backward before forward"
            )
        x = self._cache["x"]
        weights = self._cache["weights"]
        grad_output = np.asarray(grad_output, dtype=float)
        grad_i = grad_output[..., 0][..., np.newaxis]  # (B, nz, nx, 1)
        grad_q = grad_output[..., 1][..., np.newaxis]

        grad_weights = grad_i * x[..., 0] + grad_q * x[..., 1]
        grad_rf_from_net = self.weight_net.backward(grad_weights)

        grad_x = np.empty_like(x)
        grad_x[..., 0] = grad_i * weights + grad_rf_from_net
        grad_x[..., 1] = grad_q * weights
        return grad_x

    def parameters(self) -> list[Parameter]:
        return self.weight_net.parameters()


def _weighted_sum_flops(
    layer: WeightedSumBeamformer, input_shape: tuple[int, ...]
) -> tuple[float, tuple[int, ...]]:
    """FLOP model: weight net + the complex weighted contraction."""
    batch, nz, nx, n_channels, _ = input_shape
    net_flops, _ = count_flops(layer.weight_net, (batch, nz, nx, n_channels))
    # Two real multiply-accumulate contractions (I and Q).
    contraction = 2 * 2.0 * batch * nz * nx * n_channels
    return net_flops + contraction, (batch, nz, nx, 2)


register_flops(WeightedSumBeamformer, _weighted_sum_flops)
