"""FCNN baseline (Luijten et al. [6], "Adaptive Beamforming by Deep
Learning").

A fully connected network performs beamforming pixel-by-pixel: the
per-pixel channel vector is mapped through a small MLP to per-channel
apodization weights, which contract the ToFC data along the channel axis.
It captures only local (per-pixel) structure — the limitation the paper
contrasts with Tiny-VBF's global attention.  Complexity quoted by the
paper: 1.4 GOPs/frame at 368 x 128 with 128 channels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.common import WeightedSumBeamformer
from repro.nn import Dense, Model, ReLU, Sequential
from repro.nn.flops import gops_per_frame
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class FcnnConfig:
    """FCNN hyperparameters.

    Attributes:
        n_channels: ToFC channel count (array elements).
        hidden_units: widths of the hidden dense layers.
        seed: weight initialization seed.
    """

    n_channels: int
    hidden_units: tuple[int, ...] = (64, 64)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.hidden_units:
            raise ValueError("hidden_units must not be empty")
        if any(h < 1 for h in self.hidden_units):
            raise ValueError(
                f"hidden_units must be >= 1, got {self.hidden_units}"
            )


def build_fcnn(config: FcnnConfig) -> Model:
    """Assemble the FCNN.

    Input: ``(batch, nz, nx, n_channels, 2)`` complex ToFC stacked as
    [real, imag].  Output: ``(batch, nz, nx, 2)`` IQ image.
    """
    rng = make_rng(config.seed)
    layers = []
    width = config.n_channels
    for index, hidden in enumerate(config.hidden_units):
        layers.extend(
            [
                Dense(width, hidden, seed=rng, name=f"fcnn/dense{index}"),
                ReLU(),
            ]
        )
        width = hidden
    layers.append(
        Dense(width, config.n_channels, seed=rng, name="fcnn/dense_out")
    )
    weight_net = Sequential(layers, name="fcnn/weight_net")
    head = WeightedSumBeamformer(weight_net, config.n_channels)
    return Model(head, name="fcnn")


def fcnn_gops(config: FcnnConfig, image_shape: tuple[int, int]) -> float:
    """GOPs/frame of the FCNN (paper: 1.4 at 368x128 with 128 channels)."""
    model = build_fcnn(config)
    return gops_per_frame(
        model.root, (*image_shape, config.n_channels, 2)
    )


def paper_config(seed: int = 0) -> FcnnConfig:
    """Paper-scale FCNN (128 channels, ~1.4 GOPs/frame)."""
    return FcnnConfig(n_channels=128, hidden_units=(64,), seed=seed)


def small_config(seed: int = 0) -> FcnnConfig:
    """Reduced config matching the small dataset scale (32 channels)."""
    return FcnnConfig(n_channels=32, hidden_units=(48, 48), seed=seed)
