"""Tiny-CNN baseline (Mathews & Panicker [7]).

A convolutional network receives the ToFC data ``(x, y, ch)`` and
predicts per-pixel, per-channel apodization weights; the beamformed image
is the product of the predicted weights and the ToFC data summed along
the channel axis (paper Section II).  The paper quotes its complexity as
11.7 GOPs/frame at 368 x 128 with 128 channels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.common import WeightedSumBeamformer
from repro.nn import Conv2D, Model, ReLU, Sequential
from repro.nn.flops import gops_per_frame
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class TinyCnnConfig:
    """Tiny-CNN hyperparameters.

    Attributes:
        n_channels: ToFC channel count (array elements).
        hidden_channels: feature maps of the interior conv layers.
        n_hidden_layers: number of interior ``hidden -> hidden`` convs.
        kernel_size: convolution kernel (square, odd).
        seed: weight initialization seed.
    """

    n_channels: int
    hidden_channels: int = 48
    n_hidden_layers: int = 1
    kernel_size: tuple[int, int] = (3, 3)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_channels < 1:
            raise ValueError(
                f"hidden_channels must be >= 1, got {self.hidden_channels}"
            )
        if self.n_hidden_layers < 0:
            raise ValueError(
                f"n_hidden_layers must be >= 0, got {self.n_hidden_layers}"
            )


def build_tiny_cnn(config: TinyCnnConfig) -> Model:
    """Assemble Tiny-CNN.

    Input: ``(batch, nz, nx, n_channels, 2)`` complex ToFC stacked as
    [real, imag] (see :class:`WeightedSumBeamformer`).
    Output: ``(batch, nz, nx, 2)`` IQ image.
    """
    rng = make_rng(config.seed)
    layers = [
        Conv2D(
            config.n_channels,
            config.hidden_channels,
            config.kernel_size,
            seed=rng,
            name="tiny_cnn/conv_in",
        ),
        ReLU(),
    ]
    for index in range(config.n_hidden_layers):
        layers.extend(
            [
                Conv2D(
                    config.hidden_channels,
                    config.hidden_channels,
                    config.kernel_size,
                    seed=rng,
                    name=f"tiny_cnn/conv_hidden{index}",
                ),
                ReLU(),
            ]
        )
    layers.append(
        Conv2D(
            config.hidden_channels,
            config.n_channels,
            config.kernel_size,
            seed=rng,
            name="tiny_cnn/conv_out",
        )
    )
    weight_net = Sequential(layers, name="tiny_cnn/weight_net")
    head = WeightedSumBeamformer(weight_net, config.n_channels)
    return Model(head, name="tiny_cnn")


def tiny_cnn_gops(
    config: TinyCnnConfig, image_shape: tuple[int, int]
) -> float:
    """GOPs/frame of Tiny-CNN (paper: 11.7 at 368x128 with 128 channels)."""
    model = build_tiny_cnn(config)
    return gops_per_frame(
        model.root, (*image_shape, config.n_channels, 2)
    )


def paper_config(seed: int = 0) -> TinyCnnConfig:
    """Paper-scale Tiny-CNN (128 channels, ~11.7 GOPs/frame)."""
    return TinyCnnConfig(
        n_channels=128, hidden_channels=48, n_hidden_layers=1, seed=seed
    )


def small_config(seed: int = 0) -> TinyCnnConfig:
    """Reduced config matching the small dataset scale (32 channels)."""
    return TinyCnnConfig(
        n_channels=32, hidden_channels=16, n_hidden_layers=1, seed=seed
    )
