"""Learned beamformers: Tiny-VBF and the paper's two DL baselines."""

from repro.models.common import (
    WeightedSumBeamformer,
    complex_to_stacked,
    stacked_to_complex,
)
from repro.models.tiny_vbf import TinyVbfConfig, build_tiny_vbf, tiny_vbf_gops
from repro.models.tiny_cnn import TinyCnnConfig, build_tiny_cnn, tiny_cnn_gops
from repro.models.fcnn import FcnnConfig, build_fcnn, fcnn_gops
from repro.models.registry import (
    MODEL_KINDS,
    build_model,
    channels_for,
    image_shape_for,
    model_config,
    model_gops,
    model_input,
)

__all__ = [
    "WeightedSumBeamformer",
    "complex_to_stacked",
    "stacked_to_complex",
    "TinyVbfConfig",
    "build_tiny_vbf",
    "tiny_vbf_gops",
    "TinyCnnConfig",
    "build_tiny_cnn",
    "tiny_cnn_gops",
    "FcnnConfig",
    "build_fcnn",
    "fcnn_gops",
    "MODEL_KINDS",
    "build_model",
    "model_config",
    "model_input",
    "model_gops",
    "channels_for",
    "image_shape_for",
]
