"""Tiny-VBF: the paper's vision-transformer beamformer (Fig. 4).

Architecture (paper Section III-A):

1. **Encoder** — dense layers map the per-pixel channel data to a lower
   dimension; the compressed image is tokenized into non-overlapping
   patches and passed through **two transformer blocks**, each containing
   a normalization layer, a Multi-Head Attention Layer (MHAL), two skip
   connectors and two dense layers.
2. **Decoder** — dense layers reconstruct the IQ-demodulated beamformed
   image (2 output channels, I and Q).

Reproduction note (documented in DESIGN.md and exercised by an ablation
benchmark): the decoder here combines the token (context) features with a
*per-pixel skip path* from the channel-compression output.  A pure
token-bottleneck decoder — ``use_pixel_skip=False`` — cannot carry
per-pixel IQ speckle through ``d_model`` dims per patch, and MSE training
collapses to near-zero output amplitude; the skip path restores per-pixel
information while the transformer supplies the global context the paper
attributes to self-attention.  The paper's own published numbers (CNR and
GCNR *below* DAS while CR improves) are consistent with exactly this
texture-through-bottleneck tension.

Input is the time-of-flight-corrected raw RF channel data normalized to
[-1, 1]; the training target is MVDR-beamformed IQ data (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import (
    Dense,
    LayerNorm,
    LearnedPositionalEmbedding,
    Model,
    MultiHeadAttention,
    Patchify,
    ReLU,
    Residual,
    Sequential,
    Unpatchify,
)
from repro.backend import get_backend
from repro.nn.flops import count_flops, gops_per_frame, register_flops
from repro.nn.layers.base import Layer, Parameter
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class TinyVbfConfig:
    """Tiny-VBF hyperparameters.

    Attributes:
        image_shape: ``(nz, nx)`` pixel grid of the ToFC input.
        n_channels: ToFC channel count (array elements).
        channel_projection: per-pixel compressed width ``c`` (the
            encoder's dimensionality-reduction dense output).
        channel_hidden: optional hidden width of a two-layer per-pixel
            encoder (``None`` = single dense layer).
        patch_size: ``(pz, px)`` token tiling of the compressed image.
        d_model: transformer embedding width.
        n_heads: attention heads; head size is ``d_model / n_heads``.
        n_blocks: transformer blocks (the paper uses 2).
        mlp_ratio: hidden width of the block MLP relative to ``d_model``.
        context_channels: per-pixel context width ``g`` decoded from each
            token.
        head_hidden: hidden width of the per-pixel decoder head.
        use_pixel_skip: feed the per-pixel encoder features to the decoder
            head alongside the token context (see module docstring);
            disable only for the ablation study.
        seed: weight initialization seed.
    """

    image_shape: tuple[int, int]
    n_channels: int
    channel_projection: int = 16
    channel_hidden: int | None = None
    patch_size: tuple[int, int] = (16, 16)
    d_model: int = 128
    n_heads: int = 4
    n_blocks: int = 2
    mlp_ratio: float = 2.0
    context_channels: int = 8
    head_hidden: int = 32
    use_pixel_skip: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        nz, nx = self.image_shape
        pz, px = self.patch_size
        if nz % pz != 0 or nx % px != 0:
            raise ValueError(
                f"image {self.image_shape} not divisible by patch "
                f"{self.patch_size}"
            )
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) not divisible by n_heads "
                f"({self.n_heads})"
            )
        if self.n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {self.n_blocks}")
        if self.mlp_ratio <= 0:
            raise ValueError(f"mlp_ratio must be > 0, got {self.mlp_ratio}")
        if self.context_channels < 1 or self.head_hidden < 1:
            raise ValueError(
                "context_channels and head_hidden must be >= 1"
            )

    @property
    def n_tokens(self) -> int:
        nz, nx = self.image_shape
        pz, px = self.patch_size
        return (nz // pz) * (nx // px)

    @property
    def patch_features(self) -> int:
        pz, px = self.patch_size
        return pz * px * self.channel_projection

    @property
    def mlp_hidden(self) -> int:
        return int(round(self.d_model * self.mlp_ratio))

    @property
    def head_input(self) -> int:
        base = self.context_channels
        if self.use_pixel_skip:
            base += self.channel_projection
        return base

    @property
    def input_channels(self) -> int:
        """Network input width: I and Q of each element's ToFC sample.

        The evaluation grid samples depth at ~half a carrier wavelength,
        so the quadrature component cannot be recovered from neighbouring
        pixels; the analytic (IQ) ToFC pair is therefore fed as
        ``2 * n_channels`` real input channels (see DESIGN.md).
        """
        return 2 * self.n_channels

    @property
    def frame_shape(self) -> tuple[int, int, int]:
        """Input frame shape (nz, nx, 2*n_channels), without batch axis."""
        return (*self.image_shape, self.input_channels)


def _transformer_block(
    config: TinyVbfConfig, rng: np.random.Generator, index: int
) -> Sequential:
    """One paper transformer block: LN -> MHAL -> skip, LN -> MLP -> skip."""
    attention = Sequential(
        [
            LayerNorm(config.d_model, name=f"block{index}/ln1"),
            MultiHeadAttention(
                config.d_model,
                config.n_heads,
                seed=rng,
                name=f"block{index}/mha",
            ),
        ]
    )
    mlp = Sequential(
        [
            LayerNorm(config.d_model, name=f"block{index}/ln2"),
            Dense(
                config.d_model,
                config.mlp_hidden,
                seed=rng,
                name=f"block{index}/mlp1",
            ),
            ReLU(),
            Dense(
                config.mlp_hidden,
                config.d_model,
                seed=rng,
                name=f"block{index}/mlp2",
            ),
        ]
    )
    return Sequential([Residual(attention), Residual(mlp)])


class TinyVbfNetwork(Layer):
    """The assembled Tiny-VBF graph (encoder, ViT context, decoder head).

    Input ``(batch, nz, nx, n_channels)`` -> output ``(batch, nz, nx, 2)``.
    """

    def __init__(self, config: TinyVbfConfig) -> None:
        rng = make_rng(config.seed)
        self.config = config
        pz, px = config.patch_size

        encoder_layers: list[Layer] = []
        width = config.input_channels
        if config.channel_hidden is not None:
            encoder_layers.extend(
                [
                    Dense(
                        width,
                        config.channel_hidden,
                        seed=rng,
                        name="encoder/channel_dense0",
                    ),
                    ReLU(),
                ]
            )
            width = config.channel_hidden
        encoder_layers.extend(
            [
                Dense(
                    width,
                    config.channel_projection,
                    seed=rng,
                    name="encoder/channel_dense1",
                ),
                ReLU(),
            ]
        )
        self.pixel_encoder = Sequential(
            encoder_layers, name="pixel_encoder"
        )

        context_layers: list[Layer] = [
            Patchify(config.patch_size),
            Dense(
                config.patch_features,
                config.d_model,
                seed=rng,
                name="encoder/patch_embed",
            ),
            LearnedPositionalEmbedding(
                config.n_tokens, config.d_model, seed=rng
            ),
        ]
        for index in range(config.n_blocks):
            context_layers.append(_transformer_block(config, rng, index))
        context_layers.extend(
            [
                LayerNorm(config.d_model, name="encoder/final_ln"),
                Dense(
                    config.d_model,
                    pz * px * config.context_channels,
                    seed=rng,
                    name="decoder/token_dense",
                ),
                Unpatchify(
                    config.patch_size,
                    config.image_shape,
                    channels=config.context_channels,
                ),
            ]
        )
        self.context = Sequential(context_layers, name="context")

        self.head = Sequential(
            [
                Dense(
                    config.head_input,
                    config.head_hidden,
                    seed=rng,
                    name="decoder/head1",
                ),
                ReLU(),
                Dense(
                    config.head_hidden, 2, seed=rng, name="decoder/head2"
                ),
            ],
            name="head",
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = get_backend().asarray(x)
        expected = self.config.frame_shape
        if x.ndim != 4 or x.shape[1:] != expected:
            raise ValueError(
                f"tiny_vbf: expected (batch, {expected[0]}, {expected[1]}, "
                f"{expected[2]}), got {x.shape}"
            )
        pixel = self.pixel_encoder.forward(x, training=training)
        context = self.context.forward(pixel, training=training)
        if self.config.use_pixel_skip:
            combined = np.concatenate([pixel, context], axis=-1)
        else:
            combined = context
        return self.head.forward(combined, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_combined = self.head.backward(grad_output)
        c = self.config.channel_projection
        if self.config.use_pixel_skip:
            grad_pixel_direct = grad_combined[..., :c]
            grad_context = grad_combined[..., c:]
        else:
            grad_pixel_direct = 0.0
            grad_context = grad_combined
        grad_pixel = self.context.backward(grad_context) + grad_pixel_direct
        return self.pixel_encoder.backward(grad_pixel)

    def parameters(self) -> list[Parameter]:
        return (
            self.pixel_encoder.parameters()
            + self.context.parameters()
            + self.head.parameters()
        )


def _tiny_vbf_flops(
    layer: TinyVbfNetwork, input_shape: tuple[int, ...]
) -> tuple[float, tuple[int, ...]]:
    batch = input_shape[0]
    config = layer.config
    pixel_flops, pixel_shape = count_flops(layer.pixel_encoder, input_shape)
    context_flops, _ = count_flops(layer.context, pixel_shape)
    head_flops, head_shape = count_flops(
        layer.head, (batch, *config.image_shape, config.head_input)
    )
    return pixel_flops + context_flops + head_flops, head_shape


register_flops(TinyVbfNetwork, _tiny_vbf_flops)


def build_tiny_vbf(config: TinyVbfConfig) -> Model:
    """Assemble the Tiny-VBF model for ``config``.

    Input: ``(batch, nz, nx, 2*n_channels)`` analytic ToFC data
    (I channels then Q channels) in [-1, 1].
    Output: ``(batch, nz, nx, 2)`` IQ image.
    """
    return Model(TinyVbfNetwork(config), name="tiny_vbf")


def tiny_vbf_gops(config: TinyVbfConfig) -> float:
    """GOPs/frame of Tiny-VBF at this config (paper: 0.34 at 368x128)."""
    model = build_tiny_vbf(config)
    return gops_per_frame(model.root, config.frame_shape)


def paper_config(seed: int = 0) -> TinyVbfConfig:
    """Paper-scale Tiny-VBF: 368 x 128 frame, 128 channels.

    Tuned to land in the paper's complexity envelope (~0.34 GOPs/frame,
    ~1.5 M weights); the measured values are asserted in the tests and
    recorded in EXPERIMENTS.md.
    """
    return TinyVbfConfig(
        image_shape=(368, 128),
        n_channels=128,
        channel_projection=8,
        channel_hidden=None,
        patch_size=(16, 16),
        d_model=128,
        n_heads=4,
        n_blocks=2,
        mlp_ratio=2.0,
        context_channels=8,
        head_hidden=32,
        seed=seed,
    )


def small_config(seed: int = 0) -> TinyVbfConfig:
    """Reduced config matching the small dataset scale (368 x 64 x 32).

    Uses a finer (8, 8) patch than the paper-scale config: on the small
    grid each token then covers a comparable physical area and decoder
    reconstruction fidelity (point targets, cyst edges) stays high.
    """
    return TinyVbfConfig(
        image_shape=(368, 64),
        n_channels=32,
        channel_projection=32,
        channel_hidden=64,
        patch_size=(8, 8),
        d_model=64,
        n_heads=4,
        n_blocks=2,
        mlp_ratio=2.0,
        context_channels=8,
        head_hidden=48,
        seed=seed,
    )
