"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_shape(
    name: str,
    array: np.ndarray,
    expected: Sequence[int | None],
) -> np.ndarray:
    """Validate ``array.shape`` against ``expected`` (``None`` = any size).

    Returns the array unchanged so calls can be inlined in assignments.
    """
    array = np.asarray(array)
    if array.ndim != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions, "
            f"got shape {array.shape}"
        )
    for axis, want in enumerate(expected):
        if want is not None and array.shape[axis] != want:
            raise ValueError(
                f"{name} has shape {array.shape}, expected axis {axis} "
                f"to be {want}"
            )
    return array


def require_in(name: str, value: object, allowed: Iterable[object]) -> object:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    allowed = list(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
    return value
