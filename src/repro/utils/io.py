"""Lightweight I/O: npz bundles, CSV series and PGM images.

Matplotlib/PIL are not available offline, so figures are exported as
portable graymaps (PGM, viewable by any image tool) and data series as CSV.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np


def save_npz(path: str | Path, arrays: Mapping[str, np.ndarray]) -> Path:
    """Save a mapping of named arrays to a compressed ``.npz`` bundle."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **dict(arrays))
    return path


def load_npz(path: str | Path) -> dict[str, np.ndarray]:
    """Load an ``.npz`` bundle back into a plain dict of arrays."""
    with np.load(Path(path)) as bundle:
        return {name: bundle[name] for name in bundle.files}


def write_csv(
    path: str | Path,
    columns: Mapping[str, Sequence[float]],
) -> Path:
    """Write named, equal-length columns to a CSV file with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = list(columns)
    lengths = {name: len(columns[name]) for name in names}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"column lengths differ: {lengths}")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in zip(*(columns[name] for name in names)):
            writer.writerow([f"{value:.9g}" for value in row])
    return path


def write_pgm(
    path: str | Path,
    image_db: np.ndarray,
    dynamic_range_db: float = 60.0,
) -> Path:
    """Write a log-compressed B-mode image as an 8-bit binary PGM.

    ``image_db`` is a dB image with 0 dB at its brightest pixel; values
    below ``-dynamic_range_db`` are clipped to black, 0 dB maps to white.
    """
    if image_db.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image_db.shape}")
    if dynamic_range_db <= 0:
        raise ValueError("dynamic_range_db must be positive")
    clipped = np.clip(image_db, -dynamic_range_db, 0.0)
    pixels = np.round((clipped + dynamic_range_db) / dynamic_range_db * 255.0)
    pixels = pixels.astype(np.uint8)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = f"P5\n{pixels.shape[1]} {pixels.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(pixels.tobytes())
    return path
