"""Deterministic random number generation.

Every stochastic component in the library (speckle phantoms, measurement
noise, weight initialization, data shuffling) takes an explicit seed or
:class:`numpy.random.Generator`.  This module centralizes the conversion so
that `make_rng(seed)` is the single way randomness enters the system, which
keeps experiments bit-reproducible.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    * ``None`` -> a fixed default seed (0), *not* entropy from the OS: the
      library favours reproducibility over surprise randomness.
    * ``int`` -> ``default_rng(seed)``.
    * ``Generator`` -> returned unchanged (caller manages its state).
    """
    if seed is None:
        return np.random.default_rng(0)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when a component needs its own stream (e.g. noise injection) that
    must not perturb the parent stream's sequence.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
