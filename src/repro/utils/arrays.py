"""Array helpers shared across the library.

Conventions used everywhere in :mod:`repro`:

* RF channel data is ``(n_samples, n_elements)`` float64.
* Time-of-flight corrected (ToFC) cubes are ``(nz, nx, n_elements)``.
* Beamformed IQ images are complex ``(nz, nx)`` or stacked real
  ``(nz, nx, 2)`` with ``[..., 0] = I`` and ``[..., 1] = Q``.
* B-mode images are log-compressed dB arrays ``(nz, nx)`` with 0 dB at the
  brightest pixel.
"""

from __future__ import annotations

import numpy as np

_DB_FLOOR_AMPLITUDE = 1e-12


def db(amplitude: np.ndarray | float) -> np.ndarray | float:
    """Convert a linear *amplitude* to decibels (``20 log10``).

    Values are floored at 1e-12 before taking the logarithm so that zero
    amplitudes map to a large negative number instead of ``-inf``.
    """
    amp = np.maximum(np.abs(amplitude), _DB_FLOOR_AMPLITUDE)
    return 20.0 * np.log10(amp)


def from_db(level_db: np.ndarray | float) -> np.ndarray | float:
    """Convert a decibel amplitude level back to linear amplitude."""
    return 10.0 ** (np.asarray(level_db, dtype=float) / 20.0)


def normalize_unit_max(values: np.ndarray) -> np.ndarray:
    """Scale ``values`` so the maximum absolute value becomes 1.

    An all-zero input is returned unchanged (there is nothing to scale).
    """
    values = np.asarray(values, dtype=float)
    peak = np.max(np.abs(values))
    if peak == 0.0:
        return values.copy()
    return values / peak


def normalize_minus1_1(values: np.ndarray) -> np.ndarray:
    """Normalize to the symmetric interval [-1, 1] used by Tiny-VBF.

    The paper normalizes both the ToFC input and the IQ target to [-1, 1]
    (Section III-A).  We implement this as division by the maximum absolute
    value, which preserves the sign structure and the zero level of RF / IQ
    data (an affine min-max map would shift the DC level and corrupt the IQ
    phase).
    """
    return normalize_unit_max(values)


def hann_window(length: int) -> np.ndarray:
    """Symmetric Hann window of ``length`` samples.

    Defined explicitly instead of using :func:`numpy.hanning` so the window
    is symmetric and strictly positive in the interior for any length >= 1,
    which the apodization code relies on.
    """
    if length < 1:
        raise ValueError(f"window length must be >= 1, got {length}")
    if length == 1:
        return np.ones(1)
    n = np.arange(length)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * n / (length - 1))
