"""Shared utilities: array helpers, I/O, deterministic RNG and validation.

These helpers are deliberately small and dependency-free so that every other
subpackage (ultrasound simulation, beamforming, the NN framework, the FPGA
model) can rely on them without import cycles.
"""

from repro.utils.arrays import (
    db,
    from_db,
    normalize_minus1_1,
    normalize_unit_max,
    hann_window,
)
from repro.utils.io import load_npz, save_npz, write_csv, write_pgm
from repro.utils.rng import make_rng
from repro.utils.validation import (
    check_positive,
    check_shape,
    require_in,
)

__all__ = [
    "db",
    "from_db",
    "normalize_minus1_1",
    "normalize_unit_max",
    "hann_window",
    "load_npz",
    "save_npz",
    "write_csv",
    "write_pgm",
    "make_rng",
    "check_positive",
    "check_shape",
    "require_in",
]
