"""Ground-truth generation: MVDR targets for supervised beamforming.

For every training frame we compute

* the analytic (complex) ToFC cube, normalized to [-1, 1] by its peak
  magnitude — the model input domain (paper Section III-A), and
* the MVDR-beamformed IQ image, normalized the same way — the target.

All models regress the *carrier-domain* analytic MVDR image: the learned
map is then an adaptive per-pixel channel combination (the beamforming
task), with no depth-dependent carrier rotation folded in.  A
baseband-demodulated variant of the target is also produced for analysis;
the two have identical envelopes, and every metric in the paper is
envelope-based, so the choice is invisible to the evaluation (see
DESIGN.md for the full discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.beamform.envelope import baseband_demodulate
from repro.beamform.mvdr import MvdrConfig, mvdr_beamform
from repro.api.base import dataset_tofc
from repro.models.common import complex_to_stacked


@dataclass(frozen=True)
class FramePair:
    """One training sample: normalized input cube + normalized targets.

    Attributes:
        tofc: ``(nz, nx, ch)`` complex analytic ToFC, peak-normalized.
        target_carrier: ``(nz, nx)`` complex MVDR IQ at the RF carrier.
        target_baseband: ``(nz, nx)`` complex MVDR IQ at baseband.
    """

    tofc: np.ndarray
    target_carrier: np.ndarray
    target_baseband: np.ndarray


def prepare_frame(
    dataset, mvdr_config: MvdrConfig | None = None
) -> FramePair:
    """Compute the (input, target) pair for one single-angle dataset."""
    # Plan-cached and t_start_s-aware: training frames see exactly the
    # input geometry the repro.api inference adapters use.
    tofc = dataset_tofc(dataset)
    peak_in = np.abs(tofc).max()
    if peak_in == 0.0:
        raise ValueError(f"dataset {dataset.name} has silent ToFC data")
    tofc_normalized = tofc / peak_in

    mvdr_iq = mvdr_beamform(tofc, mvdr_config)
    peak_out = np.abs(mvdr_iq).max()
    if peak_out == 0.0:
        raise ValueError(f"MVDR output is silent for {dataset.name}")
    carrier = mvdr_iq / peak_out
    baseband = baseband_demodulate(
        carrier,
        dataset.grid,
        dataset.probe.center_frequency_hz,
        dataset.sound_speed_m_s,
    )
    return FramePair(
        tofc=tofc_normalized,
        target_carrier=carrier,
        target_baseband=baseband,
    )


def model_arrays(
    kind: str, pair: FramePair
) -> tuple[np.ndarray, np.ndarray]:
    """(input, target) arrays for ``kind`` from one :class:`FramePair`.

    Shapes: Tiny-VBF ``(nz, nx, 2*ch)`` analytic pair -> ``(nz, nx, 2)``
    IQ; baselines ``(nz, nx, ch, 2)`` stacked complex -> ``(nz, nx, 2)``
    IQ.
    """
    if kind == "tiny_vbf":
        x = np.concatenate([pair.tofc.real, pair.tofc.imag], axis=-1)
    elif kind in ("tiny_cnn", "fcnn"):
        x = complex_to_stacked(pair.tofc)
    else:
        raise ValueError(f"unknown model kind {kind!r}")
    y = complex_to_stacked(pair.target_carrier)
    return x, y
