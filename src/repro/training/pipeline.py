"""Model training orchestration."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.beamform.mvdr import MvdrConfig
from repro.models.registry import build_model
from repro.nn import Adam, CyclicPolynomialDecay, History, Model, Trainer
from repro.training.groundtruth import FramePair, model_arrays, prepare_frame
from repro.ultrasound.datasets import training_frames
from repro.utils.validation import require_in

# Per-kind training budgets (epochs), balanced for NumPy throughput: the
# conv-heavy Tiny-CNN costs far more per step, so it gets fewer epochs.
DEFAULT_EPOCHS = {"tiny_vbf": 300, "tiny_cnn": 60, "fcnn": 200}


@dataclass
class TrainingResult:
    """A trained model plus its provenance."""

    kind: str
    scale: str
    model: Model
    history: History
    n_frames: int
    epochs: int
    seed: int


def assemble_arrays(
    kind: str, pairs: list[FramePair]
) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-frame arrays into training batches for ``kind``."""
    if not pairs:
        raise ValueError("no training pairs supplied")
    xs, ys = zip(*(model_arrays(kind, pair) for pair in pairs))
    return np.stack(xs), np.stack(ys)


def train_beamformer(
    kind: str,
    scale: str = "small",
    n_frames: int = 16,
    epochs: int | None = None,
    batch_size: int = 2,
    seed: int = 0,
    initial_lr: float = 5e-4,
    final_lr: float = 1e-6,
    mvdr_config: MvdrConfig | None = None,
    frames=None,
    verbose_every: int = 0,
) -> TrainingResult:
    """Train one learned beamformer against MVDR ground truth.

    Follows the paper's recipe: Adam, MSE on IQ images before log
    compression, cyclic polynomial LR decay (initial 1e-4 in the paper;
    the slightly higher default here compensates for the much shorter
    NumPy-budget training runs — see DESIGN.md).

    Args:
        kind: ``tiny_vbf`` / ``tiny_cnn`` / ``fcnn``.
        scale: dataset/model scale (``small`` or ``paper``).
        n_frames: training corpus size when ``frames`` is not given.
        epochs: training epochs; ``None`` selects the per-kind default.
        batch_size: mini-batch of frames (the paper uses 10 samples).
        seed: controls corpus generation, init and shuffling.
        initial_lr/final_lr: cyclic polynomial schedule endpoints.
        mvdr_config: ground-truth MVDR parameters.
        frames: pre-simulated datasets (overrides ``n_frames``).
        verbose_every: progress print period in epochs (0 = quiet).
    """
    require_in("kind", kind, tuple(DEFAULT_EPOCHS))
    if epochs is None:
        epochs = DEFAULT_EPOCHS[kind]
    if frames is None:
        frames = training_frames(n_frames, scale=scale, seed=seed)
    pairs = [prepare_frame(frame, mvdr_config) for frame in frames]
    x, y = assemble_arrays(kind, pairs)

    model = build_model(kind, scale, seed=seed)
    steps_per_epoch = int(np.ceil(x.shape[0] / batch_size))
    schedule = CyclicPolynomialDecay(
        initial=initial_lr,
        final=final_lr,
        decay_steps=max(1, epochs * steps_per_epoch),
    )
    trainer = Trainer(model, Adam(model.parameters(), schedule), seed=seed)
    history = trainer.fit(
        x,
        y,
        epochs=epochs,
        batch_size=batch_size,
        verbose_every=verbose_every,
    )
    return TrainingResult(
        kind=kind,
        scale=scale,
        model=model,
        history=history,
        n_frames=len(frames),
        epochs=epochs,
        seed=seed,
    )
