"""Weight cache: train once, reuse everywhere.

Trained weights live in ``artifacts/weights/`` at the repository root
(override with the ``REPRO_CACHE_DIR`` environment variable).  The cache
key is ``{kind}_{scale}_s{seed}``; tests, benchmarks and examples all go
through :func:`get_trained_model` so a single deterministic training run
backs the whole evaluation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.models.registry import build_model
from repro.nn import Model
from repro.training.pipeline import train_beamformer


def cache_dir() -> Path:
    """Resolve the artifacts directory (env override, repo default)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    # src/repro/training/cache.py -> repo root is three parents above
    # the package directory.
    return Path(__file__).resolve().parents[3] / "artifacts"


def trained_weights_path(
    kind: str, scale: str = "small", seed: int = 0
) -> Path:
    return cache_dir() / "weights" / f"{kind}_{scale}_s{seed}.npz"


def get_trained_model(
    kind: str,
    scale: str = "small",
    seed: int = 0,
    retrain: bool = False,
    verbose_every: int = 0,
    **train_kwargs,
) -> Model:
    """Return a trained model, training and caching it when missing.

    ``train_kwargs`` are forwarded to
    :func:`repro.training.pipeline.train_beamformer` on a cache miss.
    """
    path = trained_weights_path(kind, scale, seed)
    model = build_model(kind, scale, seed=seed)
    if path.exists() and not retrain:
        model.load_weights(path)
        return model

    result = train_beamformer(
        kind,
        scale=scale,
        seed=seed,
        verbose_every=verbose_every,
        **train_kwargs,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    result.model.save_weights(path)
    metadata = {
        "kind": kind,
        "scale": scale,
        "seed": seed,
        "epochs": result.epochs,
        "n_frames": result.n_frames,
        "final_loss": result.history.final_loss,
        "loss_curve": result.history.loss,
    }
    path.with_suffix(".json").write_text(json.dumps(metadata, indent=2))
    return result.model
