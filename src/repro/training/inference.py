"""Inference helpers: run a trained beamformer on a dataset."""

from __future__ import annotations

import numpy as np

from repro.beamform.tof import analytic_tofc
from repro.models.common import stacked_to_complex
from repro.models.registry import model_input
from repro.nn import Model


def predict_iq(
    model: Model,
    kind: str,
    dataset,
) -> np.ndarray:
    """Beamform ``dataset`` with a trained model.

    Computes the analytic ToFC cube, normalizes it to [-1, 1] (the
    training input convention), runs the model and returns the complex
    ``(nz, nx)`` IQ image.  Tiny-VBF outputs baseband IQ and the
    baselines carrier IQ; both have the envelope the metrics consume.
    """
    tofc = analytic_tofc(
        dataset.rf,
        dataset.probe,
        dataset.grid,
        angle_rad=dataset.angle_rad,
        sound_speed_m_s=dataset.sound_speed_m_s,
    )
    peak = np.abs(tofc).max()
    if peak == 0.0:
        raise ValueError(f"dataset {dataset.name} has silent ToFC data")
    x = model_input(kind, tofc / peak)
    iq_stacked = model.forward(x, training=False)[0]
    return stacked_to_complex(iq_stacked)
