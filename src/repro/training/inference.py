"""Inference helpers: run a trained beamformer on a dataset.

.. deprecated::
    :func:`predict_iq` is a compatibility shim over
    :class:`repro.api.LearnedBeamformer`; new code should use
    ``create_beamformer(kind, model=model).beamform(dataset)``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.nn import Model


def predict_iq(
    model: Model,
    kind: str,
    dataset,
) -> np.ndarray:
    """Beamform ``dataset`` with a trained model.

    Computes the analytic ToFC cube (through the cached
    :class:`~repro.beamform.tof.TofPlan`), normalizes it to [-1, 1] (the
    training input convention), runs the model and returns the complex
    ``(nz, nx)`` IQ image.  Tiny-VBF outputs baseband IQ and the
    baselines carrier IQ; both have the envelope the metrics consume.

    .. deprecated::
        Use ``repro.api.LearnedBeamformer(kind, model=model)`` instead.
    """
    warnings.warn(
        "predict_iq is deprecated; use repro.api.create_beamformer("
        "kind, model=model).beamform(dataset)",
        DeprecationWarning,
        stacklevel=2,
    )
    # Imported lazily: repro.api loads trained models through
    # repro.training, so a module-level import would be circular.
    from repro.api import LearnedBeamformer

    return LearnedBeamformer(kind, model=model).beamform(dataset)
