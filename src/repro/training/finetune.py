"""Multi-angle (CUBDL-style) fine-tuning.

The paper first trains on single-angle acquisitions and then fine-tunes
on multi-angle CUBDL data with 10 transmissions (Section III-B).  The
equivalent here: simulate a 10-angle stack, build a *compounded* DAS
reference (higher quality than any single angle), and fine-tune the
model to map the single zero-angle ToFC input to that reference.
"""

from __future__ import annotations

import numpy as np

from repro.beamform.compounding import compound_das
from repro.models.common import complex_to_stacked
from repro.nn import Adam, ConstantSchedule, Model, Trainer
from repro.training.groundtruth import model_arrays
from repro.ultrasound.datasets import MultiAngleDataset, multi_angle_set


def compounded_target(bundle: MultiAngleDataset) -> np.ndarray:
    """Normalized compounded IQ reference for a multi-angle bundle."""
    compounded = compound_das(
        bundle.rf_stack,
        bundle.angles_rad,
        bundle.base.probe,
        bundle.base.grid,
        sound_speed_m_s=bundle.base.sound_speed_m_s,
        t_start_s=getattr(bundle.base, "t_start_s", 0.0),
    )
    peak = np.abs(compounded).max()
    if peak == 0.0:
        raise ValueError("compounded reference is silent")
    return compounded / peak


def finetune_on_multi_angle(
    model: Model,
    kind: str,
    bundles: list[MultiAngleDataset] | None = None,
    n_bundles: int = 2,
    n_angles: int = 10,
    epochs: int = 20,
    learning_rate: float = 5e-5,
    scale: str = "small",
    seed: int = 0,
):
    """Fine-tune a trained model on compounded multi-angle references.

    Args:
        model: a trained model (modified in place, as fine-tuning does).
        kind: model kind (input layout conversion).
        bundles: pre-simulated multi-angle bundles; generated if omitted.
        n_bundles / n_angles: corpus size when generating.
        epochs: fine-tuning epochs (short: the paper's second stage).
        learning_rate: small constant rate (fine-tuning regime).
        scale: dataset scale.
        seed: corpus/shuffling seed.

    Returns:
        The training :class:`~repro.nn.trainer.History`.
    """
    if bundles is None:
        bundles = [
            multi_angle_set(
                n_angles=n_angles, scale=scale, seed=seed + 31 * index
            )
            for index in range(n_bundles)
        ]
    if not bundles:
        raise ValueError("no fine-tuning bundles supplied")

    from repro.api.base import dataset_tofc
    from repro.training.groundtruth import FramePair

    pairs = []
    for bundle in bundles:
        base = bundle.base
        tofc = dataset_tofc(base)
        peak = np.abs(tofc).max()
        target = compounded_target(bundle)
        pairs.append(
            FramePair(
                tofc=tofc / peak,
                target_carrier=target,
                target_baseband=target,
            )
        )
    xs, ys = zip(*(model_arrays(kind, pair) for pair in pairs))
    x, y = np.stack(xs), np.stack(ys)

    trainer = Trainer(
        model,
        Adam(model.parameters(), ConstantSchedule(learning_rate)),
        seed=seed,
    )
    return trainer.fit(x, y, epochs=epochs, batch_size=min(2, len(pairs)))
