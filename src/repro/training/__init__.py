"""Training pipeline: MVDR-supervised learning with a weight cache.

Mirrors the paper's recipe (Section III): single-angle ToFC channel data
in, MVDR-beamformed IQ out, MSE loss before log compression, Adam with a
cyclic polynomial learning-rate decay, batch size 10 (scaled down to the
corpus size here).  Trained weights are cached under ``artifacts/`` so
tests, benches and examples reuse one deterministic training run.
"""

from repro.training.groundtruth import FramePair, prepare_frame
from repro.training.pipeline import (
    TrainingResult,
    assemble_arrays,
    train_beamformer,
)
from repro.training.cache import (
    cache_dir,
    get_trained_model,
    trained_weights_path,
)
from repro.training.inference import predict_iq

__all__ = [
    "FramePair",
    "prepare_frame",
    "TrainingResult",
    "assemble_arrays",
    "train_beamformer",
    "cache_dir",
    "get_trained_model",
    "trained_weights_path",
    "predict_iq",
]
