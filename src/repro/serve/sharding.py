"""Process-sharded serving: N worker processes behind one engine.

:class:`~repro.serve.engine.ServeEngine` overlaps acquisition and
compute, but its workers are *threads*: every byte of pure-Python work —
micro-batching, plan lookups, qexec's frame-serial quantized path,
telemetry — serializes on the GIL, so a single process tops out at
roughly one core of non-BLAS throughput.  :class:`ShardedServeEngine`
breaks that ceiling by sharding micro-batches across real processes:

::

    source ─▶ ingest queue ─▶ batcher ─▶ per-worker task queues ─▶ N processes
     (caller)  (backpressure)  (thread)      (round-robin/geometry)     │
                                                                        ▼
    sink ◀── collector thread ◀── result queue ◀── shared-memory image ring

* **Transport** — raw RF frames travel parent→worker through a
  shared-memory ring (:mod:`repro.serve.shm`); beamformed images travel
  back through per-worker shared-memory rings.  Only tiny slot
  descriptors ride the queues.  ``transport="pickle"`` degrades every
  payload to queue pickling (reference path, and the fallback for
  object dtypes / oversized frames).
* **Spawn safety** — workers are started with the ``spawn`` method (no
  inherited locks or forked BLAS state), receive the beamformer by
  pickle (backends reduce to registry names, see
  :meth:`repro.backend.ArrayBackend.__reduce__`) and are initialized
  with the parent's process-default backend
  (:func:`repro.backend.default_backend_name`) before touching any
  kernel.  Each worker owns its own ToF-plan cache; the per-shard
  hit-rate is folded back into the run telemetry at shutdown.
* **Parity** — a worker rebuilds each frame from a byte-exact RF copy
  plus the batch's geometry template and runs the *same*
  ``beamform_batch`` as the threaded engine, so sharded output is
  bitwise identical to offline ``beamform`` (asserted across backends
  by ``tests/serve/test_sharding.py``).
* **Failure model** — a worker that *raises* reports the batch as
  failed and keeps serving (the engine re-raises the first failure
  after the run, like the threaded engine).  A worker that *dies* is
  detected by liveness polling: by default the run aborts with
  :class:`WorkerCrashed`; with ``restart_workers=True`` the engine
  respawns the shard, requeues its in-flight batches (their frames are
  still parked in the input ring — slots are only freed once a batch
  has an outcome) and keeps going, counting the restart in telemetry.
  Duplicate results from requeue races are detected by batch id and
  discarded.

The engine is a context manager; workers spawn once (``start()``) and
serve any number of runs before ``close()``.  See DESIGN.md §5 for the
full protocol walk-through and the parity argument.
"""

from __future__ import annotations

import logging
import os
import pickle
import queue as _queue
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Iterable

import numpy as np

from repro.api.base import Beamformer
from repro.backend import default_backend_name
from repro.obs import Observability, pack_context
from repro.serve.clock import Clock, MonotonicClock
from repro.serve.engine import ServeReport, Sink, pump_source, run_batcher
from repro.serve.queues import BACKPRESSURE_POLICIES, BoundedQueue
from repro.serve.scheduler import (
    SHARD_POLICIES,
    MicroBatch,
    MicroBatcher,
    ShardRouter,
)
from repro.serve.shm import (
    TRANSPORTS,
    FrameTransport,
    QueueFreeList,
    SlotHandle,
    TransportClosed,
    close_attachments,
    unpack,
)
from repro.serve.telemetry import ServeTelemetry

logger = logging.getLogger("repro.serve")

#: Bound on batches queued per worker (beyond the one executing).
#: Small on purpose: backpressure should build in the ingest queue and
#: the input ring, not in opaque OS pipe buffers.
TASK_QUEUE_DEPTH = 4

#: Collector poll period; also the worker-liveness detection latency.
_POLL_S = 0.1

#: How long ``start()`` waits for every worker's ready handshake.
_READY_TIMEOUT_S = 120.0


class WorkerCrashed(RuntimeError):
    """A worker process died without reporting a result."""


@dataclass(frozen=True)
class FrameStub:
    """The beamforming-relevant slice of a dataset.

    What a worker needs to reproduce ``beamform(dataset)`` exactly:
    the acquisition geometry (every field of
    :func:`repro.api.base.dataset_plan_key`) plus the RF samples and a
    name for error messages.  Metadata that beamforming never reads
    (phantom scatterers, medium, spec) stays in the parent — the sink
    callback still receives the original dataset object.

    One stub with ``rf=None`` doubles as a batch's geometry *template*
    (~4 KB pickled); workers graft each frame's shared-memory RF onto
    it with :func:`dataclasses.replace`.
    """

    name: str
    probe: object
    grid: object
    angle_rad: float
    sound_speed_m_s: float
    t_start_s: float
    rf: np.ndarray | None = None


def _template_of(dataset) -> FrameStub:
    return FrameStub(
        name=getattr(dataset, "name", "<unnamed>"),
        probe=dataset.probe,
        grid=dataset.grid,
        angle_rad=float(dataset.angle_rad),
        sound_speed_m_s=float(dataset.sound_speed_m_s),
        t_start_s=float(getattr(dataset, "t_start_s", 0.0)),
    )


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------


def _worker_main(
    worker_id: int,
    generation: int,
    beamformer_blob: bytes,
    backend_name: str,
    transport: str,
    output_slots: int,
    task_queue,
    result_queue,
    output_free_queue,
    profile_kernels: bool = False,
) -> None:
    """Entry point of one shard (runs in a spawned child process).

    Protocol (task queue in, result queue out):

    * ``("batch", batch_id, template, [(seq, payload, ctx), ...])`` →
      ``("done", worker_id, generation, batch_id,
      [(seq, payload), ...], execute_s, span_blob, metrics_state)`` or
      ``("error", worker_id, generation, batch_id, traceback_str)``.
      ``ctx`` is the frame's 17-byte trace context
      (:func:`repro.obs.pack_context`) or ``None`` when unsampled — a
      fixed-size struct, never a pickled span object.  When any frame
      of the batch is sampled, ``span_blob`` is ``(worker_pid,
      ((name, start_offset_s, end_offset_s), ...))`` with offsets
      relative to the batch's start on the *worker's* clock (worker
      and parent monotonic clocks share no epoch; the collector
      rebases).  ``execute_s`` stays the whole-batch wall duration.
      ``metrics_state`` is the worker's kernel-profiling registry
      delta since its previous report (``None`` unless
      ``profile_kernels``) — shipped per batch so a live ``metrics``
      scrape on the parent sees worker kernel timings mid-run.
    * ``("end_run",)`` → ``("run_done", worker_id, plan_cache_delta,
      metrics_state)`` where the delta covers plan-cache traffic since
      the previous ``end_run`` (so multi-run engines don't
      double-count) and ``metrics_state`` is the tail of the worker's
      kernel-profiling delta (``None`` unless ``profile_kernels``).
    * ``("stop",)`` → ``("stopped", worker_id)`` and exit.

    ``generation`` counts respawns of this shard slot; the collector
    uses it to discard messages from a dead incarnation (whose output
    slots were already reclaimed wholesale — see ``_check_liveness``).
    Any failure outside batch execution (unpickling the beamformer,
    transport setup) is reported as ``("fatal", worker_id, tb)``.
    """
    import multiprocessing

    try:
        from repro.backend import set_backend
        from repro.beamform.tof import tof_plan_cache_stats

        set_backend(backend_name)
        profile_registry = None
        if profile_kernels:
            # Wrap *before* unpickling: the beamformer's backend
            # resolves by registry name at load time, so it must find
            # the timing wrapper already registered under that name.
            from repro.obs.metrics import MetricsRegistry
            from repro.obs.profile import enable_kernel_profiling

            profile_registry = MetricsRegistry()
            enable_kernel_profiling(profile_registry)
        beamformer: Beamformer = pickle.loads(beamformer_blob)
        writer = FrameTransport(
            transport,
            output_slots,
            make_free_list=lambda: QueueFreeList(output_free_queue),
        )
        attachments: dict = {}
        parent = multiprocessing.parent_process()
        cache_baseline = tof_plan_cache_stats()
        pid = os.getpid()
    except BaseException:
        result_queue.put(("fatal", worker_id, traceback.format_exc()))
        return

    result_queue.put(("ready", worker_id))
    while True:
        try:
            message = task_queue.get(timeout=5.0)
        except _queue.Empty:
            if parent is not None and not parent.is_alive():
                break  # orphaned: the engine is gone, so are we
            continue
        kind = message[0]
        if kind == "stop":
            result_queue.put(("stopped", worker_id))
            break
        if kind == "end_run":
            cache_now = tof_plan_cache_stats()
            delta = {
                "hits": cache_now["hits"] - cache_baseline["hits"],
                "misses": (
                    cache_now["misses"] - cache_baseline["misses"]
                ),
            }
            cache_baseline = cache_now
            metrics_state = None
            if profile_registry is not None:
                metrics_state = profile_registry.state()
                profile_registry.reset()
            result_queue.put(
                ("run_done", worker_id, delta, metrics_state)
            )
            continue
        _, batch_id, template, frames = message
        started = time.monotonic()
        try:
            datasets = [
                replace(template, rf=unpack(payload, attachments))
                for _, payload, _ in frames
            ]
            t_unpacked = time.monotonic()
            images = beamformer.beamform_batch(datasets)
            t_executed = time.monotonic()
            out = [
                (seq, writer.pack(np.ascontiguousarray(image)))
                for (seq, _, _), image in zip(frames, images)
            ]
            t_packed = time.monotonic()
            span_blob = None
            if any(ctx is not None for _, _, ctx in frames):
                span_blob = (
                    pid,
                    (
                        ("unpack", 0.0, t_unpacked - started),
                        (
                            "execute",
                            t_unpacked - started,
                            t_executed - started,
                        ),
                        (
                            "pack",
                            t_executed - started,
                            t_packed - started,
                        ),
                    ),
                )
            metrics_state = None
            if profile_registry is not None:
                metrics_state = profile_registry.state()
                profile_registry.reset()
            result_queue.put(
                (
                    "done",
                    worker_id,
                    generation,
                    batch_id,
                    out,
                    t_packed - started,
                    span_blob,
                    metrics_state,
                )
            )
        except BaseException:
            result_queue.put(
                (
                    "error",
                    worker_id,
                    generation,
                    batch_id,
                    traceback.format_exc(),
                )
            )
    close_attachments(attachments)
    writer.close()


# --------------------------------------------------------------------------
# Parent-side engine
# --------------------------------------------------------------------------


@dataclass
class _Pending:
    """One dispatched batch awaiting its result.

    ``shard`` is reassigned when the owing worker dies mid-retirement
    and the batch is re-dispatched to a surviving shard.
    """

    batch_id: int
    shard: int
    message: tuple
    batch: MicroBatch
    frame_payloads: list
    dispatch_time: float


#: Lifecycle states of one worker slot.  ``starting`` — spawned, ready
#: handshake outstanding, not yet routable; ``active`` — routable;
#: ``retiring`` — removed from the router, draining its queued batches
#: behind a FIFO ``stop``; ``retired`` — observed gone (clean exit).
_SLOT_STATES = ("starting", "active", "retiring", "retired")


@dataclass
class _WorkerSlot:
    """Everything owned by one shard: process, queues, identity.

    Slots are append-only (``shard`` doubles as the index into the
    engine's slot list), so a retired slot keeps its task queue and
    output free list alive — late results from its final batches still
    resolve against them.  ``generation`` counts crash respawns of the
    slot; results tagged with a stale generation are discarded.
    """

    shard: int
    task_queue: object
    free_list: QueueFreeList
    process: object = None
    generation: int = 0
    state: str = "starting"


@dataclass
class _RunState:
    """Everything scoped to one ``serve()`` call."""

    telemetry: ServeTelemetry
    ingest: BoundedQueue
    results: dict = field(default_factory=dict)
    dropped: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    pending: dict = field(default_factory=dict)
    run_done: set = field(default_factory=set)
    lock: threading.Lock = field(default_factory=threading.Lock)
    abort: threading.Event = field(default_factory=threading.Event)
    dispatch_done: threading.Event = field(
        default_factory=threading.Event
    )
    end_run_sent: bool = False
    # The shards whose ``run_done`` ack this run waits for — captured
    # when ``end_run`` is sent (the active set at that moment), so
    # workers added or retired mid-run neither stall nor break run
    # completion.
    end_run_shards: set = field(default_factory=set)


class ShardedServeEngine:
    """Micro-batching streaming executor sharded over worker processes.

    Drop-in alternative to :class:`~repro.serve.engine.ServeEngine` for
    CPU-bound pipelines: same sources, same backpressure policies, same
    :class:`~repro.serve.engine.ServeReport`, bitwise-identical images —
    but ``beamform_batch`` runs in ``n_workers`` separate processes fed
    through shared memory, so pure-Python pipeline work scales past the
    GIL.

    Args:
        beamformer: any picklable :class:`~repro.api.base.Beamformer`
            (all built-ins are; backends pickle by registry name).
        n_workers: worker *processes* (shards).
        transport: ``"shm"`` (shared-memory rings, default) or
            ``"pickle"`` (everything over the queues).
        max_batch / max_latency_ms / queue_capacity / backpressure:
            exactly as on :class:`~repro.serve.engine.ServeEngine`.
        shard_policy: ``"round_robin"`` (default) or ``"geometry"`` —
            see :class:`~repro.serve.scheduler.ShardRouter`.
        input_slots: frame-ring depth (in-flight frame bound); default
            ``4 * max_batch * n_workers``.
        output_slots: per-worker image-ring depth; default
            ``2 * max_batch``.
        restart_workers: respawn a crashed shard and requeue its
            in-flight batches instead of aborting the run.  Implemented
            on the same slot primitives as live :meth:`add_worker` /
            :meth:`retire_worker`: a crash is a forced retirement of
            the dead incarnation followed by a replacement spawn into
            the same slot.
        max_restarts: total respawns allowed per engine before a crash
            becomes fatal anyway.
        max_workers: upper bound on concurrently live workers across
            the engine's lifetime (:meth:`add_worker` refuses beyond
            it).  Fixed up front because the result queue — bounded
            like every serving queue — is sized from it at ``start``.
            Default ``max(8, 2 * n_workers)``.
        start_method: ``multiprocessing`` start method; ``"spawn"``
            (default) is the only portable, lock-safe choice.
        clock: engine-side time source.  Worker processes always
            measure compute with their own monotonic clocks (only
            durations cross the boundary), so a fake clock here only
            affects parent-side pacing/telemetry.
        log_every_s: period of the telemetry log line (0 disables).
        keep_images: retain results for :attr:`ServeReport.images`
            (default).  ``False`` delivers images to the sink only —
            the memory contract long-running push consumers (the
            network gateway) need.
        observability: optional :class:`repro.obs.Observability`
            bundle shared with the caller (metrics, tracer, events,
            flight recorder); default a private tracing-off bundle on
            the engine clock.  Sampled frames' trace contexts ride the
            batch envelope to workers as 17-byte structs and come back
            as span offsets the collector rebases (see
            :func:`_worker_main`).
        profile_kernels: time every ArrayBackend kernel call *inside
            each worker process* into a worker-local registry whose
            state is folded into ``observability.metrics`` at end of
            run (``repro_kernel_seconds{kernel=...,backend=...}``).
    """

    def __init__(
        self,
        beamformer: Beamformer,
        n_workers: int = 2,
        transport: str = "shm",
        max_batch: int = 4,
        max_latency_ms: float = 25.0,
        queue_capacity: int = 64,
        backpressure: str = "block",
        shard_policy: str = "round_robin",
        input_slots: int | None = None,
        output_slots: int | None = None,
        restart_workers: bool = False,
        max_restarts: int = 3,
        max_workers: int | None = None,
        start_method: str = "spawn",
        clock: Clock | None = None,
        log_every_s: float = 10.0,
        keep_images: bool = True,
        observability: Observability | None = None,
        profile_kernels: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, "
                f"got {transport!r}"
            )
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}"
            )
        if shard_policy not in SHARD_POLICIES:
            raise ValueError(
                f"shard_policy must be one of {SHARD_POLICIES}, "
                f"got {shard_policy!r}"
            )
        self.beamformer = beamformer
        self.n_workers = n_workers
        self.transport = transport
        self.max_batch = max_batch
        self.max_latency_ms = max_latency_ms
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        self.shard_policy = shard_policy
        self.input_slots = input_slots or 4 * max_batch * n_workers
        self.output_slots = output_slots or 2 * max_batch
        self.restart_workers = restart_workers
        self.max_restarts = max_restarts
        self.max_workers = max_workers or max(8, 2 * n_workers)
        if self.max_workers < n_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= "
                f"n_workers ({n_workers})"
            )
        self.start_method = start_method
        self.clock = clock or MonotonicClock()
        self.log_every_s = log_every_s
        self.keep_images = keep_images
        self.obs = observability or Observability.create(clock=self.clock)
        self.profile_kernels = profile_kernels

        import multiprocessing

        self._ctx = multiprocessing.get_context(start_method)
        self._started = False
        self._broken = False
        self._restarts = 0
        self._serve_lock = threading.Lock()
        # Slot list mutations (add/retire/state flips) and the derived
        # active-shard set are ordered by _slots_lock; the list itself
        # is append-only so indexed reads (slot by shard id) are safe
        # from any thread.
        self._slots_lock = threading.Lock()
        self._slots: list[_WorkerSlot] = []
        self._router: ShardRouter | None = None
        self._scheduler: MicroBatcher | None = None
        self._result_queue = None
        self._frames = FrameTransport(transport, self.input_slots)
        self._attachments: dict = {}
        self._batch_counter = 0
        self._log_last = 0.0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ShardedServeEngine":
        """Spawn the worker pool (idempotent; implied by ``serve``)."""
        if self._started:
            return self
        blob = pickle.dumps(self.beamformer)
        self._beamformer_blob = blob
        self._backend_name = default_backend_name()
        # Bounded like every other serving queue (RA002): outstanding
        # result messages are capped by admitted frames (input_slots)
        # and the per-shard task depth, plus a handful of lifecycle
        # ("ready"/"error") messages per worker across restarts.
        # Sized for max_workers, not n_workers: workers added at
        # runtime share this queue and its bound cannot change later.
        result_depth = (
            self.input_slots
            + self.max_workers * (TASK_QUEUE_DEPTH + 2)
            + 8
        )
        self._result_queue = self._ctx.Queue(maxsize=result_depth)
        for _ in range(self.n_workers):
            slot = self._new_slot()
            self._spawn(slot)
        self._await_ready(strict=True)
        self._started = True
        return self

    def _new_slot(self) -> _WorkerSlot:
        """Append one slot (id = list index) with its own queues."""
        with self._slots_lock:
            slot = _WorkerSlot(
                shard=len(self._slots),
                task_queue=self._ctx.Queue(maxsize=TASK_QUEUE_DEPTH),
                free_list=QueueFreeList.create(
                    self._ctx, self.output_slots
                ),
            )
            self._slots.append(slot)
        return slot

    def _spawn(self, slot: _WorkerSlot) -> None:
        """Start (or restart) the process of one slot."""
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                slot.shard,
                slot.generation,
                self._beamformer_blob,
                self._backend_name,
                self.transport,
                self.output_slots,
                slot.task_queue,
                self._result_queue,
                slot.free_list.raw,
                self.profile_kernels,
            ),
            name=f"serve-shard-{slot.shard}",
            daemon=True,
        )
        process.start()
        slot.process = process
        self.obs.events.emit(
            "worker_spawned",
            shard=slot.shard,
            generation=slot.generation,
            pid=process.pid,
        )

    def _await_ready(self, strict: bool = True) -> None:
        """Consume ready handshakes until no slot is ``starting``.

        Used at ``start()`` (strict: a worker that cannot boot kills
        the engine) and again at the top of every ``serve`` run for
        workers added between runs (non-strict: a replacement that
        cannot boot is marked retired and logged; the run proceeds on
        the surviving pool).  During a live run the collector thread
        performs the same promotion instead.
        """
        deadline = time.monotonic() + _READY_TIMEOUT_S
        while True:
            with self._slots_lock:
                starting = [
                    slot for slot in self._slots
                    if slot.state == "starting"
                ]
            if not starting:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                if strict:
                    self._terminate_all()
                    raise WorkerCrashed(
                        f"workers "
                        f"{sorted(slot.shard for slot in starting)} "
                        f"did not report ready within "
                        f"{_READY_TIMEOUT_S}s"
                    )
                for slot in starting:
                    self._fail_starting_slot(slot, "ready timeout")
                return
            try:
                message = self._result_queue.get(
                    timeout=min(remaining, _POLL_S * 5)
                )
            except _queue.Empty:
                dead = [
                    slot for slot in starting
                    if slot.process is not None
                    and not slot.process.is_alive()
                ]
                if dead and strict:
                    self._terminate_all()
                    raise WorkerCrashed(
                        f"workers "
                        f"{sorted(slot.shard for slot in dead)} died "
                        f"during startup"
                    )
                for slot in dead:
                    self._fail_starting_slot(slot, "died during boot")
                continue
            if message[0] == "ready":
                self._on_worker_ready(message[1])
            elif message[0] == "fatal":
                if strict:
                    self._terminate_all()
                    raise WorkerCrashed(
                        f"worker {message[1]} failed during startup:\n"
                        f"{message[2]}"
                    )
                self._fail_starting_slot(
                    self._slots[message[1]], message[2]
                )
            elif message[0] == "stopped":
                # A worker retired between runs finished draining.
                with self._slots_lock:
                    slot = self._slots[message[1]]
                    if slot.state == "retiring":
                        slot.state = "retired"
            # "done"/"run_done" stragglers from earlier runs: ignore

    def _fail_starting_slot(self, slot: _WorkerSlot, why: str) -> None:
        """Write off a worker that never became routable."""
        slot.state = "retired"
        if slot.process is not None and slot.process.is_alive():
            slot.process.terminate()
        logger.warning(
            "worker %d never became ready (%s); continuing without it",
            slot.shard,
            why,
        )
        self.obs.events.emit(
            "worker_start_failed", shard=slot.shard, reason=why
        )

    def _on_worker_ready(self, shard: int, run=None) -> None:
        """Promote a ``starting`` slot into the routable set."""
        with self._slots_lock:
            slot = self._slots[shard]
            if slot.state != "starting":
                return  # crash-respawn ready, or a late straggler
            slot.state = "active"
            active = self._active_shards()
            router = self._router
        if router is not None:
            router.set_shards(active)
        if run is not None:
            run.telemetry.worker_spawned()
        self.obs.events.emit("worker_ready", shard=shard)

    def _active_shards(self) -> list[int]:
        """Routable shard ids (callers hold ``_slots_lock``)."""
        return [
            slot.shard for slot in self._slots
            if slot.state == "active"
        ]

    def close(self) -> None:
        """Stop workers and release every transport resource."""
        if not self._slots:
            return
        for slot in self._slots:
            if slot.state in ("retiring", "retired"):
                continue  # stop is already queued / already gone
            try:
                slot.task_queue.put(("stop",), timeout=1.0)
            except _queue.Full:
                pass
        procs = [
            slot.process for slot in self._slots
            if slot.process is not None
        ]
        for process in procs:
            process.join(timeout=5.0)
        for process in procs:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._frames.close()
        # Worker-owned image segments unlink on clean worker exit; if a
        # worker was terminated, unlink its segment here by name.
        from multiprocessing import shared_memory

        names = list(self._attachments)
        close_attachments(self._attachments)
        for name in names:
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        for mp_queue in (
            *(slot.task_queue for slot in self._slots),
            *(slot.free_list.raw for slot in self._slots),
            self._result_queue,
        ):
            if mp_queue is None:
                continue
            mp_queue.close()
            mp_queue.cancel_join_thread()
        with self._slots_lock:
            self._slots = []
        self._result_queue = None
        self._started = False

    def _terminate_all(self) -> None:
        procs = [
            slot.process for slot in self._slots
            if slot.process is not None
        ]
        for process in procs:
            if process.is_alive():
                process.terminate()
        for process in procs:
            process.join(timeout=5.0)
        with self._slots_lock:
            self._slots = []
        self._started = False
        self._broken = True

    @property
    def broken(self) -> bool:
        """True once a worker crash has aborted the engine (terminal).

        Set while ``serve`` may still be unwinding — a push-style
        caller (the gateway) polls it so a blocking frame source can
        stop feeding and let ``serve`` surface its
        :class:`WorkerCrashed` instead of waiting for a next frame
        that may never come.
        """
        return self._broken

    def __enter__(self) -> "ShardedServeEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- runtime control -------------------------------------------------

    def set_batching(
        self,
        max_batch: int | None = None,
        max_latency_ms: float | None = None,
    ) -> None:
        """Adjust micro-batching limits, live when a run is active.

        Mirrors :meth:`ServeEngine.set_batching
        <repro.serve.engine.ServeEngine.set_batching>`: validated
        together, stored on the engine for future runs, and pushed
        into the live run's scheduler, which re-reads its limits at
        every flush decision.
        """
        new_batch = self.max_batch if max_batch is None else max_batch
        new_latency = (
            self.max_latency_ms if max_latency_ms is None
            else max_latency_ms
        )
        MicroBatcher._validate_limits(new_batch, new_latency / 1e3)
        self.max_batch = new_batch
        self.max_latency_ms = new_latency
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler.set_limits(
                max_batch=new_batch, max_latency_s=new_latency / 1e3
            )

    @property
    def live_workers(self) -> int:
        """Workers currently serving or booting (not retiring)."""
        with self._slots_lock:
            return sum(
                slot.state in ("starting", "active")
                for slot in self._slots
            )

    def add_worker(self) -> int | None:
        """Spawn one more shard at runtime; returns its id.

        The new worker boots asynchronously: it enters the router only
        once its ready handshake arrives (consumed by the collector
        during a live run, or by the next run's pre-flight otherwise),
        so dispatch never stalls behind a booting process.  Returns
        ``None`` when the engine is not started, is broken, or already
        has ``max_workers`` live workers.
        """
        if not self._started or self._broken:
            return None
        with self._slots_lock:
            live = sum(
                slot.state in ("starting", "active")
                for slot in self._slots
            )
            if live >= self.max_workers:
                return None
        slot = self._new_slot()
        self._spawn(slot)
        self.obs.events.emit("worker_added", shard=slot.shard)
        return slot.shard

    def retire_worker(self, shard: int | None = None) -> int | None:
        """Gracefully drain and stop one worker at runtime.

        The slot leaves the router immediately (no new batches), then a
        ``stop`` is queued *behind* everything already in its task
        queue — FIFO gives drain-before-exit, so every dispatched
        frame still completes and zero admitted frames are lost.  The
        exit is observed (and the slot marked ``retired``) by the
        collector; should the worker crash mid-drain, its still-owed
        batches are re-dispatched to surviving shards (frames stay
        parked in the input ring until their batch has an outcome).

        Args:
            shard: which worker to retire; default the highest active
                shard id.

        Returns the retired shard id, or ``None`` when refused (no such
        active worker, or it would empty the pool).
        """
        if not self._started:
            return None
        with self._slots_lock:
            candidates = [
                slot for slot in self._slots if slot.state == "active"
            ]
            if len(candidates) <= 1:
                return None
            if shard is None:
                slot = candidates[-1]
            else:
                if shard >= len(self._slots):
                    return None
                slot = self._slots[shard]
                if slot.state != "active":
                    return None
            slot.state = "retiring"
            active = self._active_shards()
            router = self._router
        if router is not None:
            router.set_shards(active)
        self.obs.events.emit("worker_retiring", shard=slot.shard)
        while True:
            try:
                slot.task_queue.put(("stop",), timeout=_POLL_S)
                break
            except _queue.Full:
                if self._broken:
                    break
        return slot.shard

    # -- serving ---------------------------------------------------------

    def serve(
        self,
        source: Iterable,
        sink: Sink | None = None,
        telemetry: ServeTelemetry | None = None,
    ) -> ServeReport:
        """Run the sharded pipeline over ``source`` until exhausted.

        Same contract as :meth:`ServeEngine.serve
        <repro.serve.engine.ServeEngine.serve>`: images come back in
        submission order (``None`` for frames dropped by backpressure),
        the first worker failure is re-raised after shutdown, no frame
        is lost on graceful shutdown, and a caller-owned ``telemetry``
        is recorded into live (the gateway's ``stats`` endpoint).
        """
        with self._serve_lock:
            if self._broken:
                raise RuntimeError(
                    "engine is broken after a worker crash; close() "
                    "and build a new engine"
                )
            self.start()
            # Workers added between runs are still "starting": absorb
            # their ready handshakes before building the router (the
            # collector takes over mid-run promotion once it starts).
            self._await_ready(strict=False)
            run = _RunState(
                telemetry=telemetry or ServeTelemetry(
                    clock=self.clock, metrics=self.obs.metrics
                ),
                ingest=BoundedQueue(
                    self.queue_capacity, self.backpressure
                ),
            )
            with self._slots_lock:
                active = self._active_shards()
            if not active:
                raise WorkerCrashed(
                    "no active workers left to serve the run"
                )
            run.telemetry.worker_spawned(len(active))
            router = ShardRouter(len(active), self.shard_policy)
            router.set_shards(active)
            scheduler = MicroBatcher(
                max_batch=self.max_batch,
                max_latency_s=self.max_latency_ms / 1e3,
                clock=self.clock,
            )
            self._router = router
            self._scheduler = scheduler
            batcher = threading.Thread(
                target=self._batcher_loop,
                args=(run, router, scheduler),
                name="serve-shard-batcher",
                daemon=True,
            )
            collector = threading.Thread(
                target=self._collector_loop,
                args=(run, sink),
                name="serve-shard-collector",
                daemon=True,
            )
            batcher.start()
            collector.start()
            seq = 0
            try:
                seq = pump_source(
                    source, run.ingest, run.telemetry, run.dropped,
                    tracer=self.obs.tracer, events=self.obs.events,
                )
            finally:
                run.ingest.close()
                batcher.join()
                if not run.abort.is_set():
                    self._send_end_run(run)
                run.dispatch_done.set()
                collector.join()
                self._router = None
                self._scheduler = None
                self._release_leftovers(run)

            if run.errors:
                raise run.errors[0]
            images = [run.results.get(index) for index in range(seq)]
            report = ServeReport(
                images=images,
                dropped=sorted(run.dropped),
                stats=run.telemetry.stats(),
            )
            if self.log_every_s > 0:
                logger.info(
                    "sharded serve finished: %s",
                    run.telemetry.log_line(),
                )
            return report

    # -- batcher side ----------------------------------------------------

    def _batcher_loop(
        self,
        run: _RunState,
        router: ShardRouter,
        scheduler: MicroBatcher,
    ) -> None:
        try:
            run_batcher(
                run.ingest,
                lambda batch: self._dispatch(run, router, batch),
                scheduler,
            )
        except TransportClosed:
            pass  # the run aborted while we were blocked dispatching
        except BaseException as exc:
            with run.lock:
                run.errors.append(exc)
            run.abort.set()
            run.ingest.close()

    def _dispatch(
        self, run: _RunState, router: ShardRouter, batch: MicroBatch
    ) -> None:
        shard = router.route(batch)
        template = _template_of(batch.frames[0].dataset)
        payloads = []
        for frame in batch.frames:
            payloads.append(
                self._frames.pack(
                    np.asarray(frame.dataset.rf),
                    timeout=None,
                    abort=run.abort.is_set,
                )
            )
        self._batch_counter += 1
        batch_id = self._batch_counter
        message = (
            "batch",
            batch_id,
            template,
            [
                (
                    frame.seq,
                    payload,
                    # Sampled frames ship their trace context as the
                    # fixed 17-byte struct (never a pickled Trace).
                    None if frame.trace is None else pack_context(
                        frame.trace.trace_id, 0
                    ),
                )
                for frame, payload in zip(batch.frames, payloads)
            ],
        )
        entry = _Pending(
            batch_id=batch_id,
            shard=shard,
            message=message,
            batch=batch,
            frame_payloads=payloads,
            dispatch_time=self.clock.now(),
        )
        with run.lock:
            run.pending[batch_id] = entry
            run.telemetry.observe_queue_depth(
                "inflight_batches", len(run.pending)
            )
        self._put_task(run, shard, message)

    def _put_task(
        self, run: _RunState, shard: int, message: tuple
    ) -> None:
        while True:
            if run.abort.is_set():
                raise TransportClosed
            try:
                self._slots[shard].task_queue.put(
                    message, timeout=_POLL_S
                )
                return
            except _queue.Full:
                continue

    def _send_end_run(self, run: _RunState) -> None:
        with self._slots_lock:
            shards = set(self._active_shards())
        run.end_run_shards = shards
        for shard in sorted(shards):
            try:
                self._put_task(run, shard, ("end_run",))
            except TransportClosed:
                return
        run.end_run_sent = True

    # -- collector side --------------------------------------------------

    def _collector_loop(self, run: _RunState, sink: Sink | None) -> None:
        last_liveness = 0.0
        while True:
            if run.abort.is_set():
                return
            # Poll liveness on idle timeouts *and* periodically under
            # sustained result traffic — a busy healthy shard must not
            # delay detection of a dead one.
            now = time.monotonic()
            if now - last_liveness >= _POLL_S:
                last_liveness = now
                self._check_liveness(run)
                if run.abort.is_set():
                    return
            try:
                message = self._result_queue.get(timeout=_POLL_S)
            except _queue.Empty:
                if self._run_complete(run):
                    return
                continue
            kind = message[0]
            if kind == "done":
                self._on_done(run, message, sink)
            elif kind == "error":
                self._on_error(run, message)
            elif kind == "run_done":
                _, shard, cache_stats, metrics_state = message
                with run.lock:
                    run.run_done.add(shard)
                run.telemetry.shard_plan_cache(shard, cache_stats)
                if metrics_state:
                    # Fold the worker's kernel-profiling histograms
                    # into the exported registry.
                    self.obs.metrics.merge(metrics_state)
            elif kind == "fatal":
                _, shard, tb = message
                with self._slots_lock:
                    starting = self._slots[shard].state == "starting"
                if starting:
                    # A worker added mid-run that cannot boot is not a
                    # run-fatal event: write it off and keep serving.
                    self._fail_starting_slot(self._slots[shard], tb)
                else:
                    with run.lock:
                        run.errors.append(
                            WorkerCrashed(
                                f"worker {shard} failed:\n{tb}"
                            )
                        )
                    self._abort_run(run)
                    return
            elif kind == "ready":
                # A worker added mid-run finished booting: promote it
                # into the router without pausing dispatch.
                self._on_worker_ready(message[1], run)
            elif kind == "stopped":
                # Clean exit of a retiring worker (its drained batches
                # all preceded this message on the FIFO result queue).
                self._finish_retire(run, self._slots[message[1]])
            self._maybe_log(run)
            if self._run_complete(run):
                return

    def _run_complete(self, run: _RunState) -> bool:
        if not run.dispatch_done.is_set():
            return False
        with run.lock:
            return (
                not run.pending
                and run.run_done >= run.end_run_shards
            )

    def _on_done(
        self, run: _RunState, message: tuple, sink: Sink | None
    ) -> None:
        (
            _, shard, generation, batch_id, out_payloads, execute_s,
            span_blob, metrics_state,
        ) = message
        if generation != self._slots[shard].generation:
            # A dead incarnation's parting words: its batches were
            # requeued and its slot pool rebuilt wholesale, so neither
            # the result nor the slots are ours to consume/release.
            return
        if metrics_state:
            # Fold the worker's per-batch kernel-profiling delta into
            # the exported registry while the run is still live.
            self.obs.metrics.merge(metrics_state)
        with run.lock:
            entry = run.pending.pop(batch_id, None)
        if entry is None:
            # Duplicate from a requeue race: the batch already has an
            # outcome; just recycle the output slots.
            for _, payload in out_payloads:
                self._release_output(shard, payload)
            return
        done_time = self.clock.now()
        images = {}
        for seq, payload in out_payloads:
            images[seq] = unpack(payload, self._attachments)
            self._release_output(shard, payload)
        for payload in entry.frame_payloads:
            self._frames.release(payload)
        collected_time = self.clock.now()
        if self.keep_images:
            with run.lock:
                run.results.update(images)
        run.telemetry.batch_done(
            [frame.submitted_at for frame in entry.batch.frames],
            entry.dispatch_time,
            done_time,
            shard=shard,
            execute_s=execute_s,
        )
        for frame in entry.batch.frames:
            if frame.trace is not None:
                self._record_frame_spans(
                    frame, entry, shard, done_time, collected_time,
                    execute_s, span_blob,
                )
        if sink is not None:
            for frame in entry.batch.frames:
                sink(frame.seq, frame.dataset, images[frame.seq])
        for frame in entry.batch.frames:
            # Gateway-owned traces finish at response delivery;
            # engine-owned ones are complete once collected.
            if frame.trace is not None and frame.trace.owner == "engine":
                frame.trace.finish(status="ok")

    def _record_frame_spans(
        self,
        frame,
        entry: "_Pending",
        shard: int,
        done_time: float,
        collected_time: float,
        execute_s: float,
        span_blob,
    ) -> None:
        """Attach this batch's pipeline spans to one sampled frame.

        Worker spans arrive as offsets on the worker's clock; they are
        rebased onto the parent clock by anchoring the worker's window
        to ``done_time - execute_s`` (the two monotonic clocks share
        durations, not epochs — same convention telemetry uses for the
        per-shard ``execute`` stage).
        """
        trace = frame.trace
        trace.add_span(
            "queue_wait", frame.submitted_at, entry.dispatch_time
        )
        shard_span = trace.add_span(
            "shard", entry.dispatch_time, done_time,
            shard=shard, batch_id=entry.batch_id,
            batch_size=len(entry.batch.frames),
        )
        if span_blob is not None:
            worker_pid, offsets = span_blob
            anchor = done_time - execute_s
            for name, start_offset, end_offset in offsets:
                trace.add_span(
                    name,
                    anchor + start_offset,
                    anchor + end_offset,
                    parent=shard_span,
                    process=worker_pid,
                )
        trace.add_span("collect", done_time, collected_time)

    def _on_error(self, run: _RunState, message: tuple) -> None:
        _, shard, generation, batch_id, tb = message
        if generation != self._slots[shard].generation:
            return  # stale incarnation; the requeued retry decides
        with run.lock:
            entry = run.pending.pop(batch_id, None)
            run.errors.append(
                RuntimeError(
                    f"worker {shard} failed on batch {batch_id}:\n{tb}"
                )
            )
        if entry is not None:
            for payload in entry.frame_payloads:
                self._frames.release(payload)
            for frame in entry.batch.frames:
                if frame.trace is not None:
                    frame.trace.finish(status="error")

    def _release_output(self, shard: int, payload) -> None:
        if isinstance(payload, SlotHandle):
            self._slots[shard].free_list.release(payload.slot)

    def _finish_retire(self, run: _RunState, slot: _WorkerSlot) -> None:
        """Finalize a retiring worker once its exit is observed.

        Idempotent (the clean ``stopped`` message and the liveness
        poll can race to observe the same exit).  On a clean drain
        the slot owes nothing; if it died mid-drain, its still-owed
        batches are re-dispatched to the surviving shards — their
        frames are still parked in the input ring, and any duplicate
        results are discarded by batch id.
        """
        with self._slots_lock:
            if slot.state != "retiring":
                return
            slot.state = "retired"
        with run.lock:
            if slot.shard in run.end_run_shards:
                # Retired after end_run was addressed to it: its ack
                # may never come (a FIFO "stop" can precede the
                # end_run, or it died mid-drain) — credit it so run
                # completion cannot stall on a gone worker.  Only its
                # plan-cache delta is lost.
                run.run_done.add(slot.shard)
        run.telemetry.worker_exited()
        self.obs.events.emit(
            "worker_retired",
            shard=slot.shard,
            generation=slot.generation,
        )
        self._reassign_owed(run, slot.shard)

    def _reassign_owed(self, run: _RunState, shard: int) -> None:
        """Re-dispatch batches a gone worker still owed this run."""
        with run.lock:
            owed = [
                entry
                for entry in run.pending.values()
                if entry.shard == shard
            ]
        if not owed:
            return
        router = self._router
        for entry in owed:
            target = router.route(entry.batch) if router else shard
            entry.shard = target
            try:
                self._put_task(run, target, entry.message)
            except TransportClosed:
                return

    def _check_liveness(self, run: _RunState) -> None:
        with self._slots_lock:
            slots = list(self._slots)
        for slot in slots:
            process = slot.process
            if (
                slot.state == "retired"
                or process is None
                or process.is_alive()
            ):
                continue
            if slot.state == "retiring":
                # Died (or exited before we drained its "stopped"
                # message) while draining: finalize, reassigning
                # whatever it still owed.
                self._finish_retire(run, slot)
                continue
            if slot.state == "starting":
                self._fail_starting_slot(
                    slot, f"died during boot (exitcode "
                    f"{process.exitcode})"
                )
                continue
            run.telemetry.worker_exited()
            self.obs.events.emit(
                "worker_exited",
                shard=slot.shard,
                generation=slot.generation,
                exitcode=process.exitcode,
            )
            if (
                self.restart_workers
                and self._restarts < self.max_restarts
            ):
                self._restarts += 1
                logger.warning(
                    "worker %d died (exitcode %s); restarting "
                    "(%d/%d) and requeueing its in-flight batches",
                    slot.shard,
                    process.exitcode,
                    self._restarts,
                    self.max_restarts,
                )
                # A crash is a forced retirement of the dead
                # incarnation plus a replacement spawn into the same
                # slot.  Order matters: bump the generation first
                # (stale results must be recognizable), rebuild the
                # output slot pool while nobody allocates from it
                # (indices the dead worker acquired but never
                # surfaced would otherwise leak on every crash,
                # eventually starving the pool), and only then start
                # the replacement.  The slot stays ``active`` — the
                # replacement's ready handshake is informational
                # (``_on_worker_ready`` ignores non-starting slots).
                slot.generation += 1
                slot.free_list.rebuild(self.output_slots)
                self._spawn(slot)
                run.telemetry.worker_restarted()
                run.telemetry.worker_spawned()
                self.obs.events.emit(
                    "worker_restarted",
                    shard=slot.shard,
                    restarts=self._restarts,
                )
                # A crash survived by restart is still a post-mortem
                # moment: dump the recent-history ring for diagnosis.
                self._dump_flight_recorder(
                    f"worker {slot.shard} crash (restarted)"
                )
                self._requeue_shard(run, slot.shard)
            else:
                with run.lock:
                    run.errors.append(
                        WorkerCrashed(
                            f"worker {slot.shard} died (exitcode "
                            f"{process.exitcode}) with the run in "
                            f"flight"
                        )
                    )
                self._abort_run(run)
                return

    def _requeue_shard(self, run: _RunState, shard: int) -> None:
        """Re-dispatch every batch the dead shard still owed us.

        Safe because input-ring slots are freed only once a batch has
        an outcome: the frames of these batches are still parked in
        shared memory, byte-for-byte.  Batches that were merely queued
        (never read by the dead worker) survive in the task queue and
        will be served by the replacement as well — the resulting
        duplicates are discarded by batch id in :meth:`_on_done`.
        """
        with run.lock:
            owed = [
                entry
                for entry in run.pending.values()
                if entry.shard == shard
            ]
        for entry in owed:
            try:
                self._put_task(run, shard, entry.message)
            except TransportClosed:
                return
        if (
            run.end_run_sent
            and shard in run.end_run_shards
            and shard not in run.run_done
        ):
            try:
                self._put_task(run, shard, ("end_run",))
            except TransportClosed:
                pass

    def _abort_run(self, run: _RunState) -> None:
        self._broken = True
        self.obs.events.emit("engine_broken", engine="sharded")
        self._dump_flight_recorder("unclean run abort")
        run.abort.set()
        run.ingest.close()

    def _dump_flight_recorder(self, why: str) -> None:
        """Log the flight-recorder ring (post-mortem on crash/abort)."""
        dump = self.obs.recorder.dump()
        if dump:
            logger.warning(
                "flight recorder dump (%s):\n%s", why, dump
            )

    def _release_leftovers(self, run: _RunState) -> None:
        with run.lock:
            leftovers = list(run.pending.values())
            run.pending.clear()
        for entry in leftovers:
            for payload in entry.frame_payloads:
                self._frames.release(payload)
            for frame in entry.batch.frames:
                if frame.trace is not None:
                    frame.trace.finish(status="aborted")

    def _maybe_log(self, run: _RunState) -> None:
        if self.log_every_s <= 0:
            return
        now = self.clock.now()
        if now - self._log_last < self.log_every_s:
            return
        self._log_last = now
        logger.info(run.telemetry.log_line())
