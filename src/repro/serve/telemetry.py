"""Serving observability: per-stage latency, throughput, queue depth.

One :class:`ServeTelemetry` instance rides along a serving run.  Every
frame contributes to three stage histograms —

* ``queue_wait`` — submit → micro-batch dispatch,
* ``execute`` — batch dispatch → beamformed,
* ``total`` — submit → beamformed,

plus batch-size and queue-depth gauges and the ToF-plan-cache hit rate
over the run.  The hit rate is a delta against the process-wide cache
counters, so earlier runs don't pollute it — but it attributes *all*
cache traffic during the run to this run: concurrent serving runs (or a
mid-run ``clear_tof_plan_cache``) will skew the reported rate.  Run one
engine at a time when the hit rate matters.  ``stats()`` returns the
whole picture
as one dict (the shape serialized into ``BENCH_serve.json``);
``log_line()`` compresses it into the periodic one-liner the engine
logs.

Sharded serving (:mod:`repro.serve.sharding`) extends the picture along
two axes:

* **per-shard stages** — :meth:`ServeTelemetry.batch_done` accepts a
  ``shard`` label; every labelled batch additionally lands in that
  shard's own ``execute``/``total`` histograms, so ``stats()["shards"]``
  exposes p50/p95/p99 *per worker process* next to the aggregate,
* **worker lifecycle counters** — :meth:`worker_spawned`,
  :meth:`worker_exited` and :meth:`worker_restarted` feed
  ``stats()["workers"]`` (spawned / live / clean exits / restarts), the
  liveness signal the nightly soak test asserts on.

Latency samples are held in a **bounded reservoir**
(:class:`LatencyStats`): the first ``cap`` samples are kept exactly,
after which reservoir sampling keeps a uniform subsample, so a
long-running engine's memory stays flat no matter how many frames it
serves.  ``count``/``mean``/``max`` stay exact; percentiles come from
the reservoir (accuracy pinned by ``tests/serve``).
"""

from __future__ import annotations

import random
import threading

import numpy as np

from repro.beamform.tof import tof_plan_cache_stats
from repro.serve.clock import Clock, MonotonicClock

PERCENTILES = (50.0, 95.0, 99.0)

#: Default latency-reservoir size.  4096 uniform samples put the p99
#: estimate within a few percent of the exact value (see the accuracy
#: test in ``tests/serve/test_queue_telemetry.py``) at a fixed 32 KiB
#: per stage histogram.
RESERVOIR_CAP = 4096


class LatencyStats:
    """Bounded-memory latency accumulator with percentile snapshots.

    The first ``cap`` samples are stored exactly; from then on classic
    reservoir sampling (Vitter's algorithm R) maintains a uniform random
    subsample of everything seen, so percentile estimates stay unbiased
    while memory stays O(cap) forever.  Count, mean and max are tracked
    exactly regardless.

    The replacement RNG is seeded deterministically so telemetry
    snapshots are reproducible run-to-run given the same sample stream.
    """

    def __init__(self, cap: int = RESERVOIR_CAP) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = cap
        self._reservoir: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._rng = random.Random(0x5EED)

    def record(self, seconds: float) -> None:
        """Fold one latency sample into the reservoir."""
        value = float(seconds)
        self._count += 1
        self._sum += value
        if self._count == 1 or value > self._max:
            self._max = value
        if len(self._reservoir) < self.cap:
            self._reservoir.append(value)
            return
        # Reservoir replacement: keep each of the N samples seen so far
        # with equal probability cap/N.
        slot = self._rng.randrange(self._count)
        if slot < self.cap:
            self._reservoir[slot] = value

    @property
    def count(self) -> int:
        """Exact number of samples recorded (not just retained)."""
        return self._count

    def snapshot(self) -> dict:
        """``{count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}``."""
        if not self._count:
            return {"count": 0}
        values = np.asarray(self._reservoir) * 1e3
        p50, p95, p99 = np.percentile(values, PERCENTILES)
        return {
            "count": int(self._count),
            "mean_ms": float(self._sum / self._count * 1e3),
            "p50_ms": float(p50),
            "p95_ms": float(p95),
            "p99_ms": float(p99),
            "max_ms": float(self._max * 1e3),
        }


class ServeTelemetry:
    """Thread-safe counters and histograms for one serving run.

    Args:
        clock: time source (defaults to the monotonic clock).
        metrics: optional :class:`repro.obs.MetricsRegistry` to publish
            into.  When given, every recording call also lands in the
            exported metric families (``repro_serve_frames_total``,
            ``repro_serve_stage_seconds``, ``repro_serve_batch_size``,
            ``repro_serve_queue_depth``, ``repro_serve_workers_total``)
            so the gateway ``metrics`` verb and ``python -m repro.obs``
            see the same numbers as :meth:`stats`.

    Every recording method bumps a monotonically increasing ``seq``
    (surfaced in :meth:`stats`), so pollers detect "anything changed
    since my last read?" with one integer compare instead of a dict
    diff.
    """

    def __init__(
        self, clock: Clock | None = None, metrics: object | None = None
    ) -> None:
        self.clock = clock or MonotonicClock()
        self._lock = threading.Lock()
        self._seq = 0
        self._m_frames = None
        self._m_stage = None
        self._m_batch = None
        self._m_queue = None
        self._m_workers = None
        if metrics is not None:
            self._m_frames = metrics.counter(
                "repro_serve_frames_total",
                "Frames through the serve pipeline, by outcome.",
                labels=("event",),
            )
            self._m_stage = metrics.histogram(
                "repro_serve_stage_seconds",
                "Per-frame latency by pipeline stage.",
                labels=("stage",),
            )
            self._m_batch = metrics.histogram(
                "repro_serve_batch_size",
                "Frames per dispatched micro-batch.",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
            )
            self._m_queue = metrics.gauge(
                "repro_serve_queue_depth",
                "Last observed depth of the named engine queue.",
                labels=("queue",),
            )
            self._m_workers = metrics.counter(
                "repro_serve_workers_total",
                "Worker-process lifecycle events (sharded engine).",
                labels=("event",),
            )
        self._stages = {
            "queue_wait": LatencyStats(),
            "execute": LatencyStats(),
            "total": LatencyStats(),
        }
        self._shards: dict[object, dict] = {}
        self._batch_sizes = LatencyStats()
        self._queue_high_water: dict[str, int] = {}
        # Control window: parallel accumulators reset on every
        # control_snapshot() read, so the controller reacts to *recent*
        # behaviour instead of run-cumulative percentiles that take
        # forever to move once the run is long.
        self._window_stages = {
            "queue_wait": LatencyStats(),
            "execute": LatencyStats(),
            "total": LatencyStats(),
        }
        self._window_batch_sizes = LatencyStats()
        self._window_frames_in = 0
        self._window_frames_done = 0
        self._window_frames_dropped = 0
        self._queue_last: dict[str, int] = {}
        self._frames_in = 0
        self._frames_done = 0
        self._frames_dropped = 0
        self._first_in: float | None = None
        self._last_done: float | None = None
        self._workers_spawned = 0
        self._workers_exited = 0
        self._workers_restarted = 0
        self._cache_start = tof_plan_cache_stats()
        self._shard_caches: dict[object, dict] = {}

    # -- recording -------------------------------------------------------

    def frame_submitted(self) -> float:
        """Count one ingested frame; returns its submit timestamp."""
        now = self.clock.now()
        with self._lock:
            self._seq += 1
            self._frames_in += 1
            self._window_frames_in += 1
            if self._first_in is None:
                self._first_in = now
        if self._m_frames is not None:
            self._m_frames.inc(event="submitted")
        return now

    def frame_dropped(self, count: int = 1) -> None:
        """Count frames evicted by backpressure."""
        with self._lock:
            self._seq += 1
            self._frames_dropped += count
            self._window_frames_dropped += count
        if self._m_frames is not None:
            self._m_frames.inc(count, event="dropped")

    def batch_done(
        self,
        submit_times: list[float],
        dispatch_time: float,
        done_time: float,
        shard: object | None = None,
        execute_s: float | None = None,
    ) -> None:
        """Record one executed micro-batch's per-frame stage latencies.

        Args:
            submit_times: per-frame submit timestamps (engine clock).
            dispatch_time: when the batch left the scheduler.
            done_time: when its images were available.
            shard: optional worker/shard label; labelled batches also
                land in that shard's own histograms.
            execute_s: compute duration measured *inside* the worker.
                Sharded engines pass this because worker-process clocks
                only share durations, not epochs, with the parent;
                ``None`` falls back to ``done_time - dispatch_time``.
        """
        execute = (
            done_time - dispatch_time if execute_s is None
            else float(execute_s)
        )
        if self._m_batch is not None:
            self._m_batch.observe(len(submit_times))
            for submitted in submit_times:
                total = done_time - submitted
                self._m_stage.observe(
                    max(0.0, total - execute), stage="queue_wait"
                )
                self._m_stage.observe(execute, stage="execute")
                self._m_stage.observe(total, stage="total")
            self._m_frames.inc(len(submit_times), event="done")
        with self._lock:
            self._seq += 1
            self._batch_sizes.record(len(submit_times))
            self._window_batch_sizes.record(len(submit_times))
            shard_stats = None
            if shard is not None:
                shard_stats = self._shards.setdefault(
                    shard,
                    {
                        "frames": 0,
                        "batches": 0,
                        "execute": LatencyStats(),
                        "total": LatencyStats(),
                    },
                )
                shard_stats["batches"] += 1
            for submitted in submit_times:
                total = done_time - submitted
                wait = max(0.0, total - execute)
                self._stages["queue_wait"].record(wait)
                self._stages["execute"].record(execute)
                self._stages["total"].record(total)
                self._window_stages["queue_wait"].record(wait)
                self._window_stages["execute"].record(execute)
                self._window_stages["total"].record(total)
                if shard_stats is not None:
                    shard_stats["frames"] += 1
                    shard_stats["execute"].record(execute)
                    shard_stats["total"].record(total)
            self._frames_done += len(submit_times)
            self._window_frames_done += len(submit_times)
            self._last_done = done_time

    def observe_queue_depth(self, name: str, depth: int) -> None:
        """Track the high-water mark of the named queue."""
        with self._lock:
            self._seq += 1
            previous = self._queue_high_water.get(name, 0)
            self._queue_high_water[name] = max(previous, depth)
            self._queue_last[name] = depth
        if self._m_queue is not None:
            self._m_queue.set(depth, queue=name)

    # -- worker lifecycle ------------------------------------------------

    def worker_spawned(self, count: int = 1) -> None:
        """Count worker processes started (sharded engine)."""
        with self._lock:
            self._seq += 1
            self._workers_spawned += count
        if self._m_workers is not None:
            self._m_workers.inc(count, event="spawned")

    def worker_exited(self, count: int = 1) -> None:
        """Count worker processes observed gone."""
        with self._lock:
            self._seq += 1
            self._workers_exited += count
        if self._m_workers is not None:
            self._m_workers.inc(count, event="exited")

    def worker_restarted(self, count: int = 1) -> None:
        """Count crashed workers that were respawned."""
        with self._lock:
            self._seq += 1
            self._workers_restarted += count
        if self._m_workers is not None:
            self._m_workers.inc(count, event="restarted")

    def shard_plan_cache(self, shard: object, stats: dict) -> None:
        """Fold a worker-local ToF-plan-cache *delta* into a shard.

        Workers report per-run deltas (traffic since their previous
        ``end_run``); accumulation handles a restarted shard reporting
        twice within one run (old incarnation + replacement).
        """
        with self._lock:
            self._seq += 1
            entry = self._shard_caches.setdefault(
                shard, {"hits": 0, "misses": 0}
            )
            entry["hits"] += stats.get("hits", 0)
            entry["misses"] += stats.get("misses", 0)

    # -- reporting -------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate view of the run so far (JSON-serializable)."""
        cache_now = tof_plan_cache_stats()
        with self._lock:
            hits = cache_now["hits"] - self._cache_start["hits"]
            misses = cache_now["misses"] - self._cache_start["misses"]
            for shard_cache in self._shard_caches.values():
                hits += shard_cache.get("hits", 0)
                misses += shard_cache.get("misses", 0)
            lookups = hits + misses
            elapsed = None
            throughput = None
            if self._first_in is not None and self._last_done is not None:
                elapsed = self._last_done - self._first_in
                if elapsed > 0:
                    throughput = self._frames_done / elapsed
            batches = self._batch_sizes
            return {
                # Staleness signal: bumped by every recording call, so
                # pollers compare one integer instead of diffing dicts.
                "seq": self._seq,
                "frames_in": self._frames_in,
                "frames_done": self._frames_done,
                "frames_dropped": self._frames_dropped,
                "elapsed_s": elapsed,
                "throughput_frames_per_s": throughput,
                "batches": batches.count,
                "mean_batch_size": (
                    batches._sum / batches.count if batches.count else None
                ),
                "max_batch_size": (
                    int(batches._max) if batches.count else None
                ),
                "stages": {
                    name: stats.snapshot()
                    for name, stats in self._stages.items()
                },
                "shards": {
                    str(shard): {
                        "frames": entry["frames"],
                        "batches": entry["batches"],
                        "execute": entry["execute"].snapshot(),
                        "total": entry["total"].snapshot(),
                    }
                    for shard, entry in sorted(
                        self._shards.items(), key=lambda item: str(item[0])
                    )
                },
                "workers": {
                    "spawned": self._workers_spawned,
                    "exited": self._workers_exited,
                    "restarts": self._workers_restarted,
                    "live": max(
                        0, self._workers_spawned - self._workers_exited
                    ),
                },
                "queue_high_water": dict(self._queue_high_water),
                "plan_cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": (hits / lookups) if lookups else None,
                },
            }

    def control_snapshot(self) -> dict:
        """Windowed view for the control loop; resets the window.

        Unlike :meth:`stats` (run-cumulative, for reports and the
        ``stats`` endpoint), this returns only what happened since the
        *previous* ``control_snapshot`` call — stage percentiles, frame
        counts, batch sizes — plus the last-observed depth of each
        engine queue and the cumulative plan-cache hit rate.  Cumulative
        percentiles barely move once a run is minutes old; a controller
        steering on them would never see its own actions take effect.
        Reset-on-read makes the snapshot a per-tick measurement, which
        is what the :class:`~repro.serve.control.ServoController`
        integrates over.  One reader at a time: two pollers would halve
        each other's windows.
        """
        with self._lock:
            self._seq += 1
            batches = self._window_batch_sizes
            snapshot = {
                "seq": self._seq,
                "frames_in": self._window_frames_in,
                "frames_done": self._window_frames_done,
                "frames_dropped": self._window_frames_dropped,
                "batches": batches.count,
                "mean_batch_size": (
                    batches._sum / batches.count
                    if batches.count else None
                ),
                "stages": {
                    name: stats.snapshot()
                    for name, stats in self._window_stages.items()
                },
                "queue_depth": dict(self._queue_last),
            }
            self._window_stages = {
                name: LatencyStats() for name in self._window_stages
            }
            self._window_batch_sizes = LatencyStats()
            self._window_frames_in = 0
            self._window_frames_done = 0
            self._window_frames_dropped = 0
        cache_now = tof_plan_cache_stats()
        hits = cache_now["hits"] - self._cache_start["hits"]
        misses = cache_now["misses"] - self._cache_start["misses"]
        lookups = hits + misses
        snapshot["plan_cache_hit_rate"] = (
            hits / lookups if lookups else None
        )
        return snapshot

    def log_line(self) -> str:
        """One-line progress summary for the periodic serve log."""
        stats = self.stats()
        total = stats["stages"]["total"]
        throughput = stats["throughput_frames_per_s"]
        hit_rate = stats["plan_cache"]["hit_rate"]
        rate = (
            f"{throughput:.2f} frames/s" if throughput else "warming up"
        )
        hits = f"{hit_rate:.0%}" if hit_rate is not None else "n/a"
        line = (
            f"served {stats['frames_done']}/{stats['frames_in']} frames "
            f"({stats['frames_dropped']} dropped) | {rate} | "
            f"latency p50/p95/p99 "
            f"{total.get('p50_ms', 0.0):.1f}/"
            f"{total.get('p95_ms', 0.0):.1f}/"
            f"{total.get('p99_ms', 0.0):.1f} ms | "
            f"mean batch {stats['mean_batch_size'] or 0:.1f} | "
            f"plan-cache hit rate {hits}"
        )
        workers = stats["workers"]
        if workers["spawned"]:
            line += (
                f" | workers {workers['live']}/{workers['spawned']} live"
                f" ({workers['restarts']} restarts)"
            )
        return line
