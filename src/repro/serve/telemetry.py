"""Serving observability: per-stage latency, throughput, queue depth.

One :class:`ServeTelemetry` instance rides along a serving run.  Every
frame contributes to three stage histograms —

* ``queue_wait`` — submit → micro-batch dispatch,
* ``execute`` — batch dispatch → beamformed,
* ``total`` — submit → beamformed,

plus batch-size and queue-depth gauges and the ToF-plan-cache hit rate
over the run.  The hit rate is a delta against the process-wide cache
counters, so earlier runs don't pollute it — but it attributes *all*
cache traffic during the run to this run: concurrent serving runs (or a
mid-run ``clear_tof_plan_cache``) will skew the reported rate.  Run one
engine at a time when the hit rate matters.  ``stats()`` returns the
whole picture
as one dict (the shape serialized into ``BENCH_serve.json``);
``log_line()`` compresses it into the periodic one-liner the engine
logs.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.beamform.tof import tof_plan_cache_stats
from repro.serve.clock import Clock, MonotonicClock

PERCENTILES = (50.0, 95.0, 99.0)


class LatencyStats:
    """Streaming latency accumulator with percentile snapshots."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self._samples)

    def snapshot(self) -> dict:
        """``{count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}``."""
        if not self._samples:
            return {"count": 0}
        values = np.asarray(self._samples) * 1e3
        p50, p95, p99 = np.percentile(values, PERCENTILES)
        return {
            "count": int(values.size),
            "mean_ms": float(values.mean()),
            "p50_ms": float(p50),
            "p95_ms": float(p95),
            "p99_ms": float(p99),
            "max_ms": float(values.max()),
        }


class ServeTelemetry:
    """Thread-safe counters and histograms for one serving run."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or MonotonicClock()
        self._lock = threading.Lock()
        self._stages = {
            "queue_wait": LatencyStats(),
            "execute": LatencyStats(),
            "total": LatencyStats(),
        }
        self._batch_sizes: list[int] = []
        self._queue_high_water: dict[str, int] = {}
        self._frames_in = 0
        self._frames_done = 0
        self._frames_dropped = 0
        self._first_in: float | None = None
        self._last_done: float | None = None
        self._cache_start = tof_plan_cache_stats()

    # -- recording -------------------------------------------------------

    def frame_submitted(self) -> float:
        """Count one ingested frame; returns its submit timestamp."""
        now = self.clock.now()
        with self._lock:
            self._frames_in += 1
            if self._first_in is None:
                self._first_in = now
        return now

    def frame_dropped(self, count: int = 1) -> None:
        with self._lock:
            self._frames_dropped += count

    def batch_done(
        self,
        submit_times: list[float],
        dispatch_time: float,
        done_time: float,
    ) -> None:
        """Record one executed micro-batch's per-frame stage latencies."""
        with self._lock:
            self._batch_sizes.append(len(submit_times))
            for submitted in submit_times:
                self._stages["queue_wait"].record(
                    dispatch_time - submitted
                )
                self._stages["execute"].record(done_time - dispatch_time)
                self._stages["total"].record(done_time - submitted)
            self._frames_done += len(submit_times)
            self._last_done = done_time

    def observe_queue_depth(self, name: str, depth: int) -> None:
        with self._lock:
            previous = self._queue_high_water.get(name, 0)
            self._queue_high_water[name] = max(previous, depth)

    # -- reporting -------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate view of the run so far (JSON-serializable)."""
        cache_now = tof_plan_cache_stats()
        with self._lock:
            hits = cache_now["hits"] - self._cache_start["hits"]
            misses = cache_now["misses"] - self._cache_start["misses"]
            lookups = hits + misses
            elapsed = None
            throughput = None
            if self._first_in is not None and self._last_done is not None:
                elapsed = self._last_done - self._first_in
                if elapsed > 0:
                    throughput = self._frames_done / elapsed
            sizes = np.asarray(self._batch_sizes) if self._batch_sizes \
                else np.zeros(0)
            return {
                "frames_in": self._frames_in,
                "frames_done": self._frames_done,
                "frames_dropped": self._frames_dropped,
                "elapsed_s": elapsed,
                "throughput_frames_per_s": throughput,
                "batches": int(sizes.size),
                "mean_batch_size": (
                    float(sizes.mean()) if sizes.size else None
                ),
                "max_batch_size": (
                    int(sizes.max()) if sizes.size else None
                ),
                "stages": {
                    name: stats.snapshot()
                    for name, stats in self._stages.items()
                },
                "queue_high_water": dict(self._queue_high_water),
                "plan_cache": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": (hits / lookups) if lookups else None,
                },
            }

    def log_line(self) -> str:
        """One-line progress summary for the periodic serve log."""
        stats = self.stats()
        total = stats["stages"]["total"]
        throughput = stats["throughput_frames_per_s"]
        hit_rate = stats["plan_cache"]["hit_rate"]
        rate = (
            f"{throughput:.2f} frames/s" if throughput else "warming up"
        )
        hits = f"{hit_rate:.0%}" if hit_rate is not None else "n/a"
        return (
            f"served {stats['frames_done']}/{stats['frames_in']} frames "
            f"({stats['frames_dropped']} dropped) | {rate} | "
            f"latency p50/p95/p99 "
            f"{total.get('p50_ms', 0.0):.1f}/"
            f"{total.get('p95_ms', 0.0):.1f}/"
            f"{total.get('p99_ms', 0.0):.1f} ms | "
            f"mean batch {stats['mean_batch_size'] or 0:.1f} | "
            f"plan-cache hit rate {hits}"
        )
