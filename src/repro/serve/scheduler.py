"""Geometry-aware micro-batching: the serving scheduler's core.

:class:`MicroBatcher` holds in-flight frames grouped by acquisition
geometry (:func:`repro.api.base.dataset_plan_key`, the same identity the
ToF-plan cache keys on) and decides *when* a group becomes a dispatchable
:class:`MicroBatch`:

* **flush on max_batch** — a group that reaches ``max_batch`` frames is
  emitted immediately (throughput: a full stacked forward),
* **flush on deadline** — a group whose oldest frame has waited
  ``max_latency_s`` is emitted regardless of size (latency: no frame
  waits for company forever),
* **flush on demand** — :meth:`flush` drains everything (shutdown).

Grouping by geometry is what makes batches *useful*: every frame in a
batch resolves to the same cached :class:`~repro.beamform.tof.TofPlan`,
and learned adapters can stack the whole batch through one model
forward (`Beamformer.beamform_batch`).

The class is deliberately single-threaded — a pure data structure over
an injected :class:`~repro.serve.clock.Clock` — so the flush rules are
testable with a fake clock and no sleeps.  Thread ownership lives in
:class:`repro.serve.engine.ServeEngine`.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.api.base import dataset_plan_key
from repro.serve.clock import Clock, MonotonicClock


@dataclass(frozen=True)
class PendingFrame:
    """One submitted frame awaiting batch dispatch.

    ``trace`` is the frame's :class:`repro.obs.Trace` when the frame
    was sampled for tracing (``None`` otherwise — the common case);
    it rides the frame through the scheduler so downstream stages can
    attach their spans.  Equality/hashing stay identity-free of it:
    the dataclass compares by field values and traces are per-frame
    objects, which is fine — frames are never compared in the
    pipeline.
    """

    seq: int
    dataset: Any
    submitted_at: float
    trace: Any = None


@dataclass(frozen=True)
class MicroBatch:
    """A dispatchable group of same-geometry frames.

    Attributes:
        frames: the member frames, in submission order.
        geometry: shared ``dataset_plan_key`` of every member.
        formed_at: scheduler time at which the batch was emitted.
        reason: what triggered the flush — ``"max_batch"``,
            ``"deadline"`` or ``"flush"``.
    """

    frames: tuple[PendingFrame, ...]
    geometry: tuple = field(repr=False)
    formed_at: float = 0.0
    reason: str = "flush"

    def __len__(self) -> int:
        return len(self.frames)


SHARD_POLICIES = ("round_robin", "geometry")


class ShardRouter:
    """Assign dispatched micro-batches to one of ``n_shards`` workers.

    Policies:

    * ``"round_robin"`` (default) — batches rotate across shards in
      dispatch order.  Best load balance, and the right choice for the
      common serving pattern of one hot geometry: consecutive batches of
      the same stream land on *different* workers and execute in
      parallel.
    * ``"geometry"`` — a batch's geometry key (stably hashed) pins it to
      one shard.  Every frame of a given acquisition geometry hits the
      same worker, so each worker's ToF-plan cache holds only its own
      geometries — the precursor to per-probe shard affinity for
      multi-probe fan-out, at the cost of imbalance when one geometry
      dominates.

    The *active shard set* is runtime-mutable: :meth:`set_shards`
    replaces it in one atomic tuple assignment, so the engine (or the
    :class:`~repro.serve.control.ServoController` behind it) can retire
    a draining worker or admit a freshly spawned one without pausing
    dispatch.  ``route`` reads the tuple once per call; beyond that the
    router is a pure function plus one counter, owned by the engine's
    batcher thread.
    """

    def __init__(self, n_shards: int, policy: str = "round_robin") -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if policy not in SHARD_POLICIES:
            raise ValueError(
                f"policy must be one of {SHARD_POLICIES}, got {policy!r}"
            )
        self.policy = policy
        self._shards: tuple[int, ...] = tuple(range(n_shards))
        self._next = 0

    @property
    def n_shards(self) -> int:
        """Number of currently routable shards."""
        return len(self._shards)

    @property
    def shards(self) -> tuple[int, ...]:
        """The active shard ids, ascending."""
        return self._shards

    def set_shards(self, shards) -> None:
        """Replace the active shard set (live worker add/retire).

        The new set is sorted and installed as a single tuple
        assignment, so a concurrent ``route`` sees either the old or
        the new set, never a partial one.  Geometry pinning is over the
        sorted tuple, so a given geometry stays on one shard *for a
        given set*; retiring a shard remaps only the geometries that
        hashed onto removed or shifted positions.
        """
        shards = tuple(sorted(set(int(shard) for shard in shards)))
        if not shards:
            raise ValueError("active shard set must not be empty")
        self._shards = shards

    def route(self, batch: MicroBatch) -> int:
        """Shard id (a member of :attr:`shards`) for one batch."""
        shards = self._shards  # one read: set_shards may swap it
        if self.policy == "geometry":
            return shards[_stable_hash(batch.geometry) % len(shards)]
        shard = shards[self._next % len(shards)]
        self._next = (self._next + 1) % len(shards)
        return shard


def _stable_hash(key: tuple) -> int:
    """Process-stable hash over a geometry key's byte content.

    ``hash()`` on bytes is randomized per interpreter (PYTHONHASHSEED),
    which would make geometry→shard placement differ between a parent
    and its spawned children or across restarts; shard placement should
    be a property of the *geometry*, not of the process.  ``crc32``
    runs at C speed — the key embeds the grid axes' raw bytes
    (tens of KiB), and this runs per dispatched batch on the batcher
    thread.
    """
    acc = 0
    for part in key:
        payload = (
            part if isinstance(part, bytes) else repr(part).encode()
        )
        acc = zlib.crc32(payload, acc)
    return acc


class MicroBatcher:
    """Accumulate frames into geometry-keyed micro-batches.

    Args:
        max_batch: emit a group as soon as it holds this many frames.
        max_latency_s: emit a group once its *oldest* frame has waited
            this long, full or not.
        clock: time source (fake in tests).

    Both limits are runtime-mutable via :meth:`set_limits` — the
    adaptive-batching controller tightens the deadline or grows the
    batch cap mid-stream.  The limits are only ever *read* at flush
    decisions (``ready``/``flush``/``next_deadline``), so a limit
    change can never drop or double-emit a pending frame: pending
    frames simply flush under the new rules on the next decision.
    """

    def __init__(
        self,
        max_batch: int = 4,
        max_latency_s: float = 0.025,
        clock: Clock | None = None,
    ) -> None:
        self._validate_limits(max_batch, max_latency_s)
        self.max_batch = max_batch
        self.max_latency_s = max_latency_s
        self.clock = clock or MonotonicClock()
        # Geometry key -> frames in submission order.  Ordered so that
        # deadline scanning visits longest-waiting groups first.
        self._groups: "OrderedDict[tuple, list[PendingFrame]]" = (
            OrderedDict()
        )
        self._seq = 0

    @staticmethod
    def _validate_limits(max_batch: int, max_latency_s: float) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_latency_s < 0:
            raise ValueError(
                f"max_latency_s must be >= 0, got {max_latency_s}"
            )

    def set_limits(
        self,
        max_batch: int | None = None,
        max_latency_s: float | None = None,
    ) -> None:
        """Change the flush limits of a live scheduler.

        Validated with the constructor's rules, then applied as two
        plain attribute assignments — the batcher thread re-reads the
        limits at every flush decision, so the change takes effect on
        the next ``ready``/``next_deadline`` call.  A deadline *cut*
        can make already-pending groups instantly overdue (they flush
        on the next ``ready``), and a ``max_batch`` cut below a pending
        group's size chunk-emits that group — in either case every
        pending frame is emitted exactly once.
        """
        new_batch = self.max_batch if max_batch is None else max_batch
        new_latency = (
            self.max_latency_s if max_latency_s is None else max_latency_s
        )
        self._validate_limits(new_batch, new_latency)
        self.max_batch = new_batch
        self.max_latency_s = new_latency

    @property
    def pending(self) -> int:
        """Frames currently held, across all geometry groups."""
        return sum(len(group) for group in self._groups.values())

    @property
    def pending_groups(self) -> int:
        """Distinct geometries currently held."""
        return len(self._groups)

    def submit(self, dataset, submitted_at: float | None = None
               ) -> PendingFrame:
        """Add one frame; returns its :class:`PendingFrame` record."""
        frame = PendingFrame(
            seq=self._seq,
            dataset=dataset,
            submitted_at=(
                self.clock.now() if submitted_at is None else submitted_at
            ),
        )
        self._seq += 1
        self.add(frame)
        return frame

    def add(self, frame: PendingFrame) -> None:
        """Add a frame whose ``seq``/timestamp the caller already owns
        (the engine assigns sequence numbers at ingest so frames dropped
        by backpressure are still accounted for)."""
        key = dataset_plan_key(frame.dataset)
        self._groups.setdefault(key, []).append(frame)

    def _emit(
        self, key: tuple, count: int, now: float, reason: str
    ) -> MicroBatch:
        group = self._groups[key]
        members, rest = group[:count], group[count:]
        if rest:
            self._groups[key] = rest
        else:
            del self._groups[key]
        return MicroBatch(
            frames=tuple(members),
            geometry=key,
            formed_at=now,
            reason=reason,
        )

    def ready(self, now: float | None = None) -> list[MicroBatch]:
        """Batches due at ``now``: full groups first, then expired ones.

        Expired (deadline) batches are emitted oldest-first so the frame
        that has waited longest is always dispatched first.
        """
        now = self.clock.now() if now is None else now
        batches: list[MicroBatch] = []
        for key in list(self._groups):
            while (
                key in self._groups
                and len(self._groups[key]) >= self.max_batch
            ):
                batches.append(
                    self._emit(key, self.max_batch, now, "max_batch")
                )
        expired = sorted(
            (
                (group[0].submitted_at, key)
                for key, group in self._groups.items()
                if now - group[0].submitted_at >= self.max_latency_s
            ),
            # Sort by timestamp only: geometry keys contain probe
            # objects that do not define an ordering, and timestamp
            # ties are routine under a fake clock.
            key=lambda item: item[0],
        )
        for _, key in expired:
            batches.append(
                self._emit(key, len(self._groups[key]), now, "deadline")
            )
        return batches

    def flush(self, now: float | None = None) -> list[MicroBatch]:
        """Drain every pending frame (shutdown), oldest group first."""
        now = self.clock.now() if now is None else now
        batches = []
        for key in list(self._groups):
            while key in self._groups:
                count = min(self.max_batch, len(self._groups[key]))
                batches.append(self._emit(key, count, now, "flush"))
        return batches

    def next_deadline(self) -> float | None:
        """Earliest time a pending group must flush (None when empty)."""
        if not self._groups:
            return None
        oldest = min(
            group[0].submitted_at for group in self._groups.values()
        )
        return oldest + self.max_latency_s
