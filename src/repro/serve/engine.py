"""The streaming beamforming engine: source → scheduler → workers → sink.

:class:`ServeEngine` turns any :class:`~repro.api.base.Beamformer` into
a live pipeline:

::

    FrameSource ──▶ ingest queue ──▶ MicroBatcher ──▶ batch queue ──▶ worker pool ──▶ sink
     (caller thread)  (backpressure)  (batcher thread)   (bounded)     (N threads)     (callback)

* The **caller thread** iterates the source and enqueues frames.  The
  ingest queue's backpressure policy decides what happens when the
  pipeline falls behind: ``"block"`` (lossless) or ``"drop_oldest"``
  (bounded latency, dropped frames are reported by sequence number).
* The **batcher thread** owns the :class:`MicroBatcher` — it drains the
  ingest queue, groups frames by acquisition geometry and dispatches
  micro-batches on ``max_batch``/``max_latency_ms``.
* **Workers** execute ``beamformer.beamform_batch`` on each micro-batch
  (same-geometry frames: one cached ToF plan, one stacked model forward)
  and deliver images to the sink callback and the result table.
* Pipelining is the point: while a worker beamforms, the caller thread
  is already waiting on (or simulating) the *next* frames, so
  acquisition time and compute overlap instead of adding up.

Shutdown is graceful by construction: when the source ends, the ingest
queue closes, the batcher flushes every pending frame, workers drain the
batch queue and exit on sentinels — no frame is lost (asserted by the
tier-1 serve tests).

Output parity: frames are normalized per frame and batch forwards are
batch-invariant (see ``repro.nn.layers.dense``), so a served image is
bit-for-bit identical to ``beamformer.beamform(frame)`` offline.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.api.base import Beamformer
from repro.obs import Observability
from repro.serve.clock import Clock, MonotonicClock
from repro.serve.queues import (
    BACKPRESSURE_POLICIES,
    BoundedQueue,
    QueueClosed,
    QueueTimeout,
)
from repro.serve.scheduler import MicroBatch, MicroBatcher, PendingFrame
from repro.serve.telemetry import ServeTelemetry

logger = logging.getLogger("repro.serve")

#: Sink callback signature: ``(seq, dataset, iq_image) -> None``.
Sink = Callable[[int, object, np.ndarray], None]

#: Broadcast shutdown marker: each worker re-puts it before exiting, so
#: one token terminates however many workers are live at shutdown time
#: (the pool size is runtime-mutable; a counted sentinel scheme would
#: race against add/retire).
_SHUTDOWN = object()

#: Targeted retire marker: consumed by exactly *one* worker, which
#: exits without re-putting.  FIFO ordering gives drain-before-exit for
#: free — every batch queued before the retire is executed first.
_RETIRE = object()


def run_batcher(
    ingest: BoundedQueue,
    dispatch: Callable[[MicroBatch], None],
    scheduler: MicroBatcher,
) -> None:
    """Drain ``ingest`` through ``scheduler`` until the queue closes.

    The scheduling loop shared by the threaded :class:`ServeEngine` and
    the process-sharded :class:`~repro.serve.sharding.ShardedServeEngine`
    — both batch identically; they differ only in what ``dispatch`` does
    with a due :class:`MicroBatch` (local queue vs worker-process
    transport).  The scheduler is owned (and supplied) by the engine so
    its limits stay reachable — and runtime-mutable via
    ``engine.set_batching`` — while the loop runs; its flush limits are
    re-read on every decision.  Returns after the closing flush has
    dispatched every pending frame; exceptions (from keying a frame or
    from ``dispatch``) propagate to the caller, which owns thread-death
    handling.
    """
    clock = scheduler.clock
    while True:
        deadline = scheduler.next_deadline()
        timeout = (
            None if deadline is None
            else max(0.0, deadline - clock.now())
        )
        try:
            scheduler.add(ingest.get(timeout=timeout))
            # Opportunistically drain whatever else already arrived so
            # a burst becomes one batch, not max_batch batches — but
            # never hold more than a batch's worth of frames:
            # backpressure must build in the *bounded* ingest queue,
            # not in the scheduler.
            while (
                len(ingest) > 0
                and scheduler.pending < scheduler.max_batch
            ):
                try:
                    scheduler.add(ingest.get(timeout=0.0))
                except (QueueTimeout, QueueClosed):
                    break
        except QueueTimeout:
            pass  # a deadline expired; ready() flushes it below
        except QueueClosed:
            for batch in scheduler.flush():
                dispatch(batch)
            return
        for batch in scheduler.ready():
            dispatch(batch)


def pump_source(
    source: Iterable,
    ingest: BoundedQueue,
    telemetry: ServeTelemetry,
    dropped: list[int],
    tracer=None,
    events=None,
) -> int:
    """Feed ``source`` into the ingest queue; the producer half of serve.

    Shared by both engines: assigns sequence numbers, applies the
    queue's backpressure policy (recording evictions in ``dropped`` and
    telemetry), and stops early if the queue is closed under it (a dead
    batcher must stop the producer, not deadlock it).  Returns the
    number of frames submitted.  The caller still owns ``ingest.close``
    — typically in a ``finally`` so shutdown happens on source errors
    too.

    Tracing: a dataset that already carries a ``trace`` attribute (the
    gateway attaches one at ingress) keeps it; otherwise ``tracer``
    (when given) decides per frame whether to sample a fresh
    engine-owned trace.  Evicted frames' traces finish immediately
    with ``status="dropped"`` and the eviction lands in ``events``.
    """
    seq = 0
    for dataset in source:
        submitted_at = telemetry.frame_submitted()
        trace = getattr(dataset, "trace", None)
        if trace is None and tracer is not None:
            trace = tracer.start_trace(
                "frame", start=submitted_at, owner="engine", seq=seq
            )
        frame = PendingFrame(
            seq=seq, dataset=dataset, submitted_at=submitted_at,
            trace=trace,
        )
        seq += 1
        try:
            evicted = ingest.put(frame)
        except QueueClosed:
            # The consumer side failed and closed the queue; stop
            # ingesting and let the caller surface its exception.
            if trace is not None:
                trace.finish(status="queue_closed")
            break
        if evicted is not None:
            dropped.append(evicted.seq)
            telemetry.frame_dropped()
            if events is not None:
                events.emit("drop_oldest", seq=evicted.seq)
            if evicted.trace is not None:
                evicted.trace.finish(status="dropped")
        telemetry.observe_queue_depth("ingest", len(ingest))
    return seq


@dataclass
class ServeReport:
    """Outcome of one :meth:`ServeEngine.serve` run.

    Attributes:
        images: per-frame complex IQ images indexed by submission
            sequence; ``None`` where the frame was dropped by
            backpressure.
        dropped: sequence numbers evicted under ``drop_oldest``.
        stats: the run's telemetry dict
            (:meth:`~repro.serve.telemetry.ServeTelemetry.stats`).
    """

    images: list[np.ndarray | None]
    dropped: list[int]
    stats: dict

    @property
    def completed(self) -> int:
        """Number of frames that produced an image this run."""
        return sum(image is not None for image in self.images)


class ServeEngine:
    """Micro-batching streaming executor over one beamformer.

    Args:
        beamformer: any :class:`~repro.api.base.Beamformer`.
        max_batch: micro-batch size cap (scheduler flush trigger).
        max_latency_ms: batching deadline — no frame waits longer than
            this for its batch to fill.
        queue_capacity: ingest queue bound (backpressure kicks in here).
        backpressure: ``"block"`` or ``"drop_oldest"``.
        n_workers: beamforming worker threads.  NumPy releases the GIL
            inside its kernels, so workers overlap on multicore hosts;
            on a single core they still overlap compute with ingest
            waits.
        clock: time source.  The engine runs real threads, so only a
            monotonic clock makes sense here; the injectable parameter
            exists for telemetry determinism in tests.
        log_every_s: period of the telemetry log line (0 disables).
        keep_images: retain every result for :attr:`ServeReport.images`
            (the default).  Long-running push consumers — the network
            gateway — set this ``False`` so an unbounded run holds no
            per-frame state: images are delivered to the sink only and
            the report's ``images`` entries stay ``None``.
        observability: optional :class:`repro.obs.Observability` bundle
            (metrics registry, tracer, event log, flight recorder).
            Default: a private bundle on the engine clock with tracing
            disabled — always wired, near-zero cost.  Share one bundle
            between the engine and a gateway so both publish into the
            same exported registry.
    """

    def __init__(
        self,
        beamformer: Beamformer,
        max_batch: int = 4,
        max_latency_ms: float = 25.0,
        queue_capacity: int = 64,
        backpressure: str = "block",
        n_workers: int = 1,
        clock: Clock | None = None,
        log_every_s: float = 10.0,
        keep_images: bool = True,
        observability: Observability | None = None,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}"
            )
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.beamformer = beamformer
        self.max_batch = max_batch
        self.max_latency_ms = max_latency_ms
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        self.n_workers = n_workers
        self.clock = clock or MonotonicClock()
        self.log_every_s = log_every_s
        self.keep_images = keep_images
        self.obs = observability or Observability.create(clock=self.clock)
        self._run_errors: list[BaseException] = []
        # Live worker-pool state: the scheduler and run context exist
        # only while serve() runs; the registry accumulates every
        # thread started for the current run (including retired ones —
        # join()ing a finished thread is free).  Guarded by
        # _workers_lock, which orders add/retire against shutdown.
        self._scheduler: MicroBatcher | None = None
        self._run_ctx: dict | None = None
        self._worker_threads: list[threading.Thread] = []
        self._workers_lock = threading.Lock()
        self._live_workers = 0
        self._worker_seq = 0

    @property
    def broken(self) -> bool:
        """True once a stage of the current run has failed.

        The engine's error contract defers the raise to the end of the
        run (failed workers keep draining so nothing deadlocks), but a
        push-style caller with a potentially unbounded source — the
        gateway — needs to *see* the failure to stop feeding; it polls
        this, mirroring :attr:`ShardedServeEngine.broken
        <repro.serve.sharding.ShardedServeEngine.broken>`.  Unlike the
        sharded engine's flag this one resets on the next ``serve``
        call (a threaded run failure does not poison the engine).
        """
        return bool(self._run_errors)

    # -- runtime control -------------------------------------------------

    def set_batching(
        self,
        max_batch: int | None = None,
        max_latency_ms: float | None = None,
    ) -> None:
        """Adjust micro-batching limits, live when a run is active.

        The new values are validated together, stored on the engine
        (they seed the next run's scheduler) and pushed into the
        current run's :class:`MicroBatcher`, whose limits are re-read
        at every flush decision.  A deadline cut takes effect at the
        batcher's next wake-up — bounded by one *old* deadline when it
        is mid-wait — and never drops or double-emits a pending frame.
        """
        new_batch = self.max_batch if max_batch is None else max_batch
        new_latency = (
            self.max_latency_ms if max_latency_ms is None
            else max_latency_ms
        )
        MicroBatcher._validate_limits(new_batch, new_latency / 1e3)
        self.max_batch = new_batch
        self.max_latency_ms = new_latency
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler.set_limits(
                max_batch=new_batch, max_latency_s=new_latency / 1e3
            )

    @property
    def live_workers(self) -> int:
        """Worker threads currently executing batches."""
        with self._workers_lock:
            return self._live_workers

    def add_worker(self) -> bool:
        """Start one more worker thread on the current run.

        Returns ``False`` when no run is active (the pool only exists
        inside :meth:`serve`).  The new thread joins the shared batch
        queue immediately — there is no warm-up handshake for a thread.
        """
        with self._workers_lock:
            ctx = self._run_ctx
            if ctx is None:
                return False
            self._start_worker(ctx)
        ctx["telemetry"].worker_spawned()
        self.obs.events.emit("worker_added", engine="threaded")
        return True

    def retire_worker(self) -> bool:
        """Retire one worker thread, draining queued batches first.

        A ``_RETIRE`` token is queued *behind* every already-dispatched
        batch (FIFO), so the worker that consumes it has nothing left
        to execute; exactly one worker exits.  Refused (``False``) when
        it would empty the pool or no run is active.
        """
        with self._workers_lock:
            ctx = self._run_ctx
            if ctx is None or self._live_workers <= 1:
                return False
            # Reserve the slot under the lock so concurrent retires
            # cannot race the pool below one worker.
            self._live_workers -= 1
        ctx["batches"].put(_RETIRE)
        self.obs.events.emit("worker_retired", engine="threaded")
        return True

    def _start_worker(self, ctx: dict) -> threading.Thread:
        """Spawn + register one worker thread (_workers_lock held)."""
        self._worker_seq += 1
        thread = threading.Thread(
            target=self._worker_loop,
            args=(ctx,),
            name=f"serve-worker-{self._worker_seq}",
            daemon=True,
        )
        self._worker_threads.append(thread)
        self._live_workers += 1
        thread.start()
        return thread

    # -- pipeline stages -------------------------------------------------

    def _batcher_loop(
        self,
        scheduler: MicroBatcher,
        ingest: BoundedQueue,
        batches: BoundedQueue,
        telemetry: ServeTelemetry,
        errors: list[BaseException],
    ) -> None:
        """Drain ingest into the scheduler; dispatch due micro-batches.

        Wrapped so that *any* failure (e.g. a frame whose geometry
        cannot be keyed) still closes the ingest queue — unblocking the
        producer — and still delivers the shutdown token: a dead
        batcher must degrade into a raised exception, never a deadlock.
        """

        def dispatch(batch: MicroBatch) -> None:
            batches.put(batch)
            telemetry.observe_queue_depth("batch", len(batches))

        try:
            run_batcher(ingest, dispatch, scheduler)
        except BaseException as exc:  # re-raised by serve() after join
            errors.append(exc)
            ingest.close()
        finally:
            # One token shuts down the whole pool: each worker re-puts
            # it before exiting, so the broadcast reaches however many
            # workers are live — including any added mid-run.
            batches.put(_SHUTDOWN)

    def _worker_loop(self, ctx: dict) -> None:
        """Execute micro-batches until a shutdown/retire token arrives.

        A failed worker keeps *draining* its queue (discarding batches)
        rather than exiting: with a dead consumer the batcher's blocking
        dispatch — and behind it the ingest thread — would deadlock.
        The recorded exception is re-raised by :meth:`serve` after
        shutdown.
        """
        batches: BoundedQueue = ctx["batches"]
        results: dict[int, np.ndarray] = ctx["results"]
        results_lock: threading.Lock = ctx["results_lock"]
        telemetry: ServeTelemetry = ctx["telemetry"]
        sink: Sink | None = ctx["sink"]
        errors: list[BaseException] = ctx["errors"]
        log_state: dict = ctx["log_state"]
        failed = False
        while True:
            batch = batches.get()
            if batch is _SHUTDOWN:
                batches.put(_SHUTDOWN)  # pass it on to the next worker
                with self._workers_lock:
                    self._live_workers -= 1
                return
            if batch is _RETIRE:
                # retire_worker() already released the live slot.
                telemetry.worker_exited()
                return
            if failed:
                continue
            dispatch_time = self.clock.now()
            datasets = [frame.dataset for frame in batch.frames]
            try:
                images = self.beamformer.beamform_batch(datasets)
                done_time = self.clock.now()
                if self.keep_images:
                    with results_lock:
                        for frame, image in zip(batch.frames, images):
                            results[frame.seq] = image
                telemetry.batch_done(
                    [frame.submitted_at for frame in batch.frames],
                    dispatch_time,
                    done_time,
                )
                for frame in batch.frames:
                    if frame.trace is not None:
                        frame.trace.add_span(
                            "queue_wait", frame.submitted_at, dispatch_time
                        )
                        frame.trace.add_span(
                            "execute", dispatch_time, done_time,
                            batch_size=len(batch.frames),
                        )
                if sink is not None:
                    for frame, image in zip(batch.frames, images):
                        sink(frame.seq, frame.dataset, image)
                for frame in batch.frames:
                    # The gateway finishes its own traces at response
                    # delivery; engine-owned ones end with the sink.
                    if (
                        frame.trace is not None
                        and frame.trace.owner == "engine"
                    ):
                        frame.trace.finish(status="ok")
            except BaseException as exc:  # propagated after join
                with results_lock:
                    errors.append(exc)
                failed = True
                continue
            self._maybe_log(telemetry, log_state)

    def _maybe_log(self, telemetry: ServeTelemetry, state: dict) -> None:
        if self.log_every_s <= 0:
            return
        now = self.clock.now()
        with state["lock"]:
            if now - state["last"] < self.log_every_s:
                return
            state["last"] = now
        logger.info(telemetry.log_line())

    # -- entry point -----------------------------------------------------

    def serve(
        self,
        source: Iterable,
        sink: Sink | None = None,
        telemetry: ServeTelemetry | None = None,
    ) -> ServeReport:
        """Run the pipeline over ``source`` until it is exhausted.

        Args:
            source: any iterable of plane-wave datasets (typically a
                :class:`~repro.serve.sources.FrameSource`).
            sink: optional per-image callback ``(seq, dataset, image)``,
                invoked from worker threads as results complete.
            telemetry: optional externally owned
                :class:`~repro.serve.telemetry.ServeTelemetry` to record
                into — lets a live consumer (the gateway's ``stats``
                endpoint) snapshot the run mid-flight.  Default: a fresh
                instance per run.

        Returns:
            A :class:`ServeReport` with images in submission order.

        Raises:
            The first worker/sink exception, if any stage failed.
        """
        telemetry = telemetry or ServeTelemetry(
            clock=self.clock, metrics=self.obs.metrics
        )
        ingest = BoundedQueue(self.queue_capacity, self.backpressure)
        batches = BoundedQueue(
            max(2, 2 * self.n_workers), "block"
        )
        results: dict[int, np.ndarray] = {}
        results_lock = threading.Lock()
        # Shared with the `broken` property (and reset per run) so a
        # live consumer can observe a failed stage mid-run.
        errors = self._run_errors = []
        dropped: list[int] = []
        log_state = {"lock": threading.Lock(), "last": self.clock.now()}
        scheduler = MicroBatcher(
            max_batch=self.max_batch,
            max_latency_s=self.max_latency_ms / 1e3,
            clock=self.clock,
        )
        ctx = {
            "batches": batches,
            "results": results,
            "results_lock": results_lock,
            "telemetry": telemetry,
            "sink": sink,
            "errors": errors,
            "log_state": log_state,
        }

        batcher = threading.Thread(
            target=self._batcher_loop,
            args=(scheduler, ingest, batches, telemetry, errors),
            name="serve-batcher",
            daemon=True,
        )
        with self._workers_lock:
            self._scheduler = scheduler
            self._run_ctx = ctx
            self._worker_threads = []
            self._live_workers = 0
            self._worker_seq = 0
            for _ in range(self.n_workers):
                self._start_worker(ctx)
        batcher.start()

        seq = 0
        try:
            seq = pump_source(
                source, ingest, telemetry, dropped,
                tracer=self.obs.tracer, events=self.obs.events,
            )
        finally:
            ingest.close()
            batcher.join()
            # Freeze the pool (no further add/retire), then join every
            # thread the run ever started — retired ones are already
            # dead and join instantly.
            with self._workers_lock:
                self._scheduler = None
                self._run_ctx = None
                workers = list(self._worker_threads)
                self._worker_threads = []
            for worker in workers:
                worker.join()

        if errors:
            self.obs.events.emit(
                "engine_broken", engine="threaded",
                error=type(errors[0]).__name__,
            )
            raise errors[0]

        images: list[np.ndarray | None] = [
            results.get(index) for index in range(seq)
        ]
        report = ServeReport(
            images=images,
            dropped=sorted(dropped),
            stats=telemetry.stats(),
        )
        if self.log_every_s > 0:
            logger.info("serve finished: %s", telemetry.log_line())
        return report
