"""Bounded FIFO queue with an explicit backpressure policy.

The serving pipeline is a chain of stages connected by queues; what
happens when a stage falls behind is a *policy decision*, not an
accident.  :class:`BoundedQueue` makes the two supported answers
explicit:

* ``"block"`` — the producer waits for space.  Nothing is lost; ingest
  slows to the pipeline's pace (lossless replay, offline batch jobs).
* ``"drop_oldest"`` — the oldest queued item is evicted to make room and
  returned to the producer for accounting.  Latency stays bounded at the
  cost of frames (live probe streams, where a stale frame is worthless).

``close()`` performs the shutdown handshake: producers can no longer
put, consumers drain what remains and then see :class:`QueueClosed`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

BACKPRESSURE_POLICIES = ("block", "drop_oldest")


class QueueClosed(Exception):
    """Raised on ``put`` after close, or on ``get`` once drained."""


class QueueTimeout(Exception):
    """Raised when a timed ``get``/``put`` expires without progress."""


class BoundedQueue:
    """Thread-safe bounded FIFO (see module docstring for the policies).

    Attributes:
        capacity: maximum number of queued items.
        policy: ``"block"`` or ``"drop_oldest"``.
    """

    def __init__(self, capacity: int, policy: str = "block") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"policy must be one of {BACKPRESSURE_POLICIES}, "
                f"got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: deque[Any] = deque()  # repro: noqa[RA002] -- BoundedQueue IS the bound: put() enforces self.capacity under _lock
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._dropped = 0
        self._high_water = 0

    def put(self, item: Any, timeout: float | None = None) -> Any | None:
        """Enqueue ``item``; returns the evicted item under
        ``drop_oldest`` (``None`` otherwise).

        Raises:
            QueueClosed: the queue was closed.
            QueueTimeout: ``block`` policy and no space within
                ``timeout`` seconds.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed
            evicted = None
            if len(self._items) >= self.capacity:
                if self.policy == "drop_oldest":
                    evicted = self._items.popleft()
                    self._dropped += 1
                else:
                    if not self._not_full.wait_for(
                        lambda: self._closed
                        or len(self._items) < self.capacity,
                        timeout=timeout,
                    ):
                        raise QueueTimeout
                    if self._closed:
                        raise QueueClosed
            self._items.append(item)
            self._high_water = max(self._high_water, len(self._items))
            self._not_empty.notify()
            return evicted

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue the oldest item.

        Raises:
            QueueClosed: the queue is closed *and* fully drained.
            QueueTimeout: nothing arrived within ``timeout`` seconds.
        """
        with self._lock:
            if not self._not_empty.wait_for(
                lambda: self._closed or self._items, timeout=timeout
            ):
                raise QueueTimeout
            if not self._items:
                raise QueueClosed
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Refuse further puts; consumers drain the remainder."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def dropped(self) -> int:
        """Items evicted so far under ``drop_oldest``."""
        with self._lock:
            return self._dropped

    @property
    def high_water(self) -> int:
        """Deepest the queue has been since construction."""
        with self._lock:
            return self._high_water

    def stats(self) -> dict:
        """One consistent snapshot of the queue's gauges.

        ``depth``/``dropped``/``high_water`` read individually each take
        the lock, so a telemetry caller sampling all three could see
        them from different instants; engines record this dict instead.
        """
        with self._lock:
            return {
                "depth": len(self._items),
                "capacity": self.capacity,
                "dropped": self._dropped,
                "high_water": self._high_water,
                "closed": self._closed,
            }
