"""Frame sources: where serving traffic comes from.

A :class:`FrameSource` is anything that yields
:class:`~repro.ultrasound.datasets.PlaneWaveDataset` frames when
iterated.  Two concrete sources cover the serving scenarios:

* :class:`ReplaySource` — replays a recorded list of frames (optionally
  several times, optionally paced at a frame rate).  Deterministic;
  the bench/test workhorse.
* :class:`ProbeSource` — a simulated live probe: each frame advances a
  drifting scatterer scene and re-runs the plane-wave forward model
  (:func:`repro.ultrasound.streaming.stream_scene_drift`), paced at a
  configurable frame rate with optional timing jitter.

Pacing goes through the injected :class:`~repro.serve.clock.Clock`, so a
:class:`~repro.serve.clock.FakeClock` turns both sources into
no-sleep deterministic iterators for tests.
"""

from __future__ import annotations

import abc
from typing import Iterator, Sequence

from repro.serve.clock import Clock, MonotonicClock
from repro.ultrasound.datasets import PlaneWaveDataset
from repro.ultrasound.streaming import stream_scene_drift
from repro.utils.rng import make_rng


class FrameSource(abc.ABC):
    """Iterable stream of plane-wave frames."""

    @abc.abstractmethod
    def frames(self) -> Iterator[PlaneWaveDataset]:
        """Yield frames until the stream ends."""

    def __iter__(self) -> Iterator[PlaneWaveDataset]:
        return self.frames()


class _PacedSource(FrameSource):
    """Shared frame-interval pacing: sleep ``1/fps`` (+/- jitter) before
    each yield, through the injected clock."""

    def __init__(
        self,
        fps: float | None,
        jitter_s: float,
        seed: int,
        clock: Clock | None,
    ) -> None:
        if fps is not None and fps <= 0:
            raise ValueError(f"fps must be > 0 (or None), got {fps}")
        if jitter_s < 0:
            raise ValueError(f"jitter_s must be >= 0, got {jitter_s}")
        self.fps = fps
        self.jitter_s = jitter_s
        self.clock = clock or MonotonicClock()
        self._pacing_rng = make_rng(seed)

    def _pace(self) -> None:
        if self.fps is None:
            return
        interval = 1.0 / self.fps
        if self.jitter_s:
            interval += float(
                self._pacing_rng.normal(0.0, self.jitter_s)
            )
        self.clock.sleep(max(0.0, interval))


class ReplaySource(_PacedSource):
    """Replay recorded frames, optionally repeated and paced.

    Args:
        frames: the frames to replay, in order.
        repeat: how many times to replay the list (>= 1).
        fps: frame rate; ``None`` replays as fast as consumed.
        jitter_s: Gaussian jitter on the frame interval (paced only).
        seed: pacing-jitter seed.
        clock: time source for pacing.
    """

    def __init__(
        self,
        frames: Sequence[PlaneWaveDataset],
        repeat: int = 1,
        fps: float | None = None,
        jitter_s: float = 0.0,
        seed: int = 0,
        clock: Clock | None = None,
    ) -> None:
        super().__init__(fps, jitter_s, seed, clock)
        frames = list(frames)
        if not frames:
            raise ValueError("ReplaySource needs at least one frame")
        if repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {repeat}")
        self._frames = frames
        self.repeat = repeat

    def __len__(self) -> int:
        return len(self._frames) * self.repeat

    def frames(self) -> Iterator[PlaneWaveDataset]:
        """Yield the recorded frames ``repeat`` times, paced."""
        for _ in range(self.repeat):
            for frame in self._frames:
                self._pace()
                yield frame


class ProbeSource(_PacedSource):
    """Simulated live probe: drifting scene, fresh physics per frame.

    Args:
        base: dataset defining the acquisition geometry and start scene.
        n_frames: stream length.
        fps: acquisition frame rate; ``None`` = unpaced.
        jitter_s: Gaussian timing jitter on the frame interval.
        drift_sigma_m: per-frame scatterer random-walk step
            (see :func:`repro.ultrasound.streaming.drifted_phantom`).
        seed: drives both scene drift and pacing jitter.
        clock: time source for pacing.
    """

    def __init__(
        self,
        base: PlaneWaveDataset,
        n_frames: int,
        fps: float | None = None,
        jitter_s: float = 0.0,
        drift_sigma_m: float = 50e-6,
        seed: int = 0,
        clock: Clock | None = None,
    ) -> None:
        super().__init__(fps, jitter_s, seed, clock)
        if n_frames < 1:
            raise ValueError(f"n_frames must be >= 1, got {n_frames}")
        self.base = base
        self.n_frames = n_frames
        self.drift_sigma_m = drift_sigma_m
        self.seed = seed

    def __len__(self) -> int:
        return self.n_frames

    def frames(self) -> Iterator[PlaneWaveDataset]:
        """Yield freshly simulated frames of the drifting scene, paced."""
        stream = stream_scene_drift(
            self.base,
            self.n_frames,
            drift_sigma_m=self.drift_sigma_m,
            seed=self.seed,
        )
        for frame in stream:
            self._pace()
            yield frame
