"""repro.serve — streaming beamforming with geometry-aware micro-batching.

The serving layer turns the offline :class:`~repro.api.base.Beamformer`
API into a live pipeline (DESIGN.md §3):

    from repro.api import create_beamformer
    from repro.serve import ReplaySource, ServeEngine

    engine = ServeEngine(create_beamformer("tiny_vbf"),
                         max_batch=4, max_latency_ms=25)
    report = engine.serve(ReplaySource(frames, fps=10.0))
    report.images        # complex IQ, submission order, parity with
                         # offline beamform()
    report.stats         # p50/p95/p99 latency, throughput, queue depth,
                         # plan-cache hit rate

Pieces (each importable on its own):

* sources    — :class:`FrameSource`, :class:`ReplaySource` (dataset
               replay), :class:`ProbeSource` (simulated live probe with
               scene drift, frame rate and jitter),
* scheduler  — :class:`MicroBatcher`: groups in-flight frames by
               acquisition geometry, flushes on ``max_batch`` or
               ``max_latency_ms``; :class:`ShardRouter`: batch→shard
               placement for the sharded engine,
* engine     — :class:`ServeEngine`: worker pool, bounded queues with
               explicit backpressure (block / drop-oldest), graceful
               shutdown,
* sharding   — :class:`ShardedServeEngine`: the same pipeline sharded
               over N worker *processes* (GIL-free scaling), fed
               through shared-memory frame transport,
* shm        — :class:`ShmRing` / :class:`FrameTransport`:
               shared-memory ring buffers with a pickle fallback,
* telemetry  — :class:`ServeTelemetry`: per-stage latency percentiles
               (bounded reservoirs), per-shard breakdown, worker
               liveness/restart counters, throughput, queue depth,
               plan-cache hit rate,
* control    — :class:`ServoController`: telemetry-driven control loop
               that steers batching, admission and worker count toward
               an explicit :class:`SLO` (docs/autotuning.md),
* queues     — :class:`BoundedQueue` backpressure primitive,
* clock      — :class:`MonotonicClock` / :class:`FakeClock` (tests).

CLI: ``python -m repro.serve --beamformer tiny_vbf --source probe``
(add ``--engine sharded --workers 4 --transport shm`` for processes,
``--gateway PORT`` to front the engine with the TCP gateway of
:mod:`repro.gateway`).
Bench: ``benchmarks/bench_serve.py`` (single-frame loop vs micro-batched
engine; emits ``BENCH_serve.json``) and
``benchmarks/bench_serve_sharded.py`` (threaded vs sharded; emits
``BENCH_serve_sharded.json``).
"""

from repro.serve.clock import Clock, FakeClock, MonotonicClock
from repro.serve.control import (
    SLO,
    ControlAction,
    ControlBounds,
    ServoController,
)
from repro.serve.engine import ServeEngine, ServeReport
from repro.serve.queues import (
    BACKPRESSURE_POLICIES,
    BoundedQueue,
    QueueClosed,
    QueueTimeout,
)
from repro.serve.scheduler import (
    SHARD_POLICIES,
    MicroBatch,
    MicroBatcher,
    PendingFrame,
    ShardRouter,
)
from repro.serve.sharding import ShardedServeEngine, WorkerCrashed
from repro.serve.shm import (
    TRANSPORTS,
    FrameTransport,
    PickledPayload,
    ShmRing,
    SlotHandle,
    TransportClosed,
    TransportFull,
)
from repro.serve.sources import FrameSource, ProbeSource, ReplaySource
from repro.serve.telemetry import LatencyStats, ServeTelemetry

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BoundedQueue",
    "Clock",
    "ControlAction",
    "ControlBounds",
    "FakeClock",
    "FrameSource",
    "FrameTransport",
    "LatencyStats",
    "MicroBatch",
    "MicroBatcher",
    "MonotonicClock",
    "PendingFrame",
    "PickledPayload",
    "ProbeSource",
    "QueueClosed",
    "QueueTimeout",
    "ReplaySource",
    "SHARD_POLICIES",
    "SLO",
    "ServeEngine",
    "ServeReport",
    "ServeTelemetry",
    "ServoController",
    "ShardRouter",
    "ShardedServeEngine",
    "ShmRing",
    "SlotHandle",
    "TRANSPORTS",
    "TransportClosed",
    "TransportFull",
    "WorkerCrashed",
]
