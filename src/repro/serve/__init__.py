"""repro.serve — streaming beamforming with geometry-aware micro-batching.

The serving layer turns the offline :class:`~repro.api.base.Beamformer`
API into a live pipeline (DESIGN.md §3):

    from repro.api import create_beamformer
    from repro.serve import ReplaySource, ServeEngine

    engine = ServeEngine(create_beamformer("tiny_vbf"),
                         max_batch=4, max_latency_ms=25)
    report = engine.serve(ReplaySource(frames, fps=10.0))
    report.images        # complex IQ, submission order, parity with
                         # offline beamform()
    report.stats         # p50/p95/p99 latency, throughput, queue depth,
                         # plan-cache hit rate

Pieces (each importable on its own):

* sources    — :class:`FrameSource`, :class:`ReplaySource` (dataset
               replay), :class:`ProbeSource` (simulated live probe with
               scene drift, frame rate and jitter),
* scheduler  — :class:`MicroBatcher`: groups in-flight frames by
               acquisition geometry, flushes on ``max_batch`` or
               ``max_latency_ms``,
* engine     — :class:`ServeEngine`: worker pool, bounded queues with
               explicit backpressure (block / drop-oldest), graceful
               shutdown,
* telemetry  — :class:`ServeTelemetry`: per-stage latency percentiles,
               throughput, queue depth, plan-cache hit rate,
* queues     — :class:`BoundedQueue` backpressure primitive,
* clock      — :class:`MonotonicClock` / :class:`FakeClock` (tests).

CLI: ``python -m repro.serve --beamformer tiny_vbf --source probe``.
Bench: ``benchmarks/bench_serve.py`` (single-frame loop vs micro-batched
engine; emits ``BENCH_serve.json``).
"""

from repro.serve.clock import Clock, FakeClock, MonotonicClock
from repro.serve.engine import ServeEngine, ServeReport
from repro.serve.queues import (
    BACKPRESSURE_POLICIES,
    BoundedQueue,
    QueueClosed,
    QueueTimeout,
)
from repro.serve.scheduler import MicroBatch, MicroBatcher, PendingFrame
from repro.serve.sources import FrameSource, ProbeSource, ReplaySource
from repro.serve.telemetry import LatencyStats, ServeTelemetry

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BoundedQueue",
    "Clock",
    "FakeClock",
    "FrameSource",
    "LatencyStats",
    "MicroBatch",
    "MicroBatcher",
    "MonotonicClock",
    "PendingFrame",
    "ProbeSource",
    "QueueClosed",
    "QueueTimeout",
    "ReplaySource",
    "ServeEngine",
    "ServeReport",
    "ServeTelemetry",
]
