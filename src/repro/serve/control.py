"""Telemetry-driven serving control loop (the "servo").

:class:`ServoController` closes the loop ROADMAP item 4 describes:
instead of hand-tuning ``max_batch`` / ``max_latency_ms`` / worker
count / session credits for one traffic shape, the operator declares an
:class:`SLO` and the controller steers the running system toward it.
Every ``tick`` it pulls one windowed telemetry snapshot
(:meth:`~repro.serve.telemetry.ServeTelemetry.control_snapshot` —
stage p99s, queue depths, batch sizes, plan-cache hit rate since the
previous tick) and actuates up to three axes:

* **batching** (AIMD, always on) — grow ``max_batch`` additively while
  the p99 has headroom; on a latency breach cut the batching deadline
  multiplicatively (halve ``max_latency_ms``), and only once the
  deadline is floored start shrinking the batch.  A *queue* breach
  instead grows the batch — backlog means per-batch overhead is the
  bottleneck, and larger batches amortize it.
* **admission** (when a gateway is attached) — on a sustained breach
  halve every session's in-flight credit via
  :meth:`~repro.gateway.server.GatewayServer.set_admission` so load is
  shed at the edge (clients see ``busy`` responses, not silent queue
  growth); restore additively once healthy.
* **scaling** (when ``autoscale`` and the engine supports it) — add a
  worker when batching alone cannot clear a sustained breach, retire
  one after a sustained idle stretch; both behind a cooldown so the
  pool does not flap.

Why AIMD: additive increase probes capacity gently (one step per tick,
so overshoot is bounded by one step), multiplicative decrease backs off
fast when the SLO is violated — the same asymmetry that lets TCP share
a bottleneck stably.  The controller is deliberately *stateless beyond
streak counters*: every decision derives from the latest window plus
bounded memory, so a restarted controller converges to the same
behaviour within ``patience`` ticks.

The loop is fake-clock testable: construct with any
:class:`~repro.serve.clock.Clock` and call :meth:`tick` directly; the
background thread (:meth:`start` / :meth:`stop`) is only a real-time
convenience wrapper around the same method.

Observability: every decision lands in the bounded :attr:`actions` log,
as a ``control_action`` structured event, and in two metric families —
``repro_control_actions_total{policy,action}`` and
``repro_control_slo_breaches_total{signal}`` (see docs/autotuning.md
for how to read them).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.obs import Observability
from repro.serve.clock import Clock, MonotonicClock

#: How many control decisions the in-memory action log retains.
ACTION_LOG_CAP = 256


@dataclass(frozen=True)
class SLO:
    """The service-level objective the controller enforces.

    Attributes:
        p99_latency_s: ceiling on the windowed end-to-end (``total``
            stage) p99 latency, in seconds.
        max_queue_depth: ceiling on the last-observed depth of any
            engine queue (ingest or in-flight batches); sustained depth
            above this is treated as saturation even while latency
            still looks fine (queues hide latency until they are full).
    """

    p99_latency_s: float
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        """Validate the objective is actually enforceable."""
        if self.p99_latency_s <= 0:
            raise ValueError(
                f"p99_latency_s must be > 0, got {self.p99_latency_s}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, "
                f"got {self.max_queue_depth}"
            )


@dataclass(frozen=True)
class ControlBounds:
    """Actuation limits: the box the controller may steer within.

    The controller never moves a knob outside these bounds, no matter
    what telemetry says — they are the operator's guard rails.
    ``headroom`` sets the AIMD grow threshold: batching only grows
    while the windowed p99 is below ``headroom * slo.p99_latency_s``.
    ``patience`` is the number of consecutive breached (or healthy)
    ticks before the slower axes (admission, scaling) act, and
    ``cooldown_ticks`` is the scale-action refractory period.
    """

    min_batch: int = 1
    max_batch: int = 64
    min_latency_ms: float = 1.0
    max_latency_ms: float = 1000.0
    min_workers: int = 1
    max_workers: int = 64
    min_inflight: int = 1
    headroom: float = 0.7
    patience: int = 3
    cooldown_ticks: int = 5

    def __post_init__(self) -> None:
        """Reject inverted or degenerate bounds."""
        if not 1 <= self.min_batch <= self.max_batch:
            raise ValueError(
                f"need 1 <= min_batch <= max_batch, got "
                f"{self.min_batch}..{self.max_batch}"
            )
        if not 0 < self.min_latency_ms <= self.max_latency_ms:
            raise ValueError(
                f"need 0 < min_latency_ms <= max_latency_ms, got "
                f"{self.min_latency_ms}..{self.max_latency_ms}"
            )
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers}..{self.max_workers}"
            )
        if self.min_inflight < 1:
            raise ValueError(
                f"min_inflight must be >= 1, got {self.min_inflight}"
            )
        if not 0 < self.headroom < 1:
            raise ValueError(
                f"headroom must be in (0, 1), got {self.headroom}"
            )
        if self.patience < 1 or self.cooldown_ticks < 0:
            raise ValueError(
                "patience must be >= 1 and cooldown_ticks >= 0"
            )


@dataclass(frozen=True)
class ControlAction:
    """One decision the controller took (or deliberately skipped).

    Attributes:
        at: controller-clock timestamp of the decision.
        policy: which axis acted — ``batching`` / ``admission`` /
            ``scaling``.
        action: what it did (e.g. ``grow_batch``, ``cut_deadline``,
            ``shed``, ``add_worker``).
        value: the knob's new value.
        reason: the telemetry fact that triggered it.
    """

    at: float
    policy: str
    action: str
    value: float
    reason: str


@dataclass
class _AxisState:
    """Streak/cooldown counters for one actuation axis."""

    breach_streak: int = 0
    healthy_streak: int = 0
    cooldown: int = 0


class ServoController:
    """Steer a serving engine (and optional gateway) toward an SLO.

    Args:
        slo: the objective to enforce.
        telemetry: the live :class:`~repro.serve.telemetry.ServeTelemetry`
            to read, or a zero-arg callable returning it (or ``None``
            while no run is active) — the gateway creates its telemetry
            per ``start()``, so a callable keeps the controller attached
            across restarts.  The controller is this telemetry's *only*
            ``control_snapshot`` reader.
        engine: the engine to actuate — anything exposing
            ``set_batching`` and (for autoscale) ``add_worker`` /
            ``retire_worker`` / ``live_workers``; both
            :class:`~repro.serve.engine.ServeEngine` and
            :class:`~repro.serve.sharding.ShardedServeEngine` qualify.
        gateway: optional :class:`~repro.gateway.server.GatewayServer`
            whose admission credits the controller may shed/restore.
        bounds: actuation limits (default :class:`ControlBounds`).
        autoscale: enable the worker-scaling axis (off by default —
            adding processes is the most invasive actuator).
        interval_s: tick period of the background thread; direct
            :meth:`tick` callers ignore it.
        clock: time source for action timestamps (fake in tests).
        observability: metrics/event sink; defaults to the engine's
            bundle when it has one.
    """

    def __init__(
        self,
        slo: SLO,
        telemetry,
        engine=None,
        gateway=None,
        bounds: ControlBounds | None = None,
        autoscale: bool = False,
        interval_s: float = 1.0,
        clock: Clock | None = None,
        observability: Observability | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"interval_s must be > 0, got {interval_s}"
            )
        self.slo = slo
        self.bounds = bounds or ControlBounds()
        self._telemetry = telemetry
        self.engine = engine
        self.gateway = gateway
        self.autoscale = autoscale and engine is not None and hasattr(
            engine, "add_worker"
        )
        self.interval_s = interval_s
        self.clock = clock or MonotonicClock()
        self.obs = observability or getattr(
            engine, "obs", None
        ) or Observability.create(clock=self.clock)
        self._m_actions = self.obs.metrics.counter(
            "repro_control_actions_total",
            "Control-loop actuations, by policy axis and action.",
            labels=("policy", "action"),
        )
        self._m_breaches = self.obs.metrics.counter(
            "repro_control_slo_breaches_total",
            "Ticks whose telemetry window violated the SLO, by signal.",
            labels=("signal",),
        )
        #: Bounded decision log (newest last); exported via
        #: :meth:`status` and printed by ``examples/autoscale_demo.py``.
        self.actions: deque[ControlAction] = deque(maxlen=ACTION_LOG_CAP)
        self._tick_actions: list[ControlAction] = []
        self._batching = _AxisState()
        self._admission = _AxisState()
        self._scaling = _AxisState()
        self._ticks = 0
        self._breaches = 0
        # Admission restore target: the gateway's configured credit at
        # attach time.
        self._base_inflight = (
            gateway.max_inflight if gateway is not None else None
        )
        self._base_latency_ms = (
            engine.max_latency_ms if engine is not None else None
        )
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    # -- plumbing --------------------------------------------------------

    def _snapshot(self) -> dict | None:
        telemetry = self._telemetry
        if callable(telemetry) and not hasattr(
            telemetry, "control_snapshot"
        ):
            telemetry = telemetry()
        if telemetry is None:
            return None
        return telemetry.control_snapshot()

    def _record(
        self, policy: str, action: str, value: float, reason: str
    ) -> None:
        entry = ControlAction(
            at=self.clock.now(),
            policy=policy,
            action=action,
            value=float(value),
            reason=reason,
        )
        self.actions.append(entry)
        self._tick_actions.append(entry)
        self._m_actions.inc(policy=policy, action=action)
        self.obs.events.emit(
            "control_action",
            policy=policy,
            action=action,
            value=float(value),
            reason=reason,
        )

    def status(self) -> dict:
        """Current controller state (JSON-serializable)."""
        return {
            "ticks": self._ticks,
            "breaches": self._breaches,
            "slo": {
                "p99_latency_s": self.slo.p99_latency_s,
                "max_queue_depth": self.slo.max_queue_depth,
            },
            "engine": (
                {
                    "max_batch": self.engine.max_batch,
                    "max_latency_ms": self.engine.max_latency_ms,
                    "live_workers": getattr(
                        self.engine, "live_workers", None
                    ),
                }
                if self.engine is not None
                else None
            ),
            "gateway": (
                {"max_inflight": self.gateway.max_inflight}
                if self.gateway is not None
                else None
            ),
            "actions": [
                {
                    "at": action.at,
                    "policy": action.policy,
                    "action": action.action,
                    "value": action.value,
                    "reason": action.reason,
                }
                for action in self.actions
            ],
        }

    # -- the control loop ------------------------------------------------

    def tick(self) -> list[ControlAction]:
        """Run one control cycle; returns the actions it took.

        Reads one telemetry window, classifies it against the SLO
        (breach signals are counted in
        ``repro_control_slo_breaches_total``), then lets each enabled
        axis act.  Windows with no completed frames are skipped
        entirely — an idle system gives the controller nothing to
        steer on, and acting on silence would unwind a configuration
        the next burst still needs.
        """
        self._tick_actions = []
        snapshot = self._snapshot()
        self._ticks += 1
        if snapshot is None:
            return []
        depth = max(snapshot.get("queue_depth", {}).values(), default=0)
        if not snapshot.get("frames_done"):
            # No completions this window.  Idle silence is nothing to
            # steer on — but a window that completed *zero* frames
            # while the queue sits over the SLO is the opposite of
            # idle (a long batch is hogging the worker while backlog
            # builds), and queue depth is refreshed on every arrival,
            # so it stays a valid — and leading — breach signal.
            if depth <= self.slo.max_queue_depth:
                return []
        p99_s = (
            snapshot["stages"]["total"].get("p99_ms", 0.0) / 1e3
        )
        latency_breach = p99_s > self.slo.p99_latency_s
        queue_breach = depth > self.slo.max_queue_depth
        if latency_breach:
            self._breaches += 1
            self._m_breaches.inc(signal="p99_latency")
        if queue_breach:
            self._breaches += 1
            self._m_breaches.inc(signal="queue_depth")
        breached = latency_breach or queue_breach
        for axis in (self._batching, self._admission, self._scaling):
            if breached:
                axis.breach_streak += 1
                axis.healthy_streak = 0
            else:
                axis.healthy_streak += 1
                axis.breach_streak = 0
            if axis.cooldown > 0:
                axis.cooldown -= 1
        if self.engine is not None:
            self._steer_batching(p99_s, latency_breach, queue_breach)
        if self.gateway is not None:
            self._steer_admission(p99_s, depth)
        if self.autoscale:
            self._steer_scaling(p99_s, depth, queue_breach)
        return self._tick_actions

    def _steer_batching(
        self, p99_s: float, latency_breach: bool, queue_breach: bool
    ) -> None:
        """AIMD on the micro-batching knobs (every tick)."""
        bounds = self.bounds
        engine = self.engine
        if queue_breach:
            # Backlog: per-batch overhead is the bottleneck; larger
            # batches amortize it (and a deadline cut would only
            # fragment them further).
            if engine.max_batch < bounds.max_batch:
                engine.set_batching(max_batch=engine.max_batch + 1)
                self._record(
                    "batching", "grow_batch", engine.max_batch,
                    "queue depth over SLO: amortize dispatch overhead",
                )
            return
        if latency_breach:
            if engine.max_latency_ms > bounds.min_latency_ms:
                cut = max(
                    bounds.min_latency_ms, engine.max_latency_ms / 2
                )
                engine.set_batching(max_latency_ms=cut)
                self._record(
                    "batching", "cut_deadline", cut,
                    f"p99 {p99_s * 1e3:.1f}ms over SLO: stop waiting "
                    f"for company",
                )
            elif engine.max_batch > bounds.min_batch:
                # Deadline already floored and latency still over:
                # the batches themselves are too slow.
                engine.set_batching(max_batch=engine.max_batch - 1)
                self._record(
                    "batching", "shrink_batch", engine.max_batch,
                    f"p99 {p99_s * 1e3:.1f}ms over SLO with deadline "
                    f"floored",
                )
            return
        if p99_s < bounds.headroom * self.slo.p99_latency_s:
            grew = False
            if engine.max_batch < bounds.max_batch:
                engine.set_batching(max_batch=engine.max_batch + 1)
                self._record(
                    "batching", "grow_batch", engine.max_batch,
                    f"p99 {p99_s * 1e3:.1f}ms under "
                    f"{bounds.headroom:.0%} of SLO",
                )
                grew = True
            base = self._base_latency_ms or bounds.max_latency_ms
            if not grew and engine.max_latency_ms < base:
                restored = min(base, engine.max_latency_ms * 2)
                engine.set_batching(max_latency_ms=restored)
                self._record(
                    "batching", "restore_deadline", restored,
                    "healthy window: relax an earlier deadline cut",
                )

    def _steer_admission(self, p99_s: float, depth: int) -> None:
        """Shed/restore gateway session credits (sustained signals)."""
        bounds = self.bounds
        gateway = self.gateway
        axis = self._admission
        if axis.breach_streak >= bounds.patience:
            if gateway.max_inflight > bounds.min_inflight:
                shed = max(
                    bounds.min_inflight, gateway.max_inflight // 2
                )
                gateway.set_admission(max_inflight=shed)
                self._record(
                    "admission", "shed", shed,
                    f"{axis.breach_streak} breached ticks: shed load "
                    f"at the edge",
                )
                axis.breach_streak = 0
        elif (
            axis.healthy_streak >= bounds.patience
            and axis.cooldown == 0
            and self._base_inflight is not None
            and gateway.max_inflight < self._base_inflight
        ):
            # Additive increase, rate-limited by the cooldown: credit
            # restores one step per ``cooldown_ticks``, never one per
            # tick — restoring as fast as shedding just rebuilds the
            # queue the shed drained and oscillates through the SLO.
            restored = gateway.max_inflight + 1
            gateway.set_admission(max_inflight=restored)
            self._record(
                "admission", "restore", restored,
                f"{axis.healthy_streak} healthy ticks: re-admit load",
            )
            axis.cooldown = bounds.cooldown_ticks

    def _steer_scaling(
        self, p99_s: float, depth: int, queue_breach: bool
    ) -> None:
        """Worker add/retire (sustained signals, behind a cooldown)."""
        bounds = self.bounds
        engine = self.engine
        axis = self._scaling
        if axis.cooldown > 0:
            return
        live = engine.live_workers
        saturated = (
            engine.max_batch >= bounds.max_batch or queue_breach
        )
        if (
            axis.breach_streak >= bounds.patience
            and saturated
            and live < bounds.max_workers
        ):
            if engine.add_worker() is not None:
                self._record(
                    "scaling", "add_worker", live + 1,
                    f"{axis.breach_streak} breached ticks with "
                    f"batching saturated",
                )
                axis.cooldown = bounds.cooldown_ticks
                axis.breach_streak = 0
        elif (
            axis.healthy_streak >= 2 * bounds.patience
            and live > bounds.min_workers
            and depth == 0
            and p99_s < 0.5 * bounds.headroom * self.slo.p99_latency_s
        ):
            if engine.retire_worker() is not None:
                self._record(
                    "scaling", "retire_worker", live - 1,
                    f"{axis.healthy_streak} idle ticks: shrink the "
                    f"pool",
                )
                axis.cooldown = bounds.cooldown_ticks
                axis.healthy_streak = 0

    # -- background runner -----------------------------------------------

    def start(self) -> "ServoController":
        """Run :meth:`tick` every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="serve-control", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self.tick()
            except Exception:  # pragma: no cover - defensive
                # A telemetry race (e.g. the run ended mid-snapshot)
                # must not kill the control thread; the next tick
                # re-reads fresh state.
                continue

    def stop(self) -> None:
        """Stop the background thread (idempotent; joins it)."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "ServoController":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
