"""CLI for the streaming beamforming engine.

Examples::

    # 32 replayed frames through DAS, micro-batched 4-deep
    PYTHONPATH=src python -m repro.serve --beamformer das --frames 32

    # Simulated live probe at 5 fps through an untrained Tiny-VBF
    PYTHONPATH=src python -m repro.serve --beamformer tiny_vbf \\
        --untrained --source probe --fps 5 --frames 20

    # Quantized datapath, lossy backpressure, 2 workers
    PYTHONPATH=src python -m repro.serve --beamformer "tiny_vbf@20 bits" \\
        --untrained --backpressure drop_oldest --workers 2

    # DAS on the float32 fast backend (see repro.backend)
    PYTHONPATH=src python -m repro.serve --beamformer das \\
        --backend numpy-fast --frames 32

    # Process-sharded: 4 worker processes over shared-memory transport
    PYTHONPATH=src python -m repro.serve --beamformer tiny_vbf \\
        --untrained --engine sharded --workers 4 --transport shm

    # Serve the same engine over TCP instead of a local source
    PYTHONPATH=src python -m repro.serve --beamformer das --gateway 7355

Prints the final telemetry dict as JSON on stdout; progress log lines go
to stderr via the ``repro.serve`` logger.  With ``--gateway PORT`` the
source flags are ignored and the engine fronts a network gateway
(:mod:`repro.gateway`) until interrupted.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro.api import create_beamformer, parse_spec
from repro.backend import available_backends
from repro.serve.engine import ServeEngine
from repro.serve.queues import BACKPRESSURE_POLICIES
from repro.serve.scheduler import SHARD_POLICIES
from repro.serve.sharding import ShardedServeEngine
from repro.serve.shm import TRANSPORTS
from repro.serve.sources import ProbeSource, ReplaySource
from repro.ultrasound import (
    phantom_contrast,
    phantom_resolution,
    simulation_contrast,
    simulation_resolution,
    stream_gain_drift,
)

PRESETS = {
    "simulation_contrast": simulation_contrast,
    "simulation_resolution": simulation_resolution,
    "phantom_contrast": phantom_contrast,
    "phantom_resolution": phantom_resolution,
}


def add_beamformer_args(parser: argparse.ArgumentParser) -> None:
    """Add the beamformer-selection flags (shared with the gateway CLI)."""
    parser.add_argument(
        "--beamformer",
        default="das",
        help="beamformer spec for repro.api.create_beamformer "
        "(das, mvdr, tiny_vbf, 'tiny_vbf@20 bits', ...)",
    )
    parser.add_argument(
        "--untrained",
        action="store_true",
        help="wrap a freshly initialized model instead of the weight "
        "cache (learned specs only; skips training on first use)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="compute backend bound to the beamformer (default: the "
        "process default — REPRO_BACKEND or 'numpy')",
    )
    parser.add_argument(
        "--scale", choices=("small", "paper"), default="small"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--pe-emu",
        action="store_true",
        help="quantized 'tiny_vbf@<scheme>' specs only: execute the "
        "GEMMs on the bit-accurate integer PE emulator "
        "(repro.fpga.emu, round-at-the-end pipeline) instead of the "
        "modeled fake-quantized datapath",
    )


def add_engine_args(parser: argparse.ArgumentParser) -> None:
    """Add the engine-configuration flags (shared with the gateway CLI)."""
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--max-latency-ms", type=float, default=25.0)
    parser.add_argument("--queue-capacity", type=int, default=64)
    parser.add_argument(
        "--backpressure",
        choices=BACKPRESSURE_POLICIES,
        default="block",
    )
    parser.add_argument(
        "--engine",
        choices=("threaded", "sharded"),
        default="threaded",
        help="threaded: in-process worker threads (ServeEngine); "
        "sharded: worker processes over shared-memory transport "
        "(ShardedServeEngine)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker threads (threaded engine) or processes (sharded)",
    )
    parser.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="shm",
        help="sharded engine only: frame/image transport — shm "
        "(shared-memory rings) or pickle (queues)",
    )
    parser.add_argument(
        "--shard-policy",
        choices=SHARD_POLICIES,
        default="round_robin",
        help="sharded engine only: batch->worker placement",
    )
    parser.add_argument(
        "--restart-workers",
        action="store_true",
        help="sharded engine only: respawn crashed workers and requeue "
        "their in-flight batches instead of failing the run",
    )
    parser.add_argument(
        "--log-every",
        type=float,
        default=5.0,
        help="seconds between telemetry log lines (0 disables)",
    )


def add_source_args(parser: argparse.ArgumentParser) -> None:
    """Add the frame-source flags (local-run mode only)."""
    parser.add_argument(
        "--source",
        choices=("replay", "probe"),
        default="replay",
        help="replay: gain-perturbed copies of one preset acquisition; "
        "probe: re-simulated drifting scene per frame",
    )
    parser.add_argument(
        "--preset",
        choices=tuple(PRESETS),
        default="simulation_contrast",
        help="base acquisition preset",
    )
    parser.add_argument("--frames", type=int, default=16,
                        help="stream length")
    parser.add_argument(
        "--fps",
        type=float,
        default=0.0,
        help="source frame rate; 0 streams unpaced",
    )
    parser.add_argument(
        "--jitter-ms",
        type=float,
        default=0.0,
        help="Gaussian frame-interval jitter (paced sources)",
    )
    parser.add_argument(
        "--drift-um",
        type=float,
        default=50.0,
        help="probe source: per-frame scatterer drift step (microns)",
    )


def add_obs_args(parser: argparse.ArgumentParser) -> None:
    """Add the observability flags (shared with the gateway CLI)."""
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fraction of frames to trace end to end (0 disables "
        "tracing entirely, 1 traces every frame; see repro.obs)",
    )
    parser.add_argument(
        "--profile-kernels",
        action="store_true",
        help="time every dispatched backend kernel into the "
        "repro_kernel_seconds histogram (adds a per-call "
        "clock read; off by default)",
    )
    parser.add_argument(
        "--event-log",
        default=None,
        metavar="PATH",
        help="append lifecycle events (session admit, worker restart, "
        "drain, ...) to this JSON-lines file",
    )


def add_control_args(parser: argparse.ArgumentParser) -> None:
    """Add the control-loop flags (shared with the gateway CLI)."""
    parser.add_argument(
        "--slo-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="enable the telemetry-driven control loop with this p99 "
        "end-to-end latency objective (seconds); the controller "
        "steers max-batch/max-latency-ms (and admission/workers "
        "where applicable) toward it — see docs/autotuning.md",
    )
    parser.add_argument(
        "--control-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="control-loop tick period (requires --slo-p99)",
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help="let the control loop add/retire workers at runtime "
        "(requires --slo-p99; sharded engine scales processes, "
        "threaded engine scales threads)",
    )


def make_controller(
    args: argparse.Namespace,
    telemetry,
    engine=None,
    gateway=None,
    observability=None,
):
    """Build the :class:`~repro.serve.control.ServoController` for the
    CLI flags, or ``None`` when ``--slo-p99`` is absent."""
    if args.slo_p99 is None:
        return None
    from repro.serve.control import SLO, ServoController

    return ServoController(
        SLO(p99_latency_s=args.slo_p99),
        telemetry,
        engine=engine,
        gateway=gateway,
        autoscale=args.autoscale,
        interval_s=args.control_interval,
        observability=observability,
    )


def make_observability(args: argparse.Namespace):
    """Build the :class:`repro.obs.Observability` bundle for the CLI flags."""
    from repro.obs import Observability

    return Observability.create(
        sample_rate=args.trace_sample_rate,
        event_path=args.event_log,
    )


def add_gateway_args(parser: argparse.ArgumentParser) -> None:
    """Add the gateway network knobs (shared with the gateway CLI)."""
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="gateway mode only: bind address",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        help="gateway mode only: concurrent-session admission cap",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="gateway mode only: per-session in-flight frame credit",
    )
    parser.add_argument(
        "--feed-capacity",
        type=int,
        default=64,
        help="gateway mode only: gateway feed-queue bound (frames "
        "beyond it are rejected 'overloaded')",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Stream simulated plane-wave frames through a beamformer "
            "with geometry-aware micro-batching."
        ),
    )
    add_beamformer_args(parser)
    add_source_args(parser)
    add_engine_args(parser)
    add_control_args(parser)
    add_obs_args(parser)
    parser.add_argument(
        "--gateway",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the engine over TCP on this port instead of "
        "running a local source (see repro.gateway; 0 picks an "
        "ephemeral port; source flags are ignored)",
    )
    add_gateway_args(parser)
    return parser


def make_beamformer(args: argparse.Namespace):
    """Build the beamformer the CLI flags describe."""
    model = None
    if args.untrained:
        name, _ = parse_spec(args.beamformer)
        if name not in ("das", "mvdr"):
            from repro.models.registry import build_model

            model = build_model(name, args.scale, seed=args.seed)
    kwargs = {}
    if getattr(args, "pe_emu", False):
        kwargs["pe"] = "emu"
    return create_beamformer(
        args.beamformer,
        scale=args.scale,
        seed=args.seed,
        model=model,
        backend=args.backend,
        **kwargs,
    )


def make_source(args: argparse.Namespace):
    """Build the frame source the CLI flags describe."""
    base = PRESETS[args.preset](scale=args.scale)
    fps = args.fps if args.fps > 0 else None
    jitter_s = args.jitter_ms / 1e3
    if args.source == "probe":
        return ProbeSource(
            base,
            n_frames=args.frames,
            fps=fps,
            jitter_s=jitter_s,
            drift_sigma_m=args.drift_um * 1e-6,
            seed=args.seed,
        )
    frames = list(
        stream_gain_drift(base, args.frames, seed=args.seed)
    )
    return ReplaySource(
        frames, fps=fps, jitter_s=jitter_s, seed=args.seed
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.serve``."""
    args = build_parser().parse_args(argv)
    if args.gateway is not None:
        from repro.gateway.__main__ import run_gateway

        args.port = args.gateway
        return run_gateway(args)
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO,
        format="%(asctime)s %(name)s: %(message)s",
    )
    obs = make_observability(args)
    if args.profile_kernels and args.engine != "sharded":
        # Wrap the registered backend *before* the beamformer resolves
        # it, so every kernel the in-process workers dispatch is timed.
        # (The sharded engine profiles inside its worker processes via
        # profile_kernels= instead.)
        from repro.obs.profile import enable_kernel_profiling

        enable_kernel_profiling(obs.metrics, backend=args.backend)
    beamformer = make_beamformer(args)
    source = make_source(args)
    if args.engine == "sharded":
        engine = ShardedServeEngine(
            beamformer,
            n_workers=args.workers,
            transport=args.transport,
            max_batch=args.max_batch,
            max_latency_ms=args.max_latency_ms,
            queue_capacity=args.queue_capacity,
            backpressure=args.backpressure,
            shard_policy=args.shard_policy,
            restart_workers=args.restart_workers,
            log_every_s=args.log_every,
            observability=obs,
            profile_kernels=args.profile_kernels,
        )
    else:
        engine = ServeEngine(
            beamformer,
            max_batch=args.max_batch,
            max_latency_ms=args.max_latency_ms,
            queue_capacity=args.queue_capacity,
            backpressure=args.backpressure,
            n_workers=args.workers,
            log_every_s=args.log_every,
            observability=obs,
        )
    telemetry = None
    controller = None
    if args.slo_p99 is not None:
        from repro.serve.telemetry import ServeTelemetry

        telemetry = ServeTelemetry(
            clock=engine.clock, metrics=obs.metrics
        )
        controller = make_controller(
            args, telemetry, engine=engine, observability=obs
        )
        controller.start()
    try:
        if args.engine == "sharded":
            with engine:
                report = engine.serve(source, telemetry=telemetry)
        else:
            report = engine.serve(source, telemetry=telemetry)
    finally:
        if controller is not None:
            controller.stop()
    payload = {
        "beamformer": beamformer.describe(),
        "engine": args.engine,
        "workers": args.workers,
        "transport": (
            args.transport if args.engine == "sharded" else None
        ),
        "source": args.source,
        "preset": args.preset,
        "frames": args.frames,
        "completed": report.completed,
        "dropped": report.dropped,
        "stats": report.stats,
        "control": (
            controller.status() if controller is not None else None
        ),
    }
    print(json.dumps(payload, indent=2))  # repro: noqa[RA005] -- operator-facing CLI report, not wire data
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
