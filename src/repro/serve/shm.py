"""Shared-memory frame transport for the process-sharded serve engine.

Raw IQ frames in and beamformed images out are the two heavy flows of
:class:`~repro.serve.sharding.ShardedServeEngine` (hundreds of KiB per
frame); everything else on the worker protocol is a few KiB of metadata.
This module moves the heavy flows through
:mod:`multiprocessing.shared_memory` ring buffers so a frame crosses the
process boundary as one ``memcpy`` into a mapped segment plus a tiny
slot descriptor on a queue — never through pickle.

Layout
------

A :class:`ShmRing` is one shared segment divided into ``slots`` fixed
``slot_bytes`` slices.  Writing copies an array's bytes into a free slot
and returns a :class:`SlotHandle` (segment name, slot index, shape,
dtype) that travels over the ordinary task/result queues; reading
reconstructs the array *by copy* so the slot can be reused immediately
after.  Slot lifetime is explicit: whoever allocated the slot frees it
(via its free list) once the consumer's result round-trips — the serve
engine releases input slots only when a batch's results (or its failure)
arrive, which is what makes requeue-after-worker-crash safe: an
in-flight batch's frames stay valid in the ring until the engine has an
outcome for them.

Two free-list flavors cover the two directions:

* parent→worker (frames): the parent both allocates and frees, so the
  free list is an in-process :class:`LocalFreeList` — no IPC at all,
* worker→parent (images): workers allocate, the parent frees, so the
  free list is a :class:`QueueFreeList` over a ``multiprocessing`` queue
  preloaded with the slot indices.

A full ring is *backpressure*, not an error: allocation blocks (with a
timeout and an abort hook) and the stall propagates back through the
batcher to the bounded ingest queue, exactly like the threaded engine.

Fallback
--------

Arrays the ring cannot carry — object dtypes, or payloads larger than
``slot_bytes`` (e.g. a rare geometry with a bigger grid than the one the
ring was sized for) — fall back to pickle transparently: ``pack``
returns a :class:`PickledPayload` instead of a :class:`SlotHandle` and
the array rides the queue itself.  ``transport="pickle"`` on the engine
simply uses this path for every frame, which is also the reference
implementation the shm path is tested against.

Non-contiguous arrays are copied contiguous on write (a copy is being
made into the segment anyway).  Dtype round-trip fidelity for every
dtype the pipeline emits (float32/float64/complex64/complex128) is
pinned byte-for-byte by ``tests/serve/test_shm.py``.

Tracing context rides the *envelope*, not this module: each frame in a
dispatched batch is a ``(seq, payload, ctx)`` triple where ``payload``
is the :class:`SlotHandle`/:class:`PickledPayload` built here and
``ctx`` is either ``None`` or the 17-byte fixed struct of
:data:`repro.obs.tracing.CTX_STRUCT` — never a pickled span object —
so sampling a frame does not change what crosses the shared segment.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

TRANSPORTS = ("shm", "pickle")

#: How long a blocked slot allocation waits between abort checks.
_POLL_S = 0.05


class TransportFull(Exception):
    """No free slot became available within the allocation timeout."""


class TransportClosed(Exception):
    """The transport was closed while a caller was blocked on it."""


@dataclass(frozen=True)
class SlotHandle:
    """Descriptor of one array parked in a shared-memory slot.

    Travels over ordinary queues (it is tiny and picklable); the array
    bytes stay in the segment.  ``dtype`` is the NumPy dtype *string*
    (``np.dtype.str``), which preserves byte order.
    """

    segment: str
    slot: int
    offset: int
    shape: tuple
    dtype: str
    nbytes: int


@dataclass(frozen=True)
class PickledPayload:
    """Fallback payload: the array itself rides the queue via pickle."""

    array: np.ndarray


def _ring_capable(array: np.ndarray, slot_bytes: int) -> bool:
    return (
        not array.dtype.hasobject
        and array.nbytes <= slot_bytes
    )


class LocalFreeList:
    """Thread-safe in-process free list (parent-owned rings).

    FIFO on purpose: released slots go to the back of the line, so the
    ring actually *rotates* — a bug that reads a slot after releasing
    it shows up as corruption quickly instead of being masked by
    immediate same-slot reuse.
    """

    def __init__(self, slots: int) -> None:
        self._free = deque(range(slots))  # repro: noqa[RA002] -- free list holds at most the fixed slot ids it was created with
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    def acquire(
        self,
        timeout: float | None,
        abort: Callable[[], bool] | None = None,
    ) -> int:
        """Pop a free slot index, blocking with abort/timeout checks."""
        deadline = None if timeout is None else (
            _monotonic() + timeout
        )
        with self._available:
            while True:
                if self._closed:
                    raise TransportClosed
                if self._free:
                    return self._free.popleft()
                if abort is not None and abort():
                    raise TransportClosed
                remaining = _POLL_S
                if deadline is not None:
                    remaining = min(remaining, deadline - _monotonic())
                    if remaining <= 0:
                        raise TransportFull
                self._available.wait(remaining)

    def release(self, slot: int) -> None:
        """Return a slot to the back of the free line (FIFO rotation)."""
        with self._available:
            self._free.append(slot)
            self._available.notify()

    def close(self) -> None:
        """Wake every blocked acquirer with :class:`TransportClosed`."""
        with self._available:
            self._closed = True
            self._available.notify_all()

    @property
    def free_count(self) -> int:
        """Currently free slots (diagnostics/tests)."""
        with self._lock:
            return len(self._free)


class QueueFreeList:
    """Cross-process free list over a ``multiprocessing`` queue.

    The queue is created (and preloaded with every slot index) by the
    parent *before* workers spawn, so it can be inherited through
    ``Process`` args; allocation then works from any process.
    """

    def __init__(self, queue) -> None:
        self._queue = queue

    @classmethod
    def create(cls, ctx, slots: int) -> "QueueFreeList":
        """A free list preloaded with every slot index (parent side)."""
        queue = ctx.Queue(maxsize=slots)
        for slot in range(slots):
            queue.put(slot)
        return cls(queue)

    @property
    def raw(self):
        """The underlying queue (for ``Process`` argument passing)."""
        return self._queue

    def rebuild(self, slots: int) -> None:
        """Drain whatever is queued and restock every slot index.

        Used when the *allocating* process died: indices it had
        acquired but never surfaced in a result are gone, so the pool
        would shrink by that amount on every crash.  Only safe once no
        other process allocates from this list (the dead allocator's
        replacement must not have started) and the releasing side
        discards the dead incarnation's handles — both arranged by the
        sharded engine's restart sequence.
        """
        while True:
            try:
                self._queue.get(timeout=0.05)
            except _queue.Empty:
                break
        for slot in range(slots):
            self._queue.put(slot)

    def acquire(
        self,
        timeout: float | None,
        abort: Callable[[], bool] | None = None,
    ) -> int:
        """Pop a free slot index off the shared queue, abortable."""
        deadline = None if timeout is None else (
            _monotonic() + timeout
        )
        while True:
            if abort is not None and abort():
                raise TransportClosed
            remaining = _POLL_S
            if deadline is not None:
                remaining = min(remaining, deadline - _monotonic())
                if remaining <= 0:
                    raise TransportFull
            try:
                return self._queue.get(timeout=remaining)
            except _queue.Empty:
                continue

    def release(self, slot: int) -> None:
        """Hand a consumed slot back to the allocating process."""
        self._queue.put(slot)

    def close(self) -> None:
        """No-op: the engine owns the shared queue's lifetime."""
        pass


def _monotonic() -> float:
    return time.monotonic()


class ShmRing:
    """A ring of fixed-size slots over one shared-memory segment.

    Create with ``create=True`` in the owning process (which must also
    eventually :meth:`unlink`); attach from other processes with
    ``create=False`` and the segment ``name``.  The free list is
    supplied by the caller (:class:`LocalFreeList` or
    :class:`QueueFreeList`) and decides which processes may allocate.
    """

    def __init__(
        self,
        slots: int,
        slot_bytes: int,
        free_list,
        name: str | None = None,
        create: bool = True,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ValueError(
                f"slot_bytes must be >= 1, got {slot_bytes}"
            )
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.free_list = free_list
        if create:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=slots * slot_bytes
            )
        else:
            self._shm = shared_memory.SharedMemory(name=name)
        self.name = self._shm.name
        self._owner = create

    # -- data plane ------------------------------------------------------

    def pack(
        self,
        array: np.ndarray,
        timeout: float | None = None,
        abort: Callable[[], bool] | None = None,
    ) -> "SlotHandle | PickledPayload":
        """Park ``array`` in a free slot (or fall back to pickle).

        Blocks while the ring is full — that is the transport's
        backpressure — until ``timeout`` (:class:`TransportFull`) or
        until ``abort()`` returns true (:class:`TransportClosed`).
        """
        array = np.asarray(array)
        if not _ring_capable(array, self.slot_bytes):
            return PickledPayload(array=array)
        slot = self.free_list.acquire(timeout, abort)
        offset = slot * self.slot_bytes
        view = np.ndarray(
            array.shape,
            dtype=array.dtype,
            buffer=self._shm.buf[offset:offset + array.nbytes],
        )
        np.copyto(view, array)
        del view  # release the buffer view so close() can unmap
        return SlotHandle(
            segment=self.name,
            slot=slot,
            offset=offset,
            shape=tuple(array.shape),
            dtype=array.dtype.str,
            nbytes=array.nbytes,
        )

    def read(self, handle: SlotHandle) -> np.ndarray:
        """Copy a parked array back out (the slot stays allocated)."""
        view = np.ndarray(
            handle.shape,
            dtype=np.dtype(handle.dtype),
            buffer=self._shm.buf[
                handle.offset:handle.offset + handle.nbytes
            ],
        )
        return view.copy()

    def release(self, payload) -> None:
        """Return a slot to the free list (no-op for pickle payloads)."""
        if isinstance(payload, SlotHandle):
            self.free_list.release(payload.slot)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self.free_list.close()
        try:
            self._shm.close()
        except BufferError:  # a live numpy view pins the mapping
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after ``close``)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __repr__(self) -> str:
        return (
            f"<ShmRing {self.name} slots={self.slots} "
            f"slot_bytes={self.slot_bytes}>"
        )


def unpack(payload, attachments: dict) -> np.ndarray:
    """Materialize a payload produced by ``pack`` in another process.

    ``attachments`` caches segment-name → attached
    :class:`~multiprocessing.shared_memory.SharedMemory` mappings for
    the calling process; pass the same dict for every call so each
    segment is mapped once.
    """
    if isinstance(payload, PickledPayload):
        return payload.array
    segment = attachments.get(payload.segment)
    if segment is None:
        segment = shared_memory.SharedMemory(name=payload.segment)
        attachments[payload.segment] = segment
    view = np.ndarray(
        payload.shape,
        dtype=np.dtype(payload.dtype),
        buffer=segment.buf[
            payload.offset:payload.offset + payload.nbytes
        ],
    )
    return view.copy()


def close_attachments(attachments: dict) -> None:
    """Unmap every segment cached by :func:`unpack`."""
    for segment in attachments.values():
        try:
            segment.close()
        except BufferError:
            pass
    attachments.clear()


class FrameTransport:
    """One direction of the heavy data plane, with lazy ring creation.

    The ring's slot size must fit the arrays it will carry, which are
    unknown until the first frame arrives — so the ring is created on
    first :meth:`pack`, sized ``slot_bytes = first_array.nbytes``
    (every frame of a steady stream is the same size; odd larger arrays
    fall back to pickle per the module docstring).  With
    ``kind="pickle"`` no ring is ever created and every payload rides
    the queue.

    Args:
        kind: ``"shm"`` or ``"pickle"``.
        slots: ring depth (frames in flight).
        make_free_list: zero-arg factory for the ring's free list,
            called at ring creation; lets the parent choose
            :class:`LocalFreeList` and workers a
            :class:`QueueFreeList` over a pre-created queue.
    """

    def __init__(
        self,
        kind: str,
        slots: int,
        make_free_list: Callable[[], object] | None = None,
    ) -> None:
        if kind not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {kind!r}"
            )
        self.kind = kind
        self.slots = slots
        self._make_free_list = make_free_list or (
            lambda: LocalFreeList(slots)
        )
        self._ring: ShmRing | None = None

    @property
    def ring(self) -> ShmRing | None:
        """The lazily created ring (``None`` before the first pack)."""
        return self._ring

    def pack(
        self,
        array: np.ndarray,
        timeout: float | None = None,
        abort: Callable[[], bool] | None = None,
    ):
        """Park ``array`` for transport; ring slot or pickle fallback."""
        if self.kind == "pickle":
            return PickledPayload(array=np.asarray(array))
        array = np.asarray(array)
        if self._ring is None:
            if array.dtype.hasobject:
                return PickledPayload(array=array)
            self._ring = ShmRing(
                slots=self.slots,
                slot_bytes=max(1, array.nbytes),
                free_list=self._make_free_list(),
            )
        return self._ring.pack(array, timeout=timeout, abort=abort)

    def release(self, payload) -> None:
        """Free a packed payload's slot (no-op for pickle payloads)."""
        if self._ring is not None:
            self._ring.release(payload)

    def close(self) -> None:
        """Close and unlink the owned ring segment, if one was built."""
        if self._ring is not None:
            self._ring.close()
            self._ring.unlink()
            self._ring = None
