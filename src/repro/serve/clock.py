"""Clock abstraction: real time for serving, fake time for tests.

Every time-dependent piece of :mod:`repro.serve` (frame pacing, batch
deadlines, telemetry windows) reads time through a :class:`Clock` so the
scheduler tests can drive deadlines deterministically with
:class:`FakeClock` — no ``time.sleep`` in the test suite.
"""

from __future__ import annotations

import abc
import time


class Clock(abc.ABC):
    """Minimal monotonic-time interface."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current monotonic time in seconds."""

    @abc.abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (no-op for non-positive values)."""


class MonotonicClock(Clock):
    """Wall-clock implementation over ``time.monotonic``."""

    def now(self) -> float:
        """``time.monotonic()``."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """``time.sleep`` for positive durations."""
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """Manually advanced clock for deterministic tests.

    ``sleep`` advances time instead of blocking and records every
    requested duration in :attr:`sleeps`, so tests can assert pacing
    behaviour (frame intervals, jitter) without waiting for it.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: list[float] = []

    def now(self) -> float:
        """The manually advanced fake time."""
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance fake time and record the requested duration."""
        self.sleeps.append(float(seconds))
        if seconds > 0:
            self._now += float(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self._now += float(seconds)
