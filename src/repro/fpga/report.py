"""Human-readable accelerator reports (per-op utilization, roofline)."""

from __future__ import annotations

from repro.fpga.pe import PE_LANES
from repro.fpga.scheduler import N_PES, ScheduleReport


def op_utilization(report: ScheduleReport) -> dict[str, float]:
    """Per-op PE utilization: achieved MACs / (cycles * peak MACs/cycle).

    Utilization below 1.0 comes from pipeline drain, reduction padding
    (K not a multiple of 16) and the elementwise ops that bypass the PE
    multipliers entirely.
    """
    peak_per_cycle = N_PES * PE_LANES
    out = {}
    for op in report.ops:
        if op.cycles <= 0:
            continue
        out[op.name] = op.macs / (op.cycles * peak_per_cycle)
    return out


def utilization_summary(report: ScheduleReport) -> str:
    """Overall + worst/best op utilization summary."""
    per_op = op_utilization(report)
    matmul_ops = {k: v for k, v in per_op.items() if v > 0}
    total = report.total_macs / (
        report.total_cycles * N_PES * PE_LANES
    )
    lines = [
        f"overall PE utilization: {100 * total:.1f} %",
    ]
    if matmul_ops:
        best = max(matmul_ops, key=matmul_ops.get)
        worst = min(matmul_ops, key=matmul_ops.get)
        lines.append(
            f"best matmul op:  {best} ({100 * matmul_ops[best]:.1f} %)"
        )
        lines.append(
            f"worst matmul op: {worst} ({100 * matmul_ops[worst]:.1f} %)"
        )
    return "\n".join(lines)
