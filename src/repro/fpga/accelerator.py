"""End-to-end accelerator simulation.

:class:`TinyVbfAccelerator` binds a trained Tiny-VBF model to a
quantization scheme and produces everything the paper reports about the
FPGA deployment:

* bit-accurate quantized outputs (identical quantization points as the
  hardware datapath, via :mod:`repro.quant.qexec`),
* the cycle schedule and frame latency at 100 MHz,
* the BRAM plan for weights, activations and attention scores,
* the resource/power estimate for the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.memory import BramPlan
from repro.fpga.resources import ResourceEstimate, estimate_resources
from repro.fpga.scheduler import ScheduleReport, schedule_tiny_vbf
from repro.models.tiny_vbf import TinyVbfNetwork
from repro.nn import Model
from repro.quant.qexec import quantized_forward
from repro.quant.schemes import QuantizationScheme

_FLOAT_BITS = 32


@dataclass
class AcceleratorReport:
    """Everything observable about one accelerator configuration."""

    scheme: str
    schedule: ScheduleReport
    bram: BramPlan
    resources: ResourceEstimate

    @property
    def latency_s(self) -> float:
        return self.schedule.latency_s

    def summary(self) -> str:
        return "\n".join(
            [
                f"Tiny-VBF accelerator @100 MHz, scheme: {self.scheme}",
                self.schedule.table(),
                self.bram.report(),
                f"resources: {self.resources.as_dict()}",
            ]
        )


class TinyVbfAccelerator:
    """Simulated 4-PE Tiny-VBF accelerator (paper Figs. 5-8)."""

    def __init__(self, model: Model, scheme: QuantizationScheme) -> None:
        if not isinstance(model.root, TinyVbfNetwork):
            raise TypeError(
                "TinyVbfAccelerator requires a Tiny-VBF model, got "
                f"{type(model.root).__name__}"
            )
        self.model = model
        self.scheme = scheme
        self.config = model.root.config

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute one (batched) frame on the quantized datapath."""
        return quantized_forward(self.model.root, np.asarray(x, float),
                                 self.scheme)

    def plan_memory(self) -> BramPlan:
        """BRAM allocation: weights, ping-pong activations, scores."""
        config = self.config
        scheme = self.scheme
        weight_bits = (
            _FLOAT_BITS if scheme.weights is None
            else scheme.weights.total_bits
        )
        inter_bits = (
            _FLOAT_BITS if scheme.intermediate is None
            else scheme.intermediate.total_bits
        )
        arith_bits = (
            _FLOAT_BITS if scheme.arithmetic is None
            else scheme.arithmetic.total_bits
        )

        plan = BramPlan()
        plan.allocate("weights", self.model.n_parameters, weight_bits)
        pixels = config.image_shape[0] * config.image_shape[1]
        widest = max(
            config.input_channels,
            (config.channel_hidden or 0),
            config.channel_projection,
            config.head_input,
        )
        # Double-buffered activation storage for the widest pixel map.
        plan.allocate("activations", 2 * pixels * widest, inter_bits)
        tokens = config.n_tokens
        plan.allocate("tokens", 2 * tokens * config.d_model, inter_bits)
        plan.allocate(
            "attention_scores",
            config.n_heads * tokens * tokens,
            arith_bits,
        )
        plan.allocate("io", 2 * pixels * 2, inter_bits)
        return plan

    def report(self) -> AcceleratorReport:
        return AcceleratorReport(
            scheme=self.scheme.name,
            schedule=schedule_tiny_vbf(self.config),
            bram=self.plan_memory(),
            resources=estimate_resources(self.scheme),
        )
