"""Resource and power model, calibrated against the paper's Table VI.

Synthesis results cannot be generated offline, so this module models the
ZCU104 utilization of the Tiny-VBF accelerator as a function of the
quantization scheme and calibrates it against the paper's published
numbers:

* **uniform widths** anchor a piecewise-linear curve per resource at
  16 / 20 / 24 / 32(float) bits — the arithmetic width dominates the
  datapath (multipliers, adder trees, registers, buffers),
* **role deltas**: a scheme whose weight or softmax width differs from
  its arithmetic width shifts each resource by per-bit coefficients
  ``(C_w, C_s)``, solved exactly from the two published hybrid columns.

The model therefore reproduces Table VI by construction at the published
schemes and interpolates/extrapolates for new schemes (used by the
ablation benches).  The empirical DSP non-monotonicity (16-bit maps more
multipliers into DSP48 slices than 20-bit, where Vivado splits them
between DSP and fabric) is captured by the anchors themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.schemes import QuantizationScheme

RESOURCE_FIELDS = ("lut", "ff", "bram", "dsp", "lutram", "power_w")

# Paper Table VI (ZCU104, 100 MHz).
PAPER_TABLE_VI: dict[str, dict[str, float]] = {
    "float": dict(lut=124935, ff=91470, bram=161.5, dsp=533,
                  lutram=17589, power_w=4.489),
    "24 bits": dict(lut=88457, ff=50454, bram=158, dsp=279,
                    lutram=11556, power_w=4.369),
    "20 bits": dict(lut=84594, ff=43333, bram=156, dsp=148,
                    lutram=9442, power_w=4.174),
    "16 bits": dict(lut=59840, ff=34920, bram=82, dsp=274,
                    lutram=6795, power_w=3.989),
    "hybrid-1": dict(lut=72415, ff=38287, bram=150, dsp=146,
                     lutram=5352, power_w=4.229),
    "hybrid-2": dict(lut=61951, ff=29105, bram=110, dsp=274,
                     lutram=5324, power_w=4.174),
}

# ZCU104 (XCZU7EV) device capacity, for utilization percentages.
ZCU104_CAPACITY = dict(
    lut=230400, ff=460800, bram=312, dsp=1728, lutram=101760,
    power_w=float("nan"),
)

_UNIFORM_ANCHORS = {16: "16 bits", 20: "20 bits", 24: "24 bits",
                    32: "float"}


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated ZCU104 utilization for one scheme."""

    scheme: str
    lut: float
    ff: float
    bram: float
    dsp: float
    lutram: float
    power_w: float

    def as_dict(self) -> dict[str, float]:
        return {field: getattr(self, field) for field in RESOURCE_FIELDS}

    def utilization_percent(self) -> dict[str, float]:
        out = {}
        for field in RESOURCE_FIELDS:
            capacity = ZCU104_CAPACITY[field]
            value = getattr(self, field)
            out[field] = (
                float("nan") if np.isnan(capacity)
                else 100.0 * value / capacity
            )
        return out


def _interp_uniform(resource: str, bits: float) -> float:
    """Piecewise-linear interpolation over the uniform-width anchors."""
    anchor_bits = sorted(_UNIFORM_ANCHORS)
    values = [
        PAPER_TABLE_VI[_UNIFORM_ANCHORS[b]][resource] for b in anchor_bits
    ]
    return float(np.interp(bits, anchor_bits, values))


def _role_delta_coefficients(resource: str) -> tuple[float, float]:
    """Solve (C_w, C_s) from the two published hybrid columns.

    Hybrid-k satisfies::

        paper_Hk = uniform(arith_k) + C_w (w_k - arith_k)
                                    + C_s (s_k - arith_k)

    with (w, s, arith) = (8, 24, 20) for Hybrid-1 and (8, 24, 16) for
    Hybrid-2 — two equations, two unknowns.
    """
    h1 = PAPER_TABLE_VI["hybrid-1"][resource] - _interp_uniform(
        resource, 20
    )
    h2 = PAPER_TABLE_VI["hybrid-2"][resource] - _interp_uniform(
        resource, 16
    )
    # H1: -12 C_w + 4 C_s = h1 ;  H2: -8 C_w + 8 C_s = h2
    matrix = np.array([[-12.0, 4.0], [-8.0, 8.0]])
    cw, cs = np.linalg.solve(matrix, np.array([h1, h2]))
    return float(cw), float(cs)


def estimate_resources(scheme: QuantizationScheme) -> ResourceEstimate:
    """Estimate ZCU104 utilization of the accelerator under ``scheme``."""
    if scheme.is_float:
        return ResourceEstimate(scheme="float",
                                **PAPER_TABLE_VI["float"])

    arith = scheme.arithmetic.total_bits
    weights = scheme.weights.total_bits
    softmax = scheme.softmax.total_bits

    values: dict[str, float] = {}
    for resource in RESOURCE_FIELDS:
        base = _interp_uniform(resource, arith)
        cw, cs = _role_delta_coefficients(resource)
        estimate = base + cw * (weights - arith) + cs * (softmax - arith)
        values[resource] = max(0.0, estimate)
    return ResourceEstimate(scheme=scheme.name, **values)


def reduction_vs_float(estimate: ResourceEstimate) -> dict[str, float]:
    """Per-resource reduction (%) relative to the float implementation.

    Fig. 1(b) of the paper shows this comparison for the hybrid scheme;
    the headline claim is a >50 % reduction for Hybrid-2 on the logic
    resources.
    """
    float_row = PAPER_TABLE_VI["float"]
    out = {}
    for field in RESOURCE_FIELDS:
        reference = float_row[field]
        out[field] = 100.0 * (1.0 - getattr(estimate, field) / reference)
    return out


def utilization_table(estimates: list[ResourceEstimate]) -> str:
    """Paper-style utilization table (rows = resources, cols = schemes)."""
    header = f"{'Resource':10s}" + "".join(
        f"{e.scheme:>12s}" for e in estimates
    )
    lines = [header]
    for field in RESOURCE_FIELDS:
        row = f"{field.upper():10s}"
        for estimate in estimates:
            value = getattr(estimate, field)
            row += (
                f"{value:12.3f}" if field == "power_w" else f"{value:12.1f}"
            )
        lines.append(row)
    return "\n".join(lines)
