"""Bit-accurate integer-datapath PE emulation (the pe_test pipeline).

:mod:`repro.fpga.pe` models the accelerator's processing element as a
*float* pipeline that re-quantizes after every tree level — faithful to
the per-level-rounding registers of Fig. 8b, but still floating point
under the hood.  This module emulates the PE the way the RTL testbench
sees it: operands are converted to their formats' raw integer step
counts, multiplied per lane with a DSP-style **segmented multiply**,
aligned, and accumulated **at full width** across the 16 lanes and all
chunks; the result is quantized exactly once at the end
(``round_at_end``), or after every product/tree level/accumulator add
(``per_level``, matching :class:`repro.fpga.pe.ProcessingElement`).

Datapath (``round_at_end``)::

    a ──to_steps──┐ 16 lanes   seg-mul    align      full-width
    b ──to_steps──┴──────────▶ hi·2^s+lo ─▶ <<,+ ──▶ Σ (int, fa+fb) ─┐
                                                                     │
        arithmetic grid ◀── saturate ◀── round-half-even shift ◀─────┘

Both modes share the integer front end; they differ only in *where*
rounding happens, so their divergence is exactly the per-product
rounding error: absent saturation, ``|per_level - round_at_end|`` is at
most ``(n + 1) / 2`` steps of the arithmetic format for an ``n``-element
dot product (``n/2`` from rounding each product, ``1/2`` from the final
round; tree and accumulator adds of on-grid values are exact).  The
golden testbench under ``tests/golden/pe`` pins both modes bit-for-bit
against a slow pure-Python reference and pins engineered cases where
the modes *must* diverge, so they can never be silently conflated.

Equivalence to :mod:`repro.quant.qexec`: the fake-quantized executor
computes ``fmt.quantize(x @ w)`` — a float dot product rounded *once*.
Whenever every partial sum is float64-exact (true for Table-III word
lengths at realistic magnitudes), that is precisely the round-at-end
integer pipeline, which is why ``pe="emu"`` reproduces the modeled
tables bit-for-bit while actually exercising the hardware datapath.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fpga.pe import PE_LANES, _TREE_LEVELS
from repro.quant.fixed_point import FixedPointFormat
from repro.quant.schemes import QuantizationScheme

#: Selectable rounding placements (see module docstring).
ROUNDING_MODES = ("round_at_end", "per_level")

#: Width of one DSP partial product (a DSP48-style 17-bit slice): lane
#: operands wider than this are split into ``hi * 2**17 + lo`` and
#: multiplied in two passes, exactly like the synthesized multiplier.
SEGMENT_BITS = 17

#: Extra pipeline stages of the round-at-end datapath beyond the chunk
#: stream: 2 segmented-multiply stages, the 4-level lane compressor,
#: the full-width accumulate and the single final round.
_ROUND_AT_END_DRAIN = 2 + _TREE_LEVELS + 1 + 1

#: Drain of the per-level pipeline — identical to
#: :class:`repro.fpga.pe.ProcessingElement` (tree levels + accumulator).
_PER_LEVEL_DRAIN = _TREE_LEVELS + 1

#: Accumulators wider than this fall back to Python-int (object dtype)
#: arithmetic; int64 matmuls would silently wrap past 63 bits.
_INT64_SAFE_BITS = 62


def segmented_multiply(
    ia: np.ndarray, ib: np.ndarray, segment_bits: int = SEGMENT_BITS
) -> np.ndarray:
    """Per-lane DSP-style product: ``ia * (hi(ib) << s) + ia * lo(ib)``.

    ``ib`` is split at ``segment_bits`` into an unsigned low slice and
    an arithmetically-shifted high slice (two's complement makes the
    split identity hold for negative operands); the two partial
    products are realigned and summed.  Bit-identical to the direct
    product — asserted by the testbench — but structured the way the
    FPGA multiplier actually computes it.
    """
    ia = np.asarray(ia)
    ib = np.asarray(ib)
    mask = (1 << segment_bits) - 1
    lo = ib & mask
    hi = (ib - lo) >> segment_bits
    return ((ia * hi) << segment_bits) + (ia * lo)


def _shift_round_half_even(steps: np.ndarray, shift: int) -> np.ndarray:
    """Integer ``round(steps / 2**shift)`` with ties to even.

    Matches :func:`numpy.round` (banker's rounding) exactly, but stays
    in integer arithmetic so it is correct beyond float64's 53-bit
    mantissa.  Negative ``shift`` is an exact left shift.
    """
    if shift <= 0:
        return steps << (-shift)
    floor = steps >> shift
    remainder = steps - (floor << shift)
    half = 1 << (shift - 1)
    round_up = (remainder > half) | (
        (remainder == half) & ((floor & 1) == 1)
    )
    return floor + round_up


def _saturate(steps: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Clip integer step counts to ``fmt``'s two's-complement range."""
    return np.clip(
        steps,
        -(2 ** (fmt.total_bits - 1)),
        2 ** (fmt.total_bits - 1) - 1,
    )


class EmulatedPE:
    """Integer-datapath emulation of one 16-lane processing element.

    Args:
        arithmetic: result format (``None`` = float passthrough — both
            rounding modes degenerate to a plain float GEMM).
        a_format: format of the streamed operand (activations); defaults
            to ``arithmetic``.
        b_format: format of the stationary operand (weights); defaults
            to ``arithmetic``.
        rounding_mode: ``"round_at_end"`` (pe_test pipeline, the
            hardware datapath) or ``"per_level"`` (bit-compatible with
            :class:`repro.fpga.pe.ProcessingElement`).
        lanes: multiplier lanes per chunk (the paper's PE has 16).

    Operands are quantized to their formats on entry (idempotent for
    on-grid inputs, saturating for out-of-range ones — exactly what the
    BRAM word width enforces).
    """

    def __init__(
        self,
        arithmetic: FixedPointFormat | None,
        a_format: FixedPointFormat | None = None,
        b_format: FixedPointFormat | None = None,
        rounding_mode: str = "round_at_end",
        lanes: int = PE_LANES,
    ) -> None:
        if rounding_mode not in ROUNDING_MODES:
            raise ValueError(
                f"rounding_mode must be one of {ROUNDING_MODES}, got "
                f"{rounding_mode!r}"
            )
        if lanes < 1 or lanes & (lanes - 1):
            raise ValueError(f"lanes must be a power of two, got {lanes}")
        self.arithmetic = arithmetic
        self.a_format = a_format if a_format is not None else arithmetic
        self.b_format = b_format if b_format is not None else arithmetic
        self.rounding_mode = rounding_mode
        self.lanes = lanes

    @classmethod
    def for_scheme(
        cls,
        scheme: QuantizationScheme,
        rounding_mode: str = "round_at_end",
    ) -> "EmulatedPE":
        """The PE computing ``activations @ weights`` under ``scheme``."""
        return cls(
            scheme.arithmetic,
            a_format=scheme.intermediate,
            b_format=scheme.weights,
            rounding_mode=rounding_mode,
        )

    # -- declared widths -------------------------------------------------

    def accumulator_bits(self, n: int) -> int:
        """Declared two's-complement width of the full accumulator.

        ``Ta + Tb`` bits hold any single product (including the
        ``-min * -min`` corner); ``ceil(log2(n))`` more absorb the sum
        of ``n`` of them.  The property suite asserts no accumulator
        value ever escapes this width.
        """
        if self.arithmetic is None:
            raise ValueError("float PEs have no integer accumulator")
        assert self.a_format is not None and self.b_format is not None
        growth = max(0, math.ceil(math.log2(max(n, 1))))
        return self.a_format.total_bits + self.b_format.total_bits + growth

    def n_chunks(self, n: int) -> int:
        """Chunks of ``lanes`` operand pairs streamed for length ``n``."""
        return max(1, -(-n // self.lanes))

    @property
    def pipeline_drain_cycles(self) -> int:
        """Cycles to flush the pipeline after the last chunk issues."""
        if self.rounding_mode == "per_level":
            return _PER_LEVEL_DRAIN
        return _ROUND_AT_END_DRAIN

    def dot_cycles(self, n: int) -> int:
        """Cycle count of one length-``n`` dot (II=1 chunk stream)."""
        return self.n_chunks(n) + self.pipeline_drain_cycles

    def matvec_cycles(self, n_rows: int, n: int) -> int:
        """Cycles for ``n_rows`` back-to-back dots (drain overlapped)."""
        return n_rows * self.n_chunks(n) + self.pipeline_drain_cycles

    # -- integer front end -----------------------------------------------

    def _steps(
        self, values: np.ndarray, fmt: FixedPointFormat, n: int
    ) -> np.ndarray:
        """Operand step counts, widened past int64 when ``n`` needs it."""
        steps = fmt.to_integers(values)
        if self.accumulator_bits(n) > _INT64_SAFE_BITS:
            return steps.astype(object)
        return steps

    def accumulate_steps(
        self, a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """Raw full-width accumulator of ``a . b`` in product steps.

        Exposed for the property suite: the returned integers carry
        ``a_format.fraction_bits + b_format.fraction_bits`` fraction
        bits and must fit :meth:`accumulator_bits` of the dot length.
        """
        if self.arithmetic is None:
            raise ValueError("float PEs have no integer accumulator")
        assert self.a_format is not None and self.b_format is not None
        a = np.asarray(a, dtype=float).ravel()
        b = np.asarray(b, dtype=float).ravel()
        ia = self._steps(a, self.a_format, a.size)
        ib = self._steps(b, self.b_format, b.size)
        acc = segmented_multiply(ia, ib).sum()
        return np.asarray(acc)

    # -- the three kernel shapes ------------------------------------------

    def matmul(
        self, a: np.ndarray, b: np.ndarray, scale: float = 1.0
    ) -> np.ndarray:
        """``(a @ b) * scale`` through the emulated datapath.

        ``a`` is ``(..., n)`` on the ``a_format`` grid, ``b`` is
        ``(n,)``/``(n, m)`` — or batched ``(..., n, m)`` with leading
        axes matching ``a``'s, the attention shapes — on the
        ``b_format`` grid; the result lands on the ``arithmetic`` grid.
        ``scale`` (attention's ``1/sqrt(d_k)``) is folded into the
        single final rounding stage — the hardware's post-accumulator
        scaling multiplier — via one float multiply, mirroring
        bit-for-bit what the fake-quantized executor rounds.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        inner = b.shape[0] if b.ndim == 1 else b.shape[-2]
        if a.shape[-1] != inner:
            raise ValueError(
                f"operand shapes {a.shape} and {b.shape} do not chain"
            )
        if b.ndim > 2 and a.shape[:-1][: b.ndim - 2] != b.shape[:-2]:
            raise ValueError(
                f"batched operand shapes {a.shape} and {b.shape} "
                f"disagree on their leading axes"
            )
        if self.arithmetic is None:
            result: np.ndarray = a @ b
            if scale != 1.0:
                result = result * scale
            return result
        assert self.a_format is not None and self.b_format is not None
        n = a.shape[-1]
        ia = self._steps(a, self.a_format, n)
        ib = self._steps(b, self.b_format, n)
        if self.rounding_mode == "per_level":
            steps = self._per_level_batched(ia, ib)
            if scale != 1.0:
                # Post-accumulator scaling multiplier: rescale the
                # on-grid accumulator and round once more.
                steps = np.round(steps.astype(float) * scale)
        else:
            acc = self._full_accumulate(ia, ib)
            if scale == 1.0:
                steps = _shift_round_half_even(acc, self._product_shift())
            else:
                # Fold the scale into the single final round: the
                # full-width accumulator value is float64-exact for
                # Table-III widths at realistic dot lengths, and
                # ``round((value * scale) / resolution)`` is
                # operation-for-operation what the fake-quantized
                # executor computes — so emulated attention scores stay
                # bit-equal to qexec's.
                fraction = (
                    self.a_format.fraction_bits
                    + self.b_format.fraction_bits
                )
                value = acc.astype(float) * 2.0 ** (-fraction)
                steps = np.round(
                    (value * scale) / self.arithmetic.resolution
                )
        steps = _saturate(steps, self.arithmetic)
        return self.arithmetic.from_integers(
            np.asarray(steps).astype(np.int64)
        )

    def matvec(
        self, matrix: np.ndarray, vector: np.ndarray, scale: float = 1.0
    ) -> tuple[np.ndarray, int]:
        """Row-wise ``matrix @ vector`` with the pipelined cycle count.

        ``matrix`` rows stream through the lanes (``a_format``), the
        stationary ``vector`` holds the weights (``b_format``) — the
        same operand roles as
        :meth:`repro.fpga.pe.ProcessingElement.matvec`.
        """
        matrix = np.asarray(matrix, dtype=float)
        vector = np.asarray(vector, dtype=float).ravel()
        if matrix.ndim != 2 or matrix.shape[1] != vector.size:
            raise ValueError(
                f"matrix {matrix.shape} incompatible with vector of "
                f"size {vector.size}"
            )
        values = self.matmul(matrix, vector[:, None], scale=scale)[:, 0]
        return values, self.matvec_cycles(matrix.shape[0], vector.size)

    def dot(
        self, a: np.ndarray, b: np.ndarray, scale: float = 1.0
    ) -> tuple[float, int]:
        """One dot product: ``(value, cycles)``, zero-padded lanes free."""
        a = np.asarray(a, dtype=float).ravel()
        b = np.asarray(b, dtype=float).ravel()
        if a.shape != b.shape:
            raise ValueError(
                f"operand shapes differ: {a.shape} vs {b.shape}"
            )
        value = self.matmul(a[None, :], b[:, None], scale=scale)[0, 0]
        return float(value), self.dot_cycles(a.size)

    # -- rounding-mode back ends ------------------------------------------

    def _product_shift(self) -> int:
        """Right shift from product fraction bits to the result grid."""
        assert (
            self.arithmetic is not None
            and self.a_format is not None
            and self.b_format is not None
        )
        return (
            self.a_format.fraction_bits
            + self.b_format.fraction_bits
            - self.arithmetic.fraction_bits
        )

    def _full_accumulate(
        self, ia: np.ndarray, ib: np.ndarray
    ) -> np.ndarray:
        """Full-width integer accumulator of the round-at-end pipeline.

        The lane/chunk structure is immaterial here — integer addition
        is exact and associative, so the packed ``ia @ ib`` (with the
        segmented multiply distributed over the sum) *is* the lane-wise
        pipeline's accumulator, just computed as one GEMM.
        """
        mask = (1 << SEGMENT_BITS) - 1
        lo = ib & mask
        hi = (ib - lo) >> SEGMENT_BITS
        acc: np.ndarray = ((ia @ hi) << SEGMENT_BITS) + (ia @ lo)
        return acc

    def _per_level_batched(
        self, ia: np.ndarray, ib: np.ndarray
    ) -> np.ndarray:
        """Slice a batched stationary operand into 2-D tree reductions."""
        if ib.ndim <= 2:
            return self._per_level_steps(ia, ib)
        batch = ib.shape[:-2]
        first = self._per_level_steps(
            ia[(0,) * len(batch)], ib[(0,) * len(batch)]
        )
        out = np.empty(batch + first.shape, dtype=first.dtype)
        out[(0,) * len(batch)] = first
        for index in np.ndindex(*batch):
            if any(index):
                out[index] = self._per_level_steps(ia[index], ib[index])
        return out

    def _per_level_steps(
        self, ia: np.ndarray, ib: np.ndarray
    ) -> np.ndarray:
        """Per-product round + saturating tree/accumulator adds.

        Bit-compatible with the float
        :class:`repro.fpga.pe.ProcessingElement` on on-grid operands:
        rounding a sum of on-grid values is the identity, so the float
        tree's quantize-per-level reduces to the saturation this path
        applies after every add.
        """
        assert self.arithmetic is not None
        shift = self._product_shift()
        n = ia.shape[-1]
        chunks = self.n_chunks(n)
        padded = chunks * self.lanes
        ia_pad = np.zeros(ia.shape[:-1] + (padded,), dtype=ia.dtype)
        ia_pad[..., :n] = ia
        ib_pad = np.zeros((padded,) + ib.shape[1:], dtype=ib.dtype)
        ib_pad[:n] = ib

        batch = ia_pad.reshape(-1, padded)
        m = ib_pad.reshape(padded, -1).shape[1]
        out = np.zeros((batch.shape[0], m), dtype=ia.dtype)
        # Per-lane product tensors are (rows, padded, m); bound the
        # temporary to ~32 MB by slabbing the row axis.
        max_cells = 1 << 22
        rows_per_slab = max(1, max_cells // max(1, padded * m))
        for start in range(0, batch.shape[0], rows_per_slab):
            rows = batch[start:start + rows_per_slab]
            products = segmented_multiply(
                rows[:, :, None], ib_pad.reshape(padded, -1)[None, :, :]
            )
            lanewise = _saturate(
                _shift_round_half_even(products, shift), self.arithmetic
            )
            tree = lanewise.reshape(
                rows.shape[0], chunks, self.lanes, m
            )
            for _ in range(_TREE_LEVELS):
                tree = _saturate(
                    tree[:, :, 0::2, :] + tree[:, :, 1::2, :],
                    self.arithmetic,
                )
            accumulator = np.zeros((rows.shape[0], m), dtype=ia.dtype)
            for chunk in range(chunks):
                accumulator = _saturate(
                    accumulator + tree[:, chunk, 0, :], self.arithmetic
                )
            out[start:start + rows.shape[0]] = accumulator
        return out.reshape(ia.shape[:-1] + ib.shape[1:])

    def __repr__(self) -> str:
        fmt = "float" if self.arithmetic is None else str(self.arithmetic)
        return (
            f"<EmulatedPE {fmt} mode={self.rounding_mode} "
            f"lanes={self.lanes}>"
        )
