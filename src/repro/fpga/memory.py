"""On-chip BRAM capacity model.

Zynq UltraScale+ block RAM comes in 36 Kb blocks (usable as two 18 Kb
halves).  The port geometry quantizes word widths: words of at most 18
bits pack two-per-36-bit-port (doubling effective depth), words of 19-36
bits occupy a full port.  This is exactly the effect visible in the
paper's Table VI BRAM column: 16-bit quantization halves the BRAM count
relative to 20/24-bit while 20-bit barely changes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_BRAM36_BITS = 36 * 1024
_FULL_PORT_BITS = 36
_HALF_PORT_BITS = 18


def bram_blocks_for(n_words: int, word_bits: int) -> float:
    """BRAM36 blocks needed for ``n_words`` of ``word_bits`` each.

    Width over 36 bits uses multiple ports per word; width at or below
    18 bits packs two words per port row.  Returns halves (0.5 steps)
    since a BRAM36 splits into two independent 18 Kb halves.
    """
    if n_words < 0 or word_bits < 1:
        raise ValueError(
            f"need n_words >= 0 and word_bits >= 1, got {n_words}, "
            f"{word_bits}"
        )
    if n_words == 0:
        return 0.0
    ports_per_word = int(np.ceil(word_bits / _FULL_PORT_BITS))
    if word_bits <= _HALF_PORT_BITS:
        effective_rows = int(np.ceil(n_words / 2))
    else:
        effective_rows = n_words
    bits = effective_rows * ports_per_word * _FULL_PORT_BITS
    halves = int(np.ceil(bits / (_BRAM36_BITS / 2)))
    return halves / 2.0


@dataclass
class BramPlan:
    """Named BRAM allocations for an accelerator configuration."""

    allocations: dict[str, float] = field(default_factory=dict)

    def allocate(self, name: str, n_words: int, word_bits: int) -> float:
        blocks = bram_blocks_for(n_words, word_bits)
        self.allocations[name] = self.allocations.get(name, 0.0) + blocks
        return blocks

    @property
    def total_blocks(self) -> float:
        return float(sum(self.allocations.values()))

    def report(self) -> str:
        lines = ["BRAM plan:"]
        for name, blocks in sorted(self.allocations.items()):
            lines.append(f"  {name:30s} {blocks:8.1f} BRAM36")
        lines.append(f"  {'total':30s} {self.total_blocks:8.1f} BRAM36")
        return "\n".join(lines)
