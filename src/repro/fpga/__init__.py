"""FPGA accelerator simulation (paper Section III-D and IV-A).

The paper deploys Tiny-VBF on a Zynq UltraScale+ MPSoC ZCU104 at 100 MHz
with a 4-PE accelerator — each PE performing 16 element-wise
multiplications feeding an adder tree (Figs. 5-8) — and reports resource
utilization per quantization scheme (Table VI).  No FPGA exists in this
environment, so this package simulates the accelerator's observables:

* :mod:`repro.fpga.pe` — bit-accurate processing element (16 multipliers
  + adder tree) operating on fixed-point values,
* :mod:`repro.fpga.memory` — BRAM capacity model (36 Kb blocks, 18-bit
  port packing),
* :mod:`repro.fpga.scheduler` — op-level cycle schedule of the Tiny-VBF
  graph on the 4-PE array at 100 MHz,
* :mod:`repro.fpga.accelerator` — end-to-end accelerator run: quantized
  outputs plus the cycle/latency/memory report,
* :mod:`repro.fpga.resources` — resource/power model calibrated against
  the paper's published Table VI.
"""

from repro.fpga.pe import AdderTree, ProcessingElement
from repro.fpga.memory import BramPlan, bram_blocks_for
from repro.fpga.scheduler import (
    CLOCK_HZ,
    OpSchedule,
    ScheduleReport,
    schedule_tiny_vbf,
)
from repro.fpga.accelerator import AcceleratorReport, TinyVbfAccelerator
from repro.fpga.resources import (
    PAPER_TABLE_VI,
    ResourceEstimate,
    estimate_resources,
)

__all__ = [
    "ProcessingElement",
    "AdderTree",
    "BramPlan",
    "bram_blocks_for",
    "CLOCK_HZ",
    "OpSchedule",
    "ScheduleReport",
    "schedule_tiny_vbf",
    "TinyVbfAccelerator",
    "AcceleratorReport",
    "ResourceEstimate",
    "estimate_resources",
    "PAPER_TABLE_VI",
]
