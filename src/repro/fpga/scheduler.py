"""Cycle-level schedule of Tiny-VBF on the 4-PE accelerator.

The accelerator (paper Fig. 5) has 4 processing elements, each doing 16
multiplies + an adder tree per cycle, with all operands in on-chip BRAM.
Every layer of Tiny-VBF lowers to matrix multiplies (Figs. 6-8) plus the
non-linear units (ReLU, softmax, division, sqrt).  The schedule counts,
per op:

    cycles = ceil(output_elements * ceil(K / 16) / 4) + pipeline drain

i.e. each output element needs ``ceil(K/16)`` PE passes, work is spread
over 4 PEs at initiation interval 1.  Softmax / layer-norm elements run
through their dedicated units at one element per cycle per unit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga.pe import PE_LANES
from repro.models.tiny_vbf import TinyVbfConfig

CLOCK_HZ = 100e6
N_PES = 4
_PIPELINE_DRAIN = 6  # tree latency + accumulator + writeback


@dataclass(frozen=True)
class OpSchedule:
    """One scheduled operation."""

    name: str
    m: int  # output rows
    k: int  # reduction depth
    n: int  # output cols
    cycles: int
    macs: int


def _matmul_op(
    name: str, m: int, k: int, n: int, n_pes: int = N_PES
) -> OpSchedule:
    """Schedule an (m x k) @ (k x n) matmul on the PE array."""
    passes_per_element = int(np.ceil(k / PE_LANES))
    total_passes = m * n * passes_per_element
    cycles = int(np.ceil(total_passes / n_pes)) + _PIPELINE_DRAIN
    return OpSchedule(
        name=name, m=m, k=k, n=n, cycles=cycles, macs=m * k * n
    )


def _elementwise_op(name: str, elements: int, unit_count: int = 1,
                    cycles_per_element: int = 1) -> OpSchedule:
    cycles = int(
        np.ceil(elements * cycles_per_element / unit_count)
    ) + _PIPELINE_DRAIN
    return OpSchedule(
        name=name, m=elements, k=1, n=1, cycles=cycles, macs=0
    )


@dataclass
class ScheduleReport:
    """Complete schedule of one Tiny-VBF frame."""

    ops: list[OpSchedule]

    @property
    def total_cycles(self) -> int:
        return sum(op.cycles for op in self.ops)

    @property
    def total_macs(self) -> int:
        return sum(op.macs for op in self.ops)

    @property
    def latency_s(self) -> float:
        return self.total_cycles / CLOCK_HZ

    @property
    def frames_per_second(self) -> float:
        return 1.0 / self.latency_s

    def table(self) -> str:
        lines = [
            f"{'op':34s} {'MxKxN':>18s} {'cycles':>12s} {'MACs':>14s}"
        ]
        for op in self.ops:
            shape = f"{op.m}x{op.k}x{op.n}"
            lines.append(
                f"{op.name:34s} {shape:>18s} {op.cycles:>12,} "
                f"{op.macs:>14,}"
            )
        lines.append(
            f"{'TOTAL':34s} {'':>18s} {self.total_cycles:>12,} "
            f"{self.total_macs:>14,}"
        )
        lines.append(
            f"latency @100 MHz: {self.latency_s * 1e3:.2f} ms "
            f"({self.frames_per_second:.2f} frames/s)"
        )
        return "\n".join(lines)


def schedule_tiny_vbf(
    config: TinyVbfConfig, n_pes: int = N_PES
) -> ScheduleReport:
    """Schedule one full Tiny-VBF frame on the accelerator.

    ``n_pes`` overrides the PE-array size for the scaling ablation
    (the paper's design point is 4).
    """
    if n_pes < 1:
        raise ValueError(f"n_pes must be >= 1, got {n_pes}")
    nz, nx = config.image_shape
    pixels = nz * nx
    tokens = config.n_tokens
    d = config.d_model
    heads = config.n_heads
    head_dim = d // heads
    ops: list[OpSchedule] = []

    # Encoder: per-pixel channel compression dense layer(s).
    width = config.input_channels
    if config.channel_hidden is not None:
        ops.append(
            _matmul_op("encoder/channel_dense0", pixels, width,
                       config.channel_hidden, n_pes=n_pes)
        )
        ops.append(_elementwise_op("encoder/relu0",
                                   pixels * config.channel_hidden,
                                   unit_count=N_PES * PE_LANES))
        width = config.channel_hidden
    ops.append(
        _matmul_op("encoder/channel_dense1", pixels, width,
                   config.channel_projection, n_pes=n_pes)
    )
    ops.append(_elementwise_op("encoder/relu1",
                               pixels * config.channel_projection,
                               unit_count=N_PES * PE_LANES))

    # Patch embedding.
    ops.append(
        _matmul_op("encoder/patch_embed", tokens,
                   config.patch_features, d, n_pes=n_pes)
    )
    ops.append(_elementwise_op("encoder/pos_embed", tokens * d,
                               unit_count=N_PES * PE_LANES))

    for block in range(config.n_blocks):
        prefix = f"block{block}"
        # Layer norm: division + sqrt unit, a few cycles per element.
        ops.append(_elementwise_op(f"{prefix}/ln1", tokens * d,
                                   unit_count=N_PES,
                                   cycles_per_element=2))
        # Q, K, V projections (Fig. 6).
        for proj in ("query", "key", "value"):
            ops.append(_matmul_op(f"{prefix}/mha/{proj}", tokens, d, d, n_pes=n_pes))
        # Attention scores per head (Fig. 7): (np x k) @ (k x np).
        ops.append(
            _matmul_op(f"{prefix}/mha/scores",
                       heads * tokens, head_dim, tokens, n_pes=n_pes)
        )
        # Softmax unit over all score elements.
        # One pipelined softmax unit per PE (exp + divide, II = 1).
        ops.append(_elementwise_op(f"{prefix}/mha/softmax",
                                   heads * tokens * tokens,
                                   unit_count=N_PES))
        # Single-head outputs (Fig. 8a): (np x np) @ (np x k).
        ops.append(
            _matmul_op(f"{prefix}/mha/context",
                       heads * tokens, tokens, head_dim, n_pes=n_pes)
        )
        ops.append(_matmul_op(f"{prefix}/mha/output", tokens, d, d, n_pes=n_pes))
        ops.append(_elementwise_op(f"{prefix}/ln2", tokens * d,
                                   unit_count=N_PES,
                                   cycles_per_element=2))
        ops.append(
            _matmul_op(f"{prefix}/mlp1", tokens, d, config.mlp_hidden,
                       n_pes=n_pes)
        )
        ops.append(_elementwise_op(f"{prefix}/mlp_relu",
                                   tokens * config.mlp_hidden,
                                   unit_count=N_PES * PE_LANES))
        ops.append(
            _matmul_op(f"{prefix}/mlp2", tokens, config.mlp_hidden, d,
                       n_pes=n_pes)
        )

    ops.append(_elementwise_op("encoder/final_ln", tokens * d,
                               unit_count=N_PES,
                               cycles_per_element=2))

    # Decoder.
    pz, px = config.patch_size
    ops.append(
        _matmul_op("decoder/token_dense", tokens, d,
                   pz * px * config.context_channels, n_pes=n_pes)
    )
    ops.append(
        _matmul_op("decoder/head1", pixels, config.head_input,
                   config.head_hidden, n_pes=n_pes)
    )
    ops.append(_elementwise_op("decoder/head_relu",
                               pixels * config.head_hidden,
                               unit_count=N_PES * PE_LANES))
    ops.append(_matmul_op("decoder/head2", pixels, config.head_hidden, 2,
                              n_pes=n_pes))

    return ScheduleReport(ops=ops)
