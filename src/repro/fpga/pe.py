"""Processing element: 16 multipliers + adder tree (paper Fig. 8b).

Each PE consumes 16 operand pairs per cycle, multiplies them element-wise
and reduces the products through a 4-level binary adder tree.  Every
arithmetic result is snapped to the scheme's arithmetic format, exactly
as the fixed-width datapath registers would, so the PE output is
bit-accurate with respect to the quantized execution model
(:mod:`repro.quant.qexec`).
"""

from __future__ import annotations

import numpy as np

from repro.quant.fixed_point import FixedPointFormat

PE_LANES = 16
_TREE_LEVELS = 4  # log2(PE_LANES)


class AdderTree:
    """Binary adder tree over ``PE_LANES`` inputs with per-level rounding."""

    def __init__(self, arithmetic: FixedPointFormat | None) -> None:
        self.arithmetic = arithmetic

    def reduce(self, products: np.ndarray) -> float | np.ndarray:
        """Sum 16 products pairwise, quantizing after every level.

        Returns a Python ``float`` for a single lane vector and an
        array of per-batch sums for batched ``(..., 16)`` input (the
        historical annotation promised ``float`` but batched callers
        received a 0-d/1-d array — the contract now says so).
        """
        values = np.asarray(products, dtype=float)
        if values.shape[-1] != PE_LANES:
            raise ValueError(
                f"adder tree expects {PE_LANES} inputs, got "
                f"{values.shape[-1]}"
            )
        for _ in range(_TREE_LEVELS):
            values = values[..., 0::2] + values[..., 1::2]
            if self.arithmetic is not None:
                values = self.arithmetic.quantize(values)
        result = values[..., 0]
        if result.ndim == 0:
            return float(result)
        return result

    @property
    def latency_cycles(self) -> int:
        """Pipeline depth of the tree (one level per cycle)."""
        return _TREE_LEVELS


class ProcessingElement:
    """One PE: 16-lane multiplier bank feeding an adder tree.

    ``dot`` computes a full dot product by streaming 16-element chunks
    through the PE; the cycle count models an initiation-interval-1
    pipeline (one chunk per cycle) plus the tree/accumulator drain.
    """

    def __init__(self, arithmetic: FixedPointFormat | None) -> None:
        self.arithmetic = arithmetic
        self.tree = AdderTree(arithmetic)

    def _quantize(self, values: np.ndarray) -> np.ndarray:
        if self.arithmetic is None:
            return values
        return self.arithmetic.quantize(values)

    def dot(self, a: np.ndarray, b: np.ndarray) -> tuple[float, int]:
        """Dot product of two 1-D operand vectors.

        Returns ``(value, cycles)``.  Vectors are zero-padded to a
        multiple of 16 lanes (zero lanes are free — the hardware feeds
        zeros too).
        """
        a = np.asarray(a, dtype=float).ravel()
        b = np.asarray(b, dtype=float).ravel()
        if a.shape != b.shape:
            raise ValueError(
                f"operand shapes differ: {a.shape} vs {b.shape}"
            )
        n_chunks = max(1, int(np.ceil(a.size / PE_LANES)))
        padded = n_chunks * PE_LANES
        a_pad = np.zeros(padded)
        b_pad = np.zeros(padded)
        a_pad[: a.size] = a
        b_pad[: b.size] = b

        accumulator = 0.0
        for chunk in range(n_chunks):
            lanes = slice(chunk * PE_LANES, (chunk + 1) * PE_LANES)
            products = self._quantize(a_pad[lanes] * b_pad[lanes])
            partial = self.tree.reduce(products)
            accumulator = float(
                self._quantize(np.asarray(accumulator + partial))
            )
        cycles = n_chunks + self.tree.latency_cycles + 1
        return accumulator, cycles

    def matvec(
        self, matrix: np.ndarray, vector: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Matrix-vector product, one output element at a time.

        Returns ``(values, cycles)`` with rows pipelined back-to-back
        (the tree drain overlaps the next row's chunks).
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != np.asarray(vector).size:
            raise ValueError(
                f"matrix {matrix.shape} incompatible with vector of size "
                f"{np.asarray(vector).size}"
            )
        outputs = np.empty(matrix.shape[0])
        chunk_cycles = 0
        for row in range(matrix.shape[0]):
            value, cycles = self.dot(matrix[row], vector)
            outputs[row] = value
            chunk_cycles += cycles - self.tree.latency_cycles - 1
        return outputs, chunk_cycles + self.tree.latency_cycles + 1
