"""Evaluation harness: regenerate the paper's tables and figures.

* :mod:`repro.eval.experiments` — run every beamformer (classical and
  learned, float and quantized) over the PICMUS-style presets and
  collect contrast/resolution metrics,
* :mod:`repro.eval.tables` — paper-style table formatting plus the
  published reference values for side-by-side comparison,
* :mod:`repro.eval.figures` — B-mode image (PGM) and lateral-profile
  (CSV) export for the figure benches.
"""

from repro.eval.experiments import (
    EVAL_BEAMFORMERS,
    beamform_with,
    eval_beamformers,
    load_eval_models,
    run_contrast_experiment,
    run_quantized_experiments,
    run_resolution_experiment,
)
from repro.eval.tables import (
    PAPER_TABLE_I,
    PAPER_TABLE_II,
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    format_contrast_table,
    format_resolution_table,
)
from repro.eval.figures import export_bmode_images, export_lateral_profiles

__all__ = [
    "EVAL_BEAMFORMERS",
    "beamform_with",
    "eval_beamformers",
    "load_eval_models",
    "run_contrast_experiment",
    "run_resolution_experiment",
    "run_quantized_experiments",
    "PAPER_TABLE_I",
    "PAPER_TABLE_II",
    "PAPER_TABLE_IV",
    "PAPER_TABLE_V",
    "format_contrast_table",
    "format_resolution_table",
    "export_bmode_images",
    "export_lateral_profiles",
]
