"""Paper-style tables and the published reference values.

The ``PAPER_TABLE_*`` constants transcribe the paper's evaluation tables
so the benches can print paper-vs-measured rows side by side; the
formatters render our measurements in the paper's layout.
"""

from __future__ import annotations

from repro.metrics.contrast import ContrastMetrics
from repro.metrics.resolution import ResolutionMetrics

# Table I: contrast metrics (mean) of Simulation and Phantom data.
PAPER_TABLE_I = {
    "simulation": {
        "das": ContrastMetrics(13.78, 2.37, 0.83),
        "mvdr": ContrastMetrics(21.66, 1.95, 0.78),
        "tiny_cnn": ContrastMetrics(13.45, 2.04, 0.83),
        "tiny_vbf": ContrastMetrics(14.89, 1.75, 0.74),
    },
    "phantom": {
        "das": ContrastMetrics(11.70, 1.04, 0.83),
        "mvdr": ContrastMetrics(15.09, 2.63, 0.72),
        "tiny_cnn": ContrastMetrics(11.30, 1.05, 0.79),
        "tiny_vbf": ContrastMetrics(12.20, 1.39, 0.67),
    },
}

# Table II: axial/lateral resolution (mm).
PAPER_TABLE_II = {
    "simulation": {
        "das": ResolutionMetrics(0.364e-3, 0.6e-3),
        "mvdr": ResolutionMetrics(0.297e-3, 0.45e-3),
        "tiny_cnn": ResolutionMetrics(0.368e-3, 0.6e-3),
        "tiny_vbf": ResolutionMetrics(0.303e-3, 0.45e-3),
    },
    "phantom": {
        "das": ResolutionMetrics(0.459e-3, 0.6e-3),
        "mvdr": ResolutionMetrics(0.459e-3, 0.48e-3),
        "tiny_cnn": ResolutionMetrics(0.466e-3, 0.72e-3),
        "tiny_vbf": ResolutionMetrics(0.444e-3, 0.48e-3),
    },
}

# Table IV: resolution (mm) of Tiny-VBF on FPGA per quantization scheme.
PAPER_TABLE_IV = {
    "float": {"simulation": (0.303, 0.45), "phantom": (0.444, 0.48)},
    "24 bits": {"simulation": (0.303, 0.45), "phantom": (0.444, 0.48)},
    "20 bits": {"simulation": (0.310, 0.45), "phantom": (0.421, 0.54)},
    "hybrid-1": {"simulation": (0.309, 0.45), "phantom": (0.429, 0.54)},
    "hybrid-2": {"simulation": (0.309, 0.45), "phantom": (0.429, 0.54)},
}

# Table V: contrast of Tiny-VBF on FPGA per quantization scheme.
PAPER_TABLE_V = {
    "float": {
        "simulation": (14.89, 1.75, 0.74), "phantom": (12.20, 1.39, 0.67),
    },
    "24 bits": {
        "simulation": (14.07, 1.84, 0.75), "phantom": (13.00, 1.22, 0.69),
    },
    "20 bits": {
        "simulation": (14.30, 1.45, 0.73), "phantom": (13.05, 1.22, 0.67),
    },
    "hybrid-1": {
        "simulation": (13.34, 1.74, 0.73), "phantom": (12.72, 1.37, 0.68),
    },
    "hybrid-2": {
        "simulation": (13.26, 1.75, 0.72), "phantom": (12.62, 1.40, 0.67),
    },
}

# Section IV text: complexity and single-core CPU inference times.
PAPER_COMPLEXITY = {
    "tiny_vbf": {"gops": 0.34, "cpu_seconds": 0.230},
    "tiny_cnn": {"gops": 11.7, "cpu_seconds": 0.520},
    "fcnn": {"gops": 1.4, "cpu_seconds": None},
    "mvdr": {"gops": 98.78, "cpu_seconds": 240.0},
    "cnn_goudarzi": {"gops": 50.0, "cpu_seconds": 4.0},
}


def format_contrast_table(
    measured: dict[str, ContrastMetrics],
    paper: dict[str, ContrastMetrics] | None = None,
    title: str = "Contrast metrics",
) -> str:
    """Render measured (and optionally paper) CR/CNR/GCNR rows."""
    lines = [title, f"{'beamformer':12s} {'CR[dB]':>8s} {'CNR':>6s} "
                    f"{'GCNR':>6s}" + ("   | paper CR/CNR/GCNR"
                                       if paper else "")]
    for name, metrics in measured.items():
        row = (
            f"{name:12s} {metrics.cr_db:8.2f} {metrics.cnr:6.2f} "
            f"{metrics.gcnr:6.2f}"
        )
        if paper and name in paper:
            reference = paper[name]
            row += (
                f"   | {reference.cr_db:5.2f} {reference.cnr:5.2f} "
                f"{reference.gcnr:5.2f}"
            )
        lines.append(row)
    return "\n".join(lines)


def format_resolution_table(
    measured: dict[str, ResolutionMetrics],
    paper: dict[str, ResolutionMetrics] | None = None,
    title: str = "Resolution metrics",
) -> str:
    """Render measured (and optionally paper) axial/lateral FWHM rows."""
    lines = [title, f"{'beamformer':12s} {'axial[mm]':>10s} "
                    f"{'lateral[mm]':>12s}"
                    + ("   | paper ax/lat" if paper else "")]
    for name, metrics in measured.items():
        row = (
            f"{name:12s} {metrics.axial_mm:10.3f} "
            f"{metrics.lateral_mm:12.3f}"
        )
        if paper and name in paper:
            reference = paper[name]
            row += (
                f"   | {reference.axial_mm:5.3f} "
                f"{reference.lateral_mm:5.3f}"
            )
        lines.append(row)
    return "\n".join(lines)
