"""Experiment runners over the PICMUS-style presets.

Every runner takes a dataset and a list of beamformer names and returns
per-beamformer metrics.  Beamformers:

* ``das`` / ``mvdr`` — classical chain (:mod:`repro.beamform`),
* ``tiny_vbf`` / ``tiny_cnn`` / ``fcnn`` — trained models from the
  weight cache (:mod:`repro.training.cache`),
* quantized runners execute Tiny-VBF through the simulated FPGA
  datapath for every scheme of Table III.
"""

from __future__ import annotations

import numpy as np

from repro.beamform.bmode import beamform_dataset
from repro.beamform.envelope import envelope_detect
from repro.fpga.accelerator import TinyVbfAccelerator
from repro.metrics.contrast import ContrastMetrics, dataset_contrast
from repro.metrics.resolution import ResolutionMetrics, dataset_resolution
from repro.models.common import stacked_to_complex
from repro.models.registry import MODEL_KINDS, model_input
from repro.nn import Model
from repro.quant.schemes import SCHEMES
from repro.training.cache import get_trained_model
from repro.training.inference import predict_iq
from repro.utils.validation import require_in

# Paper evaluation order (Tables I and II).
EVAL_BEAMFORMERS = ("das", "mvdr", "tiny_cnn", "tiny_vbf")
ALL_BEAMFORMERS = ("das", "mvdr", "tiny_cnn", "tiny_vbf", "fcnn")


def load_eval_models(
    kinds: tuple[str, ...] = ("tiny_vbf", "tiny_cnn", "fcnn"),
    scale: str = "small",
    seed: int = 0,
) -> dict[str, Model]:
    """Load (training on first use) the cached learned beamformers."""
    return {
        kind: get_trained_model(kind, scale=scale, seed=seed)
        for kind in kinds
    }


def beamform_with(
    dataset,
    method: str,
    models: dict[str, Model] | None = None,
) -> np.ndarray:
    """Beamform ``dataset`` with any supported method -> complex IQ."""
    require_in("method", method, ALL_BEAMFORMERS)
    if method in ("das", "mvdr"):
        return beamform_dataset(dataset, method)
    models = models if models is not None else load_eval_models((method,))
    if method not in models:
        raise ValueError(f"model {method!r} not in supplied models")
    return predict_iq(models[method], method, dataset)


def run_contrast_experiment(
    dataset,
    methods: tuple[str, ...] = EVAL_BEAMFORMERS,
    models: dict[str, Model] | None = None,
) -> dict[str, ContrastMetrics]:
    """CR/CNR/GCNR per beamformer on a contrast dataset (Table I)."""
    results = {}
    for method in methods:
        iq = beamform_with(dataset, method, models)
        results[method] = dataset_contrast(envelope_detect(iq), dataset)
    return results


def run_resolution_experiment(
    dataset,
    methods: tuple[str, ...] = EVAL_BEAMFORMERS,
    models: dict[str, Model] | None = None,
) -> dict[str, ResolutionMetrics]:
    """Axial/lateral FWHM per beamformer on a resolution dataset
    (Table II)."""
    results = {}
    for method in methods:
        iq = beamform_with(dataset, method, models)
        results[method] = dataset_resolution(envelope_detect(iq), dataset)
    return results


def quantized_iq(
    model: Model,
    dataset,
    scheme_name: str,
) -> np.ndarray:
    """Tiny-VBF IQ image through the simulated FPGA datapath."""
    from repro.beamform.tof import analytic_tofc

    tofc = analytic_tofc(
        dataset.rf,
        dataset.probe,
        dataset.grid,
        angle_rad=dataset.angle_rad,
        sound_speed_m_s=dataset.sound_speed_m_s,
    )
    peak = np.abs(tofc).max()
    x = model_input("tiny_vbf", tofc / peak)
    accelerator = TinyVbfAccelerator(model, SCHEMES[scheme_name])
    return stacked_to_complex(accelerator.run(x)[0])


def run_quantized_experiments(
    contrast_dataset,
    resolution_dataset,
    model: Model | None = None,
    scheme_names: tuple[str, ...] = (
        "float", "24 bits", "20 bits", "hybrid-1", "hybrid-2",
    ),
) -> dict[str, dict]:
    """Tables IV and V: per-scheme contrast and resolution of Tiny-VBF.

    Returns ``{scheme: {"contrast": ContrastMetrics,
    "resolution": ResolutionMetrics}}``.
    """
    model = model or get_trained_model("tiny_vbf")
    results: dict[str, dict] = {}
    for name in scheme_names:
        contrast_env = envelope_detect(
            quantized_iq(model, contrast_dataset, name)
        )
        resolution_env = envelope_detect(
            quantized_iq(model, resolution_dataset, name)
        )
        results[name] = {
            "contrast": dataset_contrast(contrast_env, contrast_dataset),
            "resolution": dataset_resolution(
                resolution_env, resolution_dataset
            ),
        }
    return results
