"""Experiment runners over the PICMUS-style presets.

Every runner takes a dataset and a list of beamformer specs and returns
per-beamformer metrics.  Beamformers are built through the unified
:mod:`repro.api` factory:

* ``das`` / ``mvdr`` — classical chain (:mod:`repro.beamform`),
* ``tiny_vbf`` / ``tiny_cnn`` / ``fcnn`` — trained models from the
  weight cache (:mod:`repro.training.cache`),
* ``tiny_vbf@<scheme>`` — Tiny-VBF through the simulated FPGA datapath
  for every scheme of Table III.

:func:`beamform_with` and :func:`quantized_iq` are deprecated shims kept
for legacy callers; new code should use
``create_beamformer(spec).beamform(dataset)`` directly.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.api import (
    Beamformer,
    QuantizedBeamformer,
    create_beamformer,
    parse_spec,
)
from repro.beamform.envelope import envelope_detect
from repro.metrics.contrast import ContrastMetrics, dataset_contrast
from repro.metrics.resolution import ResolutionMetrics, dataset_resolution
from repro.models.registry import MODEL_KINDS
from repro.nn import Model
from repro.training.cache import get_trained_model
from repro.utils.validation import require_in

# Paper evaluation order (Tables I and II).
EVAL_BEAMFORMERS = ("das", "mvdr", "tiny_cnn", "tiny_vbf")
ALL_BEAMFORMERS = ("das", "mvdr", "tiny_cnn", "tiny_vbf", "fcnn")


def load_eval_models(
    kinds: tuple[str, ...] = ("tiny_vbf", "tiny_cnn", "fcnn"),
    scale: str = "small",
    seed: int = 0,
) -> dict[str, Model]:
    """Load (training on first use) the cached learned beamformers."""
    return {
        kind: get_trained_model(kind, scale=scale, seed=seed)
        for kind in kinds
    }


def eval_beamformers(
    methods: tuple[str, ...] = EVAL_BEAMFORMERS,
    models: dict[str, Model] | None = None,
) -> dict[str, Beamformer]:
    """Build the evaluation beamformers through the unified factory.

    ``models`` optionally supplies pre-trained models keyed by kind so a
    bench session can share one weight-cache load across runners.  When
    a ``models`` dict is given it must cover every learned method —
    a missing entry raises instead of silently training a default model.
    """
    beamformers = {}
    for method in methods:
        kind, _ = parse_spec(method)  # "tiny_vbf@float" -> "tiny_vbf"
        model = None
        if models is not None and kind in MODEL_KINDS:
            if kind not in models:
                raise ValueError(
                    f"model {kind!r} not in supplied models"
                )
            model = models[kind]
        beamformers[method] = create_beamformer(method, model=model)
    return beamformers


def beamform_with(
    dataset,
    method: str,
    models: dict[str, Model] | None = None,
) -> np.ndarray:
    """Beamform ``dataset`` with any supported method -> complex IQ.

    .. deprecated::
        Use ``create_beamformer(method).beamform(dataset)`` instead.
    """
    warnings.warn(
        "beamform_with is deprecated; use "
        "repro.api.create_beamformer(method).beamform(dataset)",
        DeprecationWarning,
        stacklevel=2,
    )
    require_in("method", method, ALL_BEAMFORMERS)
    beamformer = eval_beamformers((method,), models)[method]
    return beamformer.beamform(dataset)


def run_contrast_experiment(
    dataset,
    methods: tuple[str, ...] = EVAL_BEAMFORMERS,
    models: dict[str, Model] | None = None,
) -> dict[str, ContrastMetrics]:
    """CR/CNR/GCNR per beamformer on a contrast dataset (Table I)."""
    results = {}
    for method, beamformer in eval_beamformers(methods, models).items():
        iq = beamformer.beamform(dataset)
        results[method] = dataset_contrast(envelope_detect(iq), dataset)
    return results


def run_resolution_experiment(
    dataset,
    methods: tuple[str, ...] = EVAL_BEAMFORMERS,
    models: dict[str, Model] | None = None,
) -> dict[str, ResolutionMetrics]:
    """Axial/lateral FWHM per beamformer on a resolution dataset
    (Table II)."""
    results = {}
    for method, beamformer in eval_beamformers(methods, models).items():
        iq = beamformer.beamform(dataset)
        results[method] = dataset_resolution(envelope_detect(iq), dataset)
    return results


def quantized_iq(
    model: Model,
    dataset,
    scheme_name: str,
) -> np.ndarray:
    """Tiny-VBF IQ image through the simulated FPGA datapath.

    .. deprecated::
        Use ``create_beamformer(f"tiny_vbf@{scheme_name}",
        model=model).beamform(dataset)`` instead.
    """
    warnings.warn(
        "quantized_iq is deprecated; use repro.api.create_beamformer("
        "f'tiny_vbf@{scheme}', model=model).beamform(dataset)",
        DeprecationWarning,
        stacklevel=2,
    )
    return QuantizedBeamformer(scheme_name, model=model).beamform(dataset)


def run_quantized_experiments(
    contrast_dataset,
    resolution_dataset,
    model: Model | None = None,
    scheme_names: tuple[str, ...] = (
        "float", "24 bits", "20 bits", "hybrid-1", "hybrid-2",
    ),
) -> dict[str, dict]:
    """Tables IV and V: per-scheme contrast and resolution of Tiny-VBF.

    Returns ``{scheme: {"contrast": ContrastMetrics,
    "resolution": ResolutionMetrics}}``.
    """
    model = model or get_trained_model("tiny_vbf")
    results: dict[str, dict] = {}
    for name in scheme_names:
        beamformer = QuantizedBeamformer(name, model=model)
        contrast_env = envelope_detect(
            beamformer.beamform(contrast_dataset)
        )
        resolution_env = envelope_detect(
            beamformer.beamform(resolution_dataset)
        )
        results[name] = {
            "contrast": dataset_contrast(contrast_env, contrast_dataset),
            "resolution": dataset_resolution(
                resolution_env, resolution_dataset
            ),
        }
    return results
