"""Figure export: B-mode PGM images and lateral-profile CSV series.

Matplotlib is unavailable offline, so every figure in the paper maps to
either a grayscale PGM image (Figs. 1a, 9a, 10, 11, 13, 15) or a CSV of
series that plot the figure (Figs. 9b, 12, 14, 1b).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.beamform.bmode import bmode_image
from repro.metrics.profiles import lateral_profile_db
from repro.utils.io import write_csv, write_pgm


def export_bmode_images(
    iq_by_method: dict[str, np.ndarray],
    dataset,
    output_dir: str | Path,
    dynamic_range_db: float = 60.0,
) -> list[Path]:
    """Write one PGM B-mode per beamformer; returns the written paths."""
    output_dir = Path(output_dir)
    paths = []
    for method, iq in iq_by_method.items():
        image = bmode_image(iq)
        path = write_pgm(
            output_dir / f"{dataset.name}_{method}.pgm",
            image,
            dynamic_range_db=dynamic_range_db,
        )
        paths.append(path)
    return paths


def export_lateral_profiles(
    iq_by_method: dict[str, np.ndarray],
    dataset,
    depth_m: float,
    output_path: str | Path,
    x_span_m: tuple[float, float] | None = None,
) -> Path:
    """Write aligned lateral profiles (one column per beamformer)."""
    columns: dict[str, np.ndarray] = {}
    for method, iq in iq_by_method.items():
        envelope = np.abs(iq)
        x_mm, profile = lateral_profile_db(
            envelope, dataset.grid, depth_m, x_span_m=x_span_m
        )
        if "x_mm" not in columns:
            columns["x_mm"] = x_mm
        columns[f"{method}_db"] = profile
    return write_csv(output_path, columns)
