"""Unit tests for repro.obs: metrics, tracing, events, profiling."""
