"""Kernel profiling wrapper: transparency, registration, metrics.

The wrapper must be numerically invisible (same results, same
``rtol``/``atol``, same registry ``name``) while every dispatched
kernel lands in ``repro_kernel_seconds{kernel=...,backend=...}``.
Registration tests restore the plain backend in ``finally`` — the
backend registry is process-global state shared with every other test.
"""

import pickle

import numpy as np
import pytest

from repro.api import create_beamformer
from repro.backend import get_backend, resolve_backend
from repro.obs import MetricsRegistry
from repro.obs.profile import (
    KERNEL_METRIC,
    ProfilingBackend,
    disable_kernel_profiling,
    enable_kernel_profiling,
)


def kernel_counts(metrics: MetricsRegistry, backend: str) -> dict:
    """``{kernel: call count}`` from the profiling histogram."""
    histogram = metrics.histogram(
        KERNEL_METRIC, labels=("kernel", "backend")
    )
    counts = {}
    for sample, key, value in histogram.samples():
        if sample == f"{KERNEL_METRIC}_count":
            kernel, backend_label = key[0], key[1]
            if backend_label == backend:
                counts[kernel] = value
    return counts


class TestWrapper:
    def test_delegates_and_times_each_kernel(self):
        metrics = MetricsRegistry()
        wrapper = ProfilingBackend("numpy", metrics)
        inner = resolve_backend("numpy")
        x = np.arange(6.0).reshape(2, 3)
        w = np.arange(12.0).reshape(3, 4)
        np.testing.assert_array_equal(
            wrapper.matmul(x, w), inner.matmul(x, w)
        )
        wrapper.asarray(x)
        counts = kernel_counts(metrics, "numpy")
        assert counts == {"matmul": 1.0, "asarray": 1.0}

    def test_identity_mirrors_inner_backend(self):
        wrapper = ProfilingBackend("numpy", MetricsRegistry())
        inner = resolve_backend("numpy")
        assert wrapper.name == inner.name
        assert wrapper.rtol == inner.rtol
        assert wrapper.atol == inner.atol

    def test_wrappers_never_stack(self):
        metrics = MetricsRegistry()
        once = ProfilingBackend("numpy", metrics)
        twice = ProfilingBackend(once, metrics)
        assert twice.inner is once.inner


class TestRegistration:
    def test_enable_routes_ambient_dispatch_through_wrapper(
        self, sim_contrast_dataset
    ):
        """A DAS beamform after enabling must time its hot kernels."""
        metrics = MetricsRegistry()
        wrapper = enable_kernel_profiling(metrics, backend="numpy")
        try:
            assert get_backend("numpy") is wrapper
            das = create_beamformer("das")
            reference = das.beamform(sim_contrast_dataset)
            counts = kernel_counts(metrics, "numpy")
            assert counts.get("apply_plan", 0) >= 1
            assert counts.get("das_sum", 0) >= 1
        finally:
            disable_kernel_profiling(wrapper)
        assert get_backend("numpy") is wrapper.inner
        # Numerically transparent: identical to the unprofiled path.
        np.testing.assert_array_equal(
            reference, create_beamformer("das").beamform(
                sim_contrast_dataset
            ),
        )

    def test_wrapper_pickles_by_name_not_by_object(self):
        """RA004's contract: no pickle hooks, name-based resolution.

        A beamformer bound to a profiled backend must unpickle in a
        child process as whatever that name resolves to *there* — a
        plain backend, since wrappers are per-process opt-ins.
        """
        metrics = MetricsRegistry()
        wrapper = enable_kernel_profiling(metrics, backend="numpy")
        try:
            blob = pickle.dumps(wrapper)
            assert pickle.loads(blob) is wrapper  # registered here
        finally:
            disable_kernel_profiling(wrapper)
        revived = pickle.loads(blob)
        assert revived is wrapper.inner
        assert not isinstance(revived, ProfilingBackend)

    def test_enable_defaults_to_ambient_backend(self):
        metrics = MetricsRegistry()
        default_name = get_backend().name
        wrapper = enable_kernel_profiling(metrics)
        try:
            assert wrapper.name == default_name
            assert get_backend(default_name) is wrapper
        finally:
            disable_kernel_profiling(wrapper)
