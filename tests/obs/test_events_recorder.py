"""Event log + flight recorder: JSON-lines sink, counters, bounded ring."""

import io
import json

import pytest

from repro.obs import (
    EventLog,
    FlightRecorder,
    MetricsRegistry,
    parse_event_lines,
)
from repro.serve.clock import FakeClock


class TestEventLog:
    def test_emit_writes_one_json_line_per_event(self):
        stream = io.StringIO()
        log = EventLog(stream=stream, clock=FakeClock(10.0))
        log.emit("worker_spawned", shard=0, pid=123)
        log.emit("drain_begin", active_sessions=2)
        records = parse_event_lines(stream.getvalue())
        assert records == [
            {"ts": 10.0, "event": "worker_spawned", "shard": 0,
             "pid": 123},
            {"ts": 10.0, "event": "drain_begin", "active_sessions": 2},
        ]
        # Each line is standalone JSON (tail -f friendly).
        for line in stream.getvalue().splitlines():
            json.loads(line)

    def test_counts_and_records_without_any_sink(self):
        """Library default: no stream, no path — still observable."""
        metrics = MetricsRegistry()
        recorder = FlightRecorder(capacity=8)
        log = EventLog(metrics=metrics, recorder=recorder)
        log.emit("session_admitted", session=1)
        log.emit("session_admitted", session=2)
        counter = metrics.counter(
            "repro_events_total", labels=("event",)
        )
        assert counter.value(event="session_admitted") == 2.0
        assert [kind for kind, _ in recorder.entries()] == [
            "event", "event",
        ]

    def test_path_mode_appends_to_file(self, tmp_path):
        target = tmp_path / "events.jsonl"
        log = EventLog(path=str(target), clock=FakeClock())
        log.emit("drain_complete", results_delivered=5)
        log.close()
        (record,) = parse_event_lines(target.read_text())
        assert record["event"] == "drain_complete"
        assert record["results_delivered"] == 5

    def test_stream_and_path_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(stream=io.StringIO(), path=str(tmp_path / "x"))

    def test_emit_survives_closed_stream(self):
        """Interpreter-teardown ordering must not raise in emit."""
        stream = io.StringIO()
        metrics = MetricsRegistry()
        log = EventLog(stream=stream, metrics=metrics)
        stream.close()
        log.emit("engine_broken", error="Boom")
        counter = metrics.counter(
            "repro_events_total", labels=("event",)
        )
        assert counter.value(event="engine_broken") == 1.0


class TestFlightRecorder:
    def test_ring_is_bounded_oldest_evicted(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record_event({"event": "e", "n": index})
        assert len(recorder) == 3
        assert [record["n"] for _, record in recorder.entries()] == [
            2, 3, 4,
        ]

    def test_mixed_entries_dump_as_json_lines_with_kind(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record_event({"event": "worker_exited", "shard": 1})
        recorder.record_trace({"trace_id": 7, "owner": "engine",
                               "spans": []})
        lines = [json.loads(line) for line in
                 recorder.dump().splitlines()]
        assert lines[0]["kind"] == "event"
        assert lines[0]["event"] == "worker_exited"
        assert lines[1]["kind"] == "trace"
        assert lines[1]["trace_id"] == 7

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
