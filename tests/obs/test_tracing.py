"""Tracing: sampling, span discipline, wire context, rendering.

Pinned behaviours: the zero-sample-rate hot path allocates nothing
(``start_trace`` returns ``None``), the 17-byte wire context
round-trips exactly, ``finish`` is idempotent under the requeue races
the sharded engine can produce, and the tree helpers reconstruct the
parent/child structure the gateway ``traces`` verb ships.
"""

import pytest

from repro.obs import (
    CTX_STRUCT,
    FLAG_SAMPLED,
    MetricsRegistry,
    Tracer,
    pack_context,
    render_trace,
    span_tree,
    unpack_context,
)
from repro.serve.clock import FakeClock


class TestWireContext:
    def test_pack_unpack_round_trip(self):
        blob = pack_context(0xDEADBEEF_12345678, 42)
        assert isinstance(blob, bytes)
        assert len(blob) == CTX_STRUCT.size == 17
        assert unpack_context(blob) == (
            0xDEADBEEF_12345678, 42, FLAG_SAMPLED,
        )

    def test_context_is_fixed_size_not_pickle(self):
        """The envelope contract: every context is exactly 17 bytes."""
        small = pack_context(1, 0)
        large = pack_context(2**64 - 1, 2**64 - 1, 0xFF)
        assert len(small) == len(large) == 17
        # Pickles start with b"\x80"; a struct pack must not.
        assert small[:1] != b"\x80"


class TestSampling:
    def test_rate_zero_returns_none(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start_trace("frame") is None

    def test_rate_one_traces_every_frame(self):
        tracer = Tracer(sample_rate=1.0, clock=FakeClock())
        assert all(
            tracer.start_trace("frame") is not None for _ in range(20)
        )

    def test_fractional_rate_is_seeded_and_partial(self):
        tracer = Tracer(sample_rate=0.5, clock=FakeClock(), seed=7)
        picks = [
            tracer.start_trace("frame") is not None for _ in range(64)
        ]
        again = Tracer(sample_rate=0.5, clock=FakeClock(), seed=7)
        assert picks == [
            again.start_trace("frame") is not None for _ in range(64)
        ]
        assert any(picks) and not all(picks)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_trace_ids_are_unique(self):
        tracer = Tracer(sample_rate=1.0, clock=FakeClock())
        ids = {tracer.start_trace("frame").trace_id for _ in range(32)}
        assert len(ids) == 32


class TestTraceLifecycle:
    def make(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        tracer = Tracer(sample_rate=1.0, clock=clock, metrics=metrics)
        return clock, metrics, tracer

    def test_add_span_and_scope_build_one_tree(self):
        clock, _, tracer = self.make()
        trace = tracer.start_trace("frame", owner="gateway", seq=3)
        trace.add_span("ingress", 0.0, 0.25, nbytes=100)
        with trace.span("execute") as scope:
            clock.advance(0.5)
            scope.set(batch_size=4)
        clock.advance(0.25)
        trace.finish(status="ok")

        (dumped,) = tracer.recent()
        root = span_tree(dumped)
        assert root["name"] == "frame"
        assert root["attrs"] == {"seq": 3, "status": "ok"}
        assert [child["name"] for child in root["children"]] == [
            "ingress", "execute",
        ]
        execute = root["children"][1]
        assert execute["duration"] == pytest.approx(0.5)
        assert execute["attrs"] == {"batch_size": 4}

    def test_scope_closes_and_tags_on_exception(self):
        _, _, tracer = self.make()
        trace = tracer.start_trace("frame")
        with pytest.raises(RuntimeError):
            with trace.span("execute"):
                raise RuntimeError("boom")
        trace.finish(status="error")
        (dumped,) = tracer.recent()
        execute = span_tree(dumped)["children"][0]
        assert execute["end"] is not None
        assert execute["attrs"]["error"] == "RuntimeError"

    def test_finish_is_idempotent(self):
        """Requeue races: duplicate deliveries may both try to finish."""
        _, metrics, tracer = self.make()
        trace = tracer.start_trace("frame")
        trace.finish(status="ok")
        trace.finish(status="orphaned")  # loser of the race: no-op
        assert len(tracer.recent()) == 1
        (dumped,) = tracer.recent()
        assert dumped["spans"][0]["attrs"]["status"] == "ok"
        counter = metrics.counter(
            "repro_traces_total", labels=("event",)
        )
        assert counter.value(event="completed") == 1.0

    def test_started_and_completed_counters(self):
        _, metrics, tracer = self.make()
        for _ in range(3):
            tracer.start_trace("frame").finish()
        tracer.start_trace("frame")  # left open: started, not completed
        counter = metrics.counter(
            "repro_traces_total", labels=("event",)
        )
        assert counter.value(event="started") == 4.0
        assert counter.value(event="completed") == 3.0

    def test_bounded_store_and_drain(self):
        clock = FakeClock()
        tracer = Tracer(sample_rate=1.0, clock=clock, capacity=4)
        for index in range(10):
            tracer.start_trace("frame", seq=index).finish()
        recent = tracer.recent(n=16)
        assert len(recent) == 4  # capacity bound, newest kept
        assert [t["spans"][0]["attrs"]["seq"] for t in recent] == [
            6, 7, 8, 9,
        ]
        drained = list(tracer.drain())
        assert len(drained) == 4
        assert tracer.recent() == []

    def test_render_trace_is_indented_and_attributed(self):
        clock, _, tracer = self.make()
        trace = tracer.start_trace("frame", owner="gateway")
        parent = trace.add_span("shard", 0.0, 1.0, shard=1)
        trace.add_span(
            "execute", 0.2, 0.8, parent=parent, process=4242,
        )
        trace.finish(status="ok")
        (dumped,) = tracer.recent()
        text = render_trace(dumped)
        lines = text.splitlines()
        assert lines[0].startswith("trace 0x")
        assert "owner=gateway" in lines[0]
        assert lines[1].lstrip().startswith("- frame")
        assert "  - shard" in text and "    - execute" in text
        assert "pid=4242" in text and "shard=1" in text
