"""MetricsRegistry: families, exporters, cross-process folding.

The registry is the contract every serving tier publishes into and the
gateway ``metrics`` verb exports from, so its pinned behaviours are:
get-or-create identity, both export formats agreeing with each other
(the repo's own promtext parser closes that loop — the same parser CI
runs over a live scrape), and ``state()``/``merge()`` folding worker
deltas without double counting.
"""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus,
    validate_exposition,
)


class TestFamilies:
    def test_counter_inc_and_labelled_series(self):
        registry = MetricsRegistry()
        frames = registry.counter(
            "frames_total", "Frames.", labels=("event",)
        )
        frames.inc(event="admitted")
        frames.inc(2, event="admitted")
        frames.inc(event="rejected")
        assert frames.value(event="admitted") == 3.0
        assert frames.value(event="rejected") == 1.0
        assert frames.value(event="never_seen") == 0.0

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth", labels=("queue",))
        depth.set(4, queue="ingest")
        depth.inc(-1, queue="ingest")
        assert depth.value(queue="ingest") == 3.0

    def test_histogram_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "latency_s", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help", labels=("a",))
        second = registry.counter("c", "other help", labels=("a",))
        assert first is second

    def test_kind_or_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("a",))
        with pytest.raises(ValueError):
            registry.gauge("c", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("c", labels=("b",))


class TestExporters:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("f_total", "Frames.", labels=("event",)).inc(
            3, event="done"
        )
        registry.gauge("depth", "Depth.", labels=("queue",)).set(
            2, queue="ingest"
        )
        hist = registry.histogram(
            "stage_seconds", "Stage.", labels=("stage",),
            buckets=(0.1, 1.0),
        )
        hist.observe(0.05, stage="execute")
        hist.observe(0.5, stage="execute")
        return registry

    def test_prometheus_round_trips_through_own_parser(self):
        registry = self.build()
        families = parse_prometheus(registry.render_prometheus())
        assert families["f_total"]["type"] == "counter"
        assert ("f_total", {"event": "done"}, 3.0) in (
            families["f_total"]["samples"]
        )
        assert ("depth", {"queue": "ingest"}, 2.0) in (
            families["depth"]["samples"]
        )
        # Histogram explodes into bucket/sum/count samples, all
        # attributed back to the declaring family.
        names = [s[0] for s in families["stage_seconds"]["samples"]]
        assert "stage_seconds_bucket" in names
        assert "stage_seconds_sum" in names
        assert "stage_seconds_count" in names
        buckets = [
            (labels["le"], value)
            for name, labels, value in (
                families["stage_seconds"]["samples"]
            )
            if name == "stage_seconds_bucket"
        ]
        assert ("+Inf", 2.0) in buckets  # cumulative, ends at count

    def test_label_values_escape_and_parse_back(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("k",)).inc(
            k='quote " slash \\ newline \n end'
        )
        families = parse_prometheus(registry.render_prometheus())
        ((_, labels, value),) = families["c"]["samples"]
        assert labels["k"] == 'quote " slash \\ newline \n end'
        assert value == 1.0

    def test_as_dict_shape_agrees_with_prometheus(self):
        registry = self.build()
        view = registry.as_dict()
        assert view["f_total"]["type"] == "counter"
        (sample,) = view["f_total"]["samples"]
        assert sample == {
            "sample": "f_total",
            "labels": {"event": "done"},
            "value": 3.0,
        }

    def test_parse_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding TYPE"):
            parse_prometheus("orphan_metric 1.0\n")

    def test_validate_exposition_rejects_nan(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(math.nan)
        with pytest.raises(ValueError, match="NaN"):
            validate_exposition(registry.render_prometheus())

    def test_validate_exposition_rejects_missing_family(self):
        registry = self.build()
        with pytest.raises(ValueError, match="missing"):
            validate_exposition(
                registry.render_prometheus(),
                required=("f_total", "repro_absent_total"),
            )
        # And passes when everything required is present.
        validate_exposition(
            registry.render_prometheus(), required=("f_total", "depth")
        )


class TestStateMerge:
    """The worker-delta protocol: ``state()`` ships, ``merge()`` folds."""

    def test_counters_and_histograms_add_gauges_overwrite(self):
        worker = MetricsRegistry()
        worker.counter("c", labels=("e",)).inc(2, e="x")
        worker.gauge("g").set(7)
        hist = worker.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)

        parent = MetricsRegistry()
        parent.counter("c", labels=("e",)).inc(1, e="x")
        parent.gauge("g").set(3)
        parent.merge(worker.state())

        assert parent.counter("c", labels=("e",)).value(e="x") == 3.0
        assert parent.gauge("g").value() == 7.0
        snap = parent.histogram("h", buckets=(1.0,)).snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(2.5)

    def test_state_reset_then_merge_never_double_counts(self):
        """The per-batch delta loop the shard workers run.

        Worker side: observe, ``state()``, ``reset()`` — repeatedly.
        Parent side: ``merge()`` each delta.  The parent total must
        equal the worker's true total, not 2x it.
        """
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        kernel = worker.histogram("k_seconds", labels=("kernel",))
        for batch in range(3):
            kernel.observe(0.25, kernel="matmul")
            delta = worker.state()
            worker.reset()
            parent.merge(delta)
        merged = parent.histogram(
            "k_seconds", labels=("kernel",)
        ).snapshot(kernel="matmul")
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(0.75)
        # The family object survived every reset and kept observing.
        assert worker.names() == ("k_seconds",)

    def test_merge_rejects_bucket_mismatch_and_unknown_kind(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0))
        state = worker.state()
        state["h"]["data"]["buckets"] = [9.0]
        with pytest.raises(ValueError, match="bucket mismatch"):
            parent.merge(state)
        with pytest.raises(ValueError, match="unknown metric kind"):
            parent.merge({"x": {"kind": "nope", "help": "", "labels": [],
                                "data": {}}})
