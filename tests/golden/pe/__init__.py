"""Golden testbench for the emulated PE (see ``cases.py``).

The corpus under ``data/`` pins :class:`repro.fpga.emu.EmulatedPE`
byte-for-byte in both rounding modes, and the tests additionally replay
every vector through the slow pure-Python reference model in
``reference.py`` — the pe_test-style certification that the vectorized
integer datapath computes exactly what the specification says.
"""
