"""The committed PE testbench corpus (random + corner-case vectors).

``testbench_cases()`` deterministically rebuilds the operand vectors —
per quantization scheme: random dots at single-chunk, chunk-boundary and
multi-chunk lengths, saturation at the grids' extremes, sign-boundary
operands, zero lanes, accumulator carry/overflow chains, and engineered
half-step products where round-at-the-end *must* diverge from per-level
rounding.  ``generate_all()`` freezes both rounding modes' outputs for
every vector into ``data/pe_testbench.npz``; refresh intentionally
with::

    pytest tests/golden/pe --update-golden

and commit the regenerated file with the change that justified it.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.fpga.emu import EmulatedPE, ROUNDING_MODES
from repro.quant.schemes import SCHEMES

DATA_DIR = Path(__file__).resolve().parent / "data"
CORPUS_FILE = "pe_testbench.npz"

#: Dot lengths covered by the random vectors: single partial chunk,
#: exactly one chunk, one chunk + one lane, and multi-chunk.
RANDOM_LENGTHS = (1, 3, 16, 17, 48, 64)

QUANTIZED_SCHEMES = tuple(
    name for name, scheme in SCHEMES.items() if not scheme.is_float
)


def _scheme_cases(name: str, rng: np.random.Generator) -> list[dict]:
    scheme = SCHEMES[name]
    inter, weights = scheme.intermediate, scheme.weights
    arith = scheme.arithmetic
    cases = []

    def add(kind: str, a: np.ndarray, b: np.ndarray) -> None:
        cases.append(
            {
                "case_id": f"{name}|{kind}",
                "scheme": name,
                "a": np.asarray(a, dtype=float),
                "b": np.asarray(b, dtype=float),
            }
        )

    for n in RANDOM_LENGTHS:
        add(
            f"random-{n}",
            inter.quantize(rng.uniform(-4.0, 4.0, n)),
            weights.quantize(rng.uniform(-1.5, 1.5, n)),
        )

    # Saturation at +/- grid max: every product at the corner, both
    # polarities, long enough to overflow the arithmetic range many
    # times over.
    top_a = np.full(32, inter.max_value)
    top_b = np.full(32, weights.max_value)
    add("saturate-positive", top_a, top_b)
    add("saturate-negative", top_a, -top_b)
    add("saturate-min-corner", np.full(32, inter.min_value),
        np.full(32, weights.min_value))

    # Sign-boundary operands: one step either side of zero, where
    # two's-complement asymmetry and half-even ties live.
    signs = np.tile([1.0, -1.0], 8)
    add("sign-boundary", signs * inter.resolution,
        signs[::-1] * weights.resolution)

    # Zero lanes interleaved with live ones (must be exact no-ops).
    a_z = inter.quantize(rng.uniform(-2.0, 2.0, 21))
    b_z = weights.quantize(rng.uniform(-1.0, 1.0, 21))
    a_z[::3] = 0.0
    b_z[1::4] = 0.0
    add("zero-lanes", a_z, b_z)

    # Carry chain: maximal same-sign products so every chunk ripples
    # carries through the full accumulator width.
    add("carry-chain", np.full(64, inter.max_value),
        np.full(64, weights.resolution * 3))

    # Divergence pin: products landing exactly between arithmetic
    # steps round away per product (per_level) but accumulate at full
    # precision (round_at_end) — the corpus freezes *both* results so
    # the modes can never be silently conflated.  One weight step times
    # 2**(shift - 1) intermediate steps is exactly half an arithmetic
    # step for every Table-III scheme (the hybrids' coarse 8-bit
    # weights grid cannot represent the half-step directly).
    shift = inter.fraction_bits + weights.fraction_bits - arith.fraction_bits
    half_a = 2 ** (shift - 1) * inter.resolution
    add("diverge-half-step", np.full(16, half_a),
        np.full(16, weights.resolution))
    add("diverge-multi-chunk", np.full(48, half_a),
        np.full(48, weights.resolution))
    return cases


def testbench_cases() -> list[dict]:
    """The full deterministic corpus, every scheme, stable order."""
    rng = np.random.default_rng(20240601)
    cases: list[dict] = []
    for name in QUANTIZED_SCHEMES:
        cases.extend(_scheme_cases(name, rng))
    return cases


def compute_outputs(case: dict) -> dict[str, np.ndarray]:
    """Both rounding modes' emulated dot results for one case."""
    scheme = SCHEMES[case["scheme"]]
    outputs = {}
    for mode in ROUNDING_MODES:
        pe = EmulatedPE.for_scheme(scheme, rounding_mode=mode)
        value, _ = pe.dot(case["a"], case["b"])
        outputs[mode] = np.float64(value)
    return outputs


def generate_all(data_dir: Path | None = None) -> Path:
    """(Re)write the frozen corpus; returns the written path.

    Pins the ``numpy`` reference backend like the other golden
    generators — the emulator itself never dispatches through the
    backend registry, but the pin keeps an ambient ``REPRO_BACKEND``
    from mattering if that ever changes.
    """
    from repro.backend import use_backend

    data_dir = DATA_DIR if data_dir is None else data_dir
    data_dir.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {}
    with use_backend("numpy"):
        for case in testbench_cases():
            key = case["case_id"]
            payload[f"{key}|a"] = case["a"]
            payload[f"{key}|b"] = case["b"]
            for mode, value in compute_outputs(case).items():
                payload[f"{key}|{mode}"] = np.asarray(value)
    path = data_dir / CORPUS_FILE
    np.savez(path, **payload)
    return path


if __name__ == "__main__":
    print(f"wrote {generate_all()}")
