"""Slow pure-Python reference model of the PE datapath.

This is the testbench oracle: one lane at a time, one chunk at a time,
Python integers end to end (no numpy arithmetic, no float accumulation),
written to follow the pe_test pipeline literally — quantize operands to
step counts, segmented multiply per lane, align, accumulate, round.  It
is deliberately allowed to be orders of magnitude slower than
:class:`repro.fpga.emu.EmulatedPE`; its job is to be *obviously*
correct so the vectorized emulator can be certified bit-equal to it.
"""

from __future__ import annotations

from repro.fpga.emu import SEGMENT_BITS
from repro.fpga.pe import PE_LANES, _TREE_LEVELS
from repro.quant.fixed_point import FixedPointFormat
from repro.quant.schemes import QuantizationScheme


def _to_steps(value: float, fmt: FixedPointFormat) -> int:
    """Python-int step count of one quantized value (round-half-even)."""
    steps = round(float(value) / fmt.resolution)  # banker's rounding
    return _clamp(steps, fmt)


def _clamp(steps: int, fmt: FixedPointFormat) -> int:
    low = -(2 ** (fmt.total_bits - 1))
    high = 2 ** (fmt.total_bits - 1) - 1
    return max(low, min(high, steps))


def _segmented_multiply(ia: int, ib: int) -> int:
    """One lane's DSP-style product on Python ints."""
    mask = (1 << SEGMENT_BITS) - 1
    lo = ib & mask
    hi = (ib - lo) >> SEGMENT_BITS
    return ((ia * hi) << SEGMENT_BITS) + (ia * lo)


def _round_half_even_shift(steps: int, shift: int) -> int:
    """``round(steps / 2**shift)`` with ties to even, on Python ints."""
    if shift <= 0:
        return steps << (-shift)
    floor, remainder = divmod(steps, 1 << shift)
    half = 1 << (shift - 1)
    if remainder > half or (remainder == half and floor % 2 == 1):
        return floor + 1
    return floor


def reference_dot(
    a,
    b,
    scheme: QuantizationScheme,
    rounding_mode: str = "round_at_end",
    lanes: int = PE_LANES,
) -> float:
    """The specified dot-product result for on-scheme operands.

    ``a`` streams on the ``intermediate`` grid, ``b`` holds the
    ``weights`` grid — the same roles as
    :meth:`repro.fpga.emu.EmulatedPE.for_scheme`.
    """
    arith = scheme.arithmetic
    inter = scheme.intermediate
    weights = scheme.weights
    assert arith is not None and inter is not None and weights is not None
    ia = [_to_steps(value, inter) for value in a]
    ib = [_to_steps(value, weights) for value in b]
    assert len(ia) == len(ib)
    chunks = max(1, -(-len(ia) // lanes))
    padded = chunks * lanes
    ia += [0] * (padded - len(ia))
    ib += [0] * (padded - len(ib))
    shift = inter.fraction_bits + weights.fraction_bits - arith.fraction_bits

    if rounding_mode == "round_at_end":
        accumulator = 0
        for lane in range(padded):
            accumulator += _segmented_multiply(ia[lane], ib[lane])
        steps = _round_half_even_shift(accumulator, shift)
        steps = _clamp(steps, arith)
        return steps * arith.resolution

    if rounding_mode != "per_level":
        raise ValueError(f"unknown rounding mode {rounding_mode!r}")

    accumulator = 0
    for chunk in range(chunks):
        level = [
            _clamp(
                _round_half_even_shift(
                    _segmented_multiply(
                        ia[chunk * lanes + lane], ib[chunk * lanes + lane]
                    ),
                    shift,
                ),
                arith,
            )
            for lane in range(lanes)
        ]
        for _ in range(_TREE_LEVELS):
            level = [
                _clamp(level[i] + level[i + 1], arith)
                for i in range(0, len(level), 2)
            ]
        accumulator = _clamp(accumulator + level[0], arith)
    return accumulator * arith.resolution
