"""Golden testbench for the emulated PE datapath.

Three layers of certification, strongest first:

1. **Frozen bytes** — every corpus vector's result in both rounding
   modes must match ``data/pe_testbench.npz`` byte for byte.
2. **Live oracle** — the vectorized emulator must agree exactly with
   the slow pure-Python reference model on the full corpus (so the
   frozen file can never hide an emulator/reference co-drift).
3. **Divergence pins** — the engineered half-step cases must actually
   separate the modes, proving the corpus exercises the structural
   difference it claims to.

Regenerate intentionally with ``pytest tests/golden/pe
--update-golden`` and commit the new ``.npz`` with the change that
justified it.
"""

import numpy as np
import pytest

from repro.fpga.emu import ROUNDING_MODES
from repro.quant.schemes import SCHEMES
from tests.golden.pe import cases
from tests.golden.pe.reference import reference_dot

CASES = cases.testbench_cases()
CASE_IDS = [case["case_id"] for case in CASES]


@pytest.fixture(autouse=True, scope="module")
def _regenerate_if_requested(request):
    # Module-scoped: one regeneration for the whole file, not one per
    # test.  generate_all itself pins the numpy reference backend.
    if request.config.getoption("--update-golden"):
        cases.generate_all()
    yield


@pytest.fixture(scope="module")
def corpus(request):
    path = cases.DATA_DIR / cases.CORPUS_FILE
    if not path.exists():
        pytest.fail(
            f"missing golden corpus {path}; generate it with "
            "pytest tests/golden/pe --update-golden"
        )
    return np.load(path)


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


class TestFrozenCorpus:
    def test_corpus_covers_every_case_and_mode(self, corpus):
        expected = {
            f"{case_id}|{suffix}"
            for case_id in CASE_IDS
            for suffix in ("a", "b", *ROUNDING_MODES)
        }
        assert expected == set(corpus.files)

    @pytest.mark.parametrize(
        "case", CASES, ids=CASE_IDS,
    )
    def test_emulator_matches_frozen_bytes(self, case, corpus,
                                           update_golden):
        if update_golden:
            pytest.skip(
                f"regenerated {cases.CORPUS_FILE} via --update-golden"
            )
        key = case["case_id"]
        # The stored operands pin the generator itself: a corpus edit
        # that changes the vectors must be deliberate, not a seed or
        # quantizer drift.
        for operand in ("a", "b"):
            frozen = corpus[f"{key}|{operand}"]
            live = case[operand]
            assert frozen.dtype == live.dtype
            assert frozen.shape == live.shape
            assert frozen.tobytes() == live.tobytes(), (
                f"{key}|{operand}: operand vector drifted"
            )
        computed = cases.compute_outputs(case)
        for mode in ROUNDING_MODES:
            frozen = corpus[f"{key}|{mode}"]
            live = np.asarray(computed[mode])
            assert frozen.dtype == live.dtype
            assert frozen.tobytes() == live.tobytes(), (
                f"{key}|{mode}: byte-level mismatch "
                f"(frozen {float(frozen)!r}, computed {float(live)!r})"
            )


class TestLiveReference:
    @pytest.mark.parametrize(
        "case", CASES, ids=CASE_IDS,
    )
    @pytest.mark.parametrize("mode", ROUNDING_MODES)
    def test_emulator_agrees_with_slow_reference(self, case, mode):
        scheme = SCHEMES[case["scheme"]]
        emulated = cases.compute_outputs(case)[mode]
        oracle = reference_dot(
            case["a"], case["b"], scheme, rounding_mode=mode
        )
        assert float(emulated) == oracle, (
            f"{case['case_id']}|{mode}: emulator {float(emulated)!r} "
            f"!= reference {oracle!r}"
        )


class TestDivergencePins:
    @pytest.mark.parametrize(
        "case",
        [c for c in CASES if "diverge" in c["case_id"]],
        ids=[c["case_id"] for c in CASES if "diverge" in c["case_id"]],
    )
    def test_engineered_cases_separate_the_modes(self, case):
        outputs = cases.compute_outputs(case)
        assert outputs["round_at_end"] != outputs["per_level"], (
            f"{case['case_id']}: modes agree — the corpus no longer "
            "exercises per-product rounding"
        )

    @pytest.mark.parametrize(
        "case",
        [c for c in CASES if "saturate" in c["case_id"]],
        ids=[c["case_id"] for c in CASES if "saturate" in c["case_id"]],
    )
    def test_saturation_cases_pin_the_grid_limits(self, case):
        arith = SCHEMES[case["scheme"]].arithmetic
        value = float(cases.compute_outputs(case)["round_at_end"])
        assert value in (arith.max_value, arith.min_value)
