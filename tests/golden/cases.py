"""Golden-case definitions shared by the tests and ``--update-golden``.

Each case freezes a *small* deterministic input/output pair exercising
one hot path end to end:

* ``das`` — analytic ToF correction + boxcar DAS on a synthetic 8-element
  acquisition (covers ``TofPlan.apply`` and ``das_beamform``),
* ``tiny_vbf_forward`` — a miniature Tiny-VBF network's float forward
  pass (covers Dense / Conv-free attention GEMMs and the patch plumbing),
* ``qexec_20bits`` — the same network through the 20-bit quantized
  datapath (covers ``repro.quant.qexec``).

The frozen ``.npz`` files under ``tests/golden/data/`` store the exact
inputs (including every model parameter) *and* outputs, so the test
compares byte-for-byte without depending on RNG or initializer
stability.  The fixtures were generated on the pre-backend-refactor
tree, which is what makes them a bit-for-bit regression net for the
``numpy`` reference backend.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.beamform.apodization import boxcar_rx_apodization
from repro.beamform.das import das_beamform
from repro.beamform.geometry import ImagingGrid
from repro.beamform.tof import analytic_tofc
from repro.models.tiny_vbf import TinyVbfConfig, build_tiny_vbf
from repro.quant.qexec import quantized_forward
from repro.quant.schemes import SCHEMES
from repro.ultrasound.probe import LinearProbe

DATA_DIR = Path(__file__).resolve().parent / "data"

#: (nz, nx) of the miniature imaging grid — kept tiny so the frozen
#: arrays stay a few kilobytes.
GOLDEN_IMAGE_SHAPE = (16, 12)
GOLDEN_N_ELEMENTS = 8
# Long enough that the 4-10 mm round-trip delays (~260 samples at
# 20 MHz) land inside the record — otherwise the validity mask zeroes
# the whole cube and the golden never exercises the interpolation.
GOLDEN_N_SAMPLES = 320


def golden_probe() -> LinearProbe:
    return LinearProbe(
        n_elements=GOLDEN_N_ELEMENTS,
        pitch_m=0.3e-3,
        element_width_m=0.25e-3,
        center_frequency_hz=5.0e6,
        sampling_frequency_hz=20.0e6,
    )


def golden_grid() -> ImagingGrid:
    nz, nx = GOLDEN_IMAGE_SHAPE
    return ImagingGrid(
        x_m=np.linspace(-1.1e-3, 1.1e-3, nx),
        z_m=np.linspace(4.0e-3, 10.0e-3, nz),
    )


def golden_rf() -> np.ndarray:
    rng = np.random.default_rng(20240301)
    return rng.standard_normal((GOLDEN_N_SAMPLES, GOLDEN_N_ELEMENTS))


def golden_model():
    """A miniature (but structurally complete) Tiny-VBF network."""
    config = TinyVbfConfig(
        image_shape=GOLDEN_IMAGE_SHAPE,
        n_channels=GOLDEN_N_ELEMENTS,
        channel_projection=8,
        patch_size=(8, 6),
        d_model=16,
        n_heads=2,
        n_blocks=2,
        mlp_ratio=2.0,
        context_channels=4,
        head_hidden=8,
        seed=11,
    )
    return build_tiny_vbf(config)


def golden_model_input() -> np.ndarray:
    rng = np.random.default_rng(20240302)
    nz, nx = GOLDEN_IMAGE_SHAPE
    return rng.uniform(-1.0, 1.0, (1, nz, nx, 2 * GOLDEN_N_ELEMENTS))


def load_model_params(model, stored: dict) -> None:
    """Overwrite every parameter with its frozen value, in build order."""
    for index, param in enumerate(model.parameters()):
        frozen = stored[f"param_{index}"]
        if frozen.shape != param.value.shape:
            raise ValueError(
                f"golden parameter {index} shape {frozen.shape} does not "
                f"match model parameter {param.name} {param.value.shape}"
            )
        param.value = frozen.copy()


def dump_model_params(model) -> dict:
    return {
        f"param_{index}": param.value
        for index, param in enumerate(model.parameters())
    }


# --------------------------------------------------------------------------
# Case computations (run on stored inputs by the test, on fresh inputs by
# --update-golden; both paths share these functions).
# --------------------------------------------------------------------------


def compute_das(rf: np.ndarray) -> dict:
    probe, grid = golden_probe(), golden_grid()
    tofc = analytic_tofc(rf, probe, grid)
    apodization = boxcar_rx_apodization(probe, grid, f_number=1.5)
    image = das_beamform(tofc, apodization)
    return {"tofc": tofc, "image": image}


def compute_tiny_vbf_forward(model, x: np.ndarray) -> dict:
    return {"output": model.forward(x, training=False)}


def compute_qexec_20bits(model, x: np.ndarray) -> dict:
    return {
        "output": quantized_forward(model.root, x, SCHEMES["20 bits"])
    }


def generate_all(data_dir: Path | None = None) -> list[Path]:
    """(Re)write every golden file; returns the written paths.

    Always generates under the ``numpy`` reference backend — the
    fixtures *define* the reference bytes, so an ambient
    ``REPRO_BACKEND=numpy-fast`` (e.g. a shell left over from CI-matrix
    debugging) must not leak float32 results into them.
    """
    from repro.backend import use_backend

    with use_backend("numpy"):
        return _generate_all_reference(data_dir)


def _generate_all_reference(data_dir: Path | None) -> list[Path]:
    data_dir = DATA_DIR if data_dir is None else data_dir
    data_dir.mkdir(parents=True, exist_ok=True)
    written = []

    rf = golden_rf()
    path = data_dir / "das.npz"
    np.savez(path, rf=rf, **compute_das(rf))
    written.append(path)

    model = golden_model()
    x = golden_model_input()
    params = dump_model_params(model)
    path = data_dir / "tiny_vbf_forward.npz"
    np.savez(path, x=x, **params, **compute_tiny_vbf_forward(model, x))
    written.append(path)

    path = data_dir / "qexec_20bits.npz"
    np.savez(path, x=x, **params, **compute_qexec_20bits(model, x))
    written.append(path)
    return written
