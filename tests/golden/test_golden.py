"""Byte-level golden regression tests for the hot paths.

The frozen ``.npz`` pairs under ``data/`` were generated on the
pre-backend-refactor tree, so these tests pin the ``numpy`` reference
backend to the historical numerics *bit-for-bit* — any refactor that
changes a single ULP anywhere in ToF correction, DAS, the float forward
pass or the 20-bit quantized datapath fails here with a byte diff.

Regenerate intentionally with::

    pytest tests/golden --update-golden

(the run reports the regenerated cases as skips; commit the new data
files together with the change that justified them).
"""

import numpy as np
import pytest

from repro.backend import use_backend

from . import cases


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


def _assert_frozen(name: str, computed: dict, update: bool) -> None:
    path = cases.DATA_DIR / f"{name}.npz"
    if update:
        pytest.skip(f"regenerated {path.name} via --update-golden")
    stored = np.load(path)
    for key, value in computed.items():
        frozen = stored[key]
        assert frozen.dtype == value.dtype, (
            f"{name}/{key}: dtype drifted {frozen.dtype} -> {value.dtype}"
        )
        assert frozen.shape == value.shape, (
            f"{name}/{key}: shape drifted {frozen.shape} -> {value.shape}"
        )
        assert frozen.tobytes() == value.tobytes(), (
            f"{name}/{key}: byte-level mismatch (max abs diff "
            f"{np.abs(np.asarray(value) - frozen).max():.3e})"
        )


@pytest.fixture(autouse=True, scope="module")
def _regenerate_if_requested(request):
    # Module-scoped: one regeneration for the whole file, not one per
    # test.  generate_all itself pins the numpy reference backend.
    if request.config.getoption("--update-golden"):
        cases.generate_all()
    yield


@pytest.fixture(scope="module")
def frozen_model():
    """The miniature Tiny-VBF with its frozen parameters loaded."""
    stored = np.load(cases.DATA_DIR / "tiny_vbf_forward.npz")
    model = cases.golden_model()
    cases.load_model_params(model, stored)
    return model


class TestGoldenNumpyBackend:
    """The reference backend reproduces the pre-refactor bytes."""

    def test_das(self, update_golden):
        stored = np.load(cases.DATA_DIR / "das.npz")
        with use_backend("numpy"):
            computed = cases.compute_das(stored["rf"])
        _assert_frozen("das", computed, update_golden)

    def test_das_cube_is_not_degenerate(self):
        stored = np.load(cases.DATA_DIR / "das.npz")
        # Guards the golden itself: an all-invalid delay mask would
        # zero the cube and silently stop testing the interpolation.
        assert (np.abs(stored["tofc"]) > 0).mean() > 0.9

    def test_tiny_vbf_forward(self, update_golden, frozen_model):
        stored = np.load(cases.DATA_DIR / "tiny_vbf_forward.npz")
        with use_backend("numpy"):
            computed = cases.compute_tiny_vbf_forward(
                frozen_model, stored["x"]
            )
        _assert_frozen("tiny_vbf_forward", computed, update_golden)

    def test_qexec_20bits(self, update_golden, frozen_model):
        stored = np.load(cases.DATA_DIR / "qexec_20bits.npz")
        with use_backend("numpy"):
            computed = cases.compute_qexec_20bits(
                frozen_model, stored["x"]
            )
        _assert_frozen("qexec_20bits", computed, update_golden)

    def test_qexec_output_is_quantized_grid(self, frozen_model):
        from repro.quant.schemes import SCHEMES

        stored = np.load(cases.DATA_DIR / "qexec_20bits.npz")
        fmt = SCHEMES["20 bits"].intermediate
        out = stored["output"]
        assert np.array_equal(fmt.quantize(out), out)
