"""Property-based tests on NN building blocks (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Dense,
    LayerNorm,
    MultiHeadAttention,
    Patchify,
    Softmax,
    Unpatchify,
)


def _finite_arrays(shape, scale=3.0):
    return st.integers(min_value=0, max_value=2**31 - 1).map(
        lambda seed: np.random.default_rng(seed).uniform(
            -scale, scale, shape
        )
    )


class TestSoftmaxProperties:
    @settings(max_examples=30, deadline=None)
    @given(_finite_arrays((5, 9)))
    def test_simplex_output(self, x):
        out = Softmax().forward(x)
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0)

    @settings(max_examples=30, deadline=None)
    @given(_finite_arrays((4, 7)), st.floats(-50, 50))
    def test_shift_invariance(self, x, shift):
        layer = Softmax()
        assert np.allclose(
            layer.forward(x), layer.forward(x + shift), atol=1e-12
        )


class TestLayerNormProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        _finite_arrays((6, 12)),
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=0.1, max_value=10),
    )
    def test_affine_input_invariance(self, x, shift, gain):
        # LayerNorm output is invariant to affine rescaling of the input
        # (exactly so as eps -> 0; use a tiny eps so the property holds
        # to tight tolerance even for small gains).
        layer = LayerNorm(12, eps=1e-12)
        assert np.allclose(
            layer.forward(x),
            layer.forward(gain * x + shift),
            atol=1e-5,
        )


class TestAttentionProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_token_permutation_equivariance(self, seed):
        # Self-attention without positional information is permutation
        # equivariant: permuting input tokens permutes outputs the same
        # way.  (This is why Tiny-VBF needs its positional embedding.)
        rng = np.random.default_rng(seed)
        layer = MultiHeadAttention(8, 2, seed=3)
        x = rng.normal(size=(2, 6, 8))
        permutation = rng.permutation(6)
        out = layer.forward(x)
        out_permuted = layer.forward(x[:, permutation, :])
        assert np.allclose(out_permuted, out[:, permutation, :],
                           atol=1e-10)


class TestDenseProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=-3, max_value=3),
        st.floats(min_value=-3, max_value=3),
    )
    def test_linearity_without_bias(self, seed, a, b):
        rng = np.random.default_rng(seed)
        layer = Dense(5, 4, bias=False, seed=1)
        x1, x2 = rng.normal(size=(3, 5)), rng.normal(size=(3, 5))
        combined = layer.forward(a * x1 + b * x2)
        separate = a * layer.forward(x1) + b * layer.forward(x2)
        assert np.allclose(combined, separate, atol=1e-9)


class TestPatchProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from([(2, 2), (4, 2), (2, 4), (8, 4)]),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_roundtrip_any_geometry(self, patch, channels, seed):
        pz, px = patch
        nz, nx = pz * 3, px * 5
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, nz, nx, channels))
        tokens = Patchify(patch).forward(x)
        back = Unpatchify(patch, (nz, nx), channels).forward(tokens)
        assert np.allclose(back, x)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_patchify_preserves_energy(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 8, 8, 3))
        tokens = Patchify((4, 4)).forward(x)
        assert np.isclose((tokens**2).sum(), (x**2).sum())
