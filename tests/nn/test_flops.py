"""Unit tests for the FLOP counter."""

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Dense,
    MultiHeadAttention,
    Patchify,
    ReLU,
    Residual,
    Sequential,
    Unpatchify,
)
from repro.nn.flops import count_flops, gops_per_frame


class TestDenseFlops:
    def test_known_value(self):
        flops, shape = count_flops(Dense(10, 20, seed=0), (4, 10))
        assert flops == 2 * 4 * 10 * 20
        assert shape == (4, 20)

    def test_high_rank_batches(self):
        flops, shape = count_flops(Dense(8, 2, seed=0), (2, 3, 8))
        assert flops == 2 * 6 * 8 * 2
        assert shape == (2, 3, 2)


class TestConvFlops:
    def test_known_value(self):
        layer = Conv2D(3, 5, (3, 3), seed=0)
        flops, shape = count_flops(layer, (1, 10, 12, 3))
        assert flops == 2 * 10 * 12 * 9 * 3 * 5
        assert shape == (1, 10, 12, 5)


class TestAttentionFlops:
    def test_projection_dominated_scaling(self):
        layer = MultiHeadAttention(16, 2, seed=0)
        small, _ = count_flops(layer, (1, 8, 16))
        large, _ = count_flops(layer, (1, 16, 16))
        # Token count doubles: projections double, score terms quadruple.
        assert 2.0 < large / small < 4.0

    def test_shape_preserved(self):
        layer = MultiHeadAttention(8, 2, seed=0)
        _, shape = count_flops(layer, (2, 5, 8))
        assert shape == (2, 5, 8)


class TestContainers:
    def test_sequential_sums_and_propagates(self):
        model = Sequential([Dense(4, 8, seed=0), ReLU(), Dense(8, 2, seed=1)])
        flops, shape = count_flops(model, (3, 4))
        assert flops == 2 * 3 * 4 * 8 + 3 * 8 + 2 * 3 * 8 * 2
        assert shape == (3, 2)

    def test_residual_adds_elementwise_cost(self):
        inner = Dense(6, 6, seed=0)
        flops, shape = count_flops(Residual(inner), (2, 6))
        inner_flops, _ = count_flops(inner, (2, 6))
        assert flops == inner_flops + 12
        assert shape == (2, 6)

    def test_residual_rejects_shape_change(self):
        with pytest.raises(ValueError):
            count_flops(Residual(Dense(6, 5, seed=0)), (2, 6))


class TestPatchFlops:
    def test_patchify_free_but_reshapes(self):
        flops, shape = count_flops(Patchify((2, 2)), (1, 8, 8, 3))
        assert flops == 0.0
        assert shape == (1, 16, 12)

    def test_unpatchify_shape(self):
        layer = Unpatchify((2, 2), (8, 8), channels=2)
        flops, shape = count_flops(layer, (1, 16, 8))
        assert shape == (1, 8, 8, 2)


class TestGopsPerFrame:
    def test_unit_conversion(self):
        layer = Dense(1000, 500, seed=0)
        gops = gops_per_frame(layer, (1000,))
        assert gops == pytest.approx(2 * 1000 * 500 / 1e9)

    def test_unknown_layer_raises(self):
        class Mystery:
            pass

        with pytest.raises(TypeError):
            count_flops(Mystery(), (1, 2))
