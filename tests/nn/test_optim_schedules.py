"""Unit tests for optimizers, schedules, losses."""

import numpy as np
import pytest

from repro.nn import Adam, ConstantSchedule, CyclicPolynomialDecay, MSELoss, SGD
from repro.nn.layers.base import Parameter


def _quadratic_grad(parameter, target):
    parameter.zero_grad()
    parameter.grad += 2.0 * (parameter.value - target)


class TestSGD:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        optimizer = SGD([parameter], learning_rate=0.1)
        for _ in range(200):
            _quadratic_grad(parameter, target)
            optimizer.step()
        assert np.allclose(parameter.value, target, atol=1e-6)

    def test_momentum_accelerates(self):
        def run(momentum):
            parameter = Parameter(np.array([10.0]))
            optimizer = SGD([parameter], 0.02, momentum=momentum)
            for _ in range(50):
                _quadratic_grad(parameter, np.zeros(1))
                optimizer.step()
            return abs(parameter.value[0])

        assert run(0.9) < run(0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], 0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([4.0, -7.0, 0.5]))
        target = np.array([-1.0, 3.0, 2.0])
        optimizer = Adam([parameter], learning_rate=0.05)
        for _ in range(800):
            _quadratic_grad(parameter, target)
            optimizer.step()
        assert np.allclose(parameter.value, target, atol=1e-4)

    def test_first_step_is_learning_rate_sized(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        parameter = Parameter(np.array([0.0]))
        optimizer = Adam([parameter], learning_rate=1e-3)
        parameter.grad += np.array([123.0])
        optimizer.step()
        assert parameter.value[0] == pytest.approx(-1e-3, rel=1e-3)

    def test_zero_grad_clears_all(self):
        p1, p2 = Parameter(np.zeros(2)), Parameter(np.zeros(3))
        optimizer = Adam([p1, p2], 1e-3)
        p1.grad += 1.0
        p2.grad += 2.0
        optimizer.zero_grad()
        assert np.all(p1.grad == 0) and np.all(p2.grad == 0)

    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            Adam([], 1e-3)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.01)
        assert schedule(0) == schedule(10**6) == 0.01

    def test_polynomial_starts_at_initial(self):
        schedule = CyclicPolynomialDecay(1e-4, 1e-6, decay_steps=1000)
        assert schedule(0) == pytest.approx(1e-4, rel=1e-3)

    def test_polynomial_reaches_final(self):
        schedule = CyclicPolynomialDecay(1e-4, 1e-6, decay_steps=1000)
        assert schedule(999) == pytest.approx(1e-6, rel=0.2)

    def test_cycles_restart(self):
        # Just past a cycle boundary, the rate snaps back up: the paper's
        # "polynomial decay schedule with cyclic changes".
        schedule = CyclicPolynomialDecay(1e-4, 1e-6, decay_steps=1000)
        end_of_cycle = schedule(999)
        after_restart = schedule(1100)
        assert after_restart > 10 * end_of_cycle

    def test_monotone_within_cycle(self):
        schedule = CyclicPolynomialDecay(1e-4, 1e-6, decay_steps=500)
        rates = [schedule(step) for step in range(500)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_rejects_final_above_initial(self):
        with pytest.raises(ValueError):
            CyclicPolynomialDecay(1e-6, 1e-4)

    def test_schedule_drives_optimizer(self):
        parameter = Parameter(np.zeros(1))
        optimizer = SGD(
            [parameter], CyclicPolynomialDecay(0.1, 0.001, decay_steps=10)
        )
        assert optimizer.current_learning_rate == pytest.approx(0.1)
        for _ in range(9):
            optimizer.step()
        assert optimizer.current_learning_rate < 0.02


class TestMSELoss:
    def test_known_value(self):
        loss = MSELoss()
        value = loss.forward(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert value == pytest.approx(2.5)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        prediction = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))
        loss = MSELoss()
        loss.forward(prediction, target)
        grad = loss.backward()
        eps = 1e-6
        probe = (1, 2)
        perturbed = prediction.copy()
        perturbed[probe] += eps
        numeric = (
            loss.forward(perturbed, target)
            - loss.forward(prediction, target)
        ) / eps
        assert grad[probe] == pytest.approx(numeric, rel=1e-4)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros(3), np.zeros(4))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()
