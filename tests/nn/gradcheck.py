"""Numerical gradient checking helpers.

Strategy: reduce the layer output to a scalar ``L = sum(forward(x) * R)``
with a fixed random projection ``R``.  Then ``dL/dx`` equals
``backward(R)`` and ``dL/dtheta`` equals each parameter's accumulated
gradient — both are compared against central finite differences.
"""

from __future__ import annotations

import numpy as np

EPS = 1e-6


def check_input_gradient(
    layer,
    x: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-7,
    n_probes: int = 24,
    seed: int = 0,
) -> None:
    """Assert analytic input gradients match finite differences."""
    rng = np.random.default_rng(seed)
    x = np.asarray(x, dtype=float)
    projection = rng.normal(size=layer.forward(x, training=False).shape)

    for parameter in layer.parameters():
        parameter.zero_grad()
    layer.forward(x, training=False)
    analytic = layer.backward(projection)

    flat = x.reshape(-1)
    indices = rng.choice(flat.size, size=min(n_probes, flat.size),
                         replace=False)
    for index in indices:
        original = flat[index]
        flat[index] = original + EPS
        plus = np.sum(layer.forward(x, training=False) * projection)
        flat[index] = original - EPS
        minus = np.sum(layer.forward(x, training=False) * projection)
        flat[index] = original
        numeric = (plus - minus) / (2.0 * EPS)
        assert np.isclose(
            analytic.reshape(-1)[index], numeric, rtol=rtol, atol=atol
        ), (
            f"input grad mismatch at {index}: analytic "
            f"{analytic.reshape(-1)[index]:.8e} vs numeric {numeric:.8e}"
        )


def check_parameter_gradients(
    layer,
    x: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-7,
    n_probes: int = 16,
    seed: int = 1,
) -> None:
    """Assert analytic parameter gradients match finite differences."""
    rng = np.random.default_rng(seed)
    x = np.asarray(x, dtype=float)
    projection = rng.normal(size=layer.forward(x, training=False).shape)

    for parameter in layer.parameters():
        parameter.zero_grad()
    layer.forward(x, training=False)
    layer.backward(projection)

    for parameter in layer.parameters():
        flat = parameter.value.reshape(-1)
        grad_flat = parameter.grad.reshape(-1)
        indices = rng.choice(
            flat.size, size=min(n_probes, flat.size), replace=False
        )
        for index in indices:
            original = flat[index]
            flat[index] = original + EPS
            plus = np.sum(layer.forward(x, training=False) * projection)
            flat[index] = original - EPS
            minus = np.sum(layer.forward(x, training=False) * projection)
            flat[index] = original
            numeric = (plus - minus) / (2.0 * EPS)
            assert np.isclose(
                grad_flat[index], numeric, rtol=rtol, atol=atol
            ), (
                f"{parameter.name}[{index}]: analytic "
                f"{grad_flat[index]:.8e} vs numeric {numeric:.8e}"
            )
