"""Unit tests for Model (weights I/O) and Trainer (learning dynamics)."""

import numpy as np
import pytest

from repro.nn import Adam, Dense, Model, MSELoss, ReLU, Sequential, Trainer


def _make_model(seed=0):
    return Model(
        Sequential([Dense(3, 16, seed=seed), ReLU(), Dense(16, 1, seed=seed + 1)]),
        name="test",
    )


class TestModel:
    def test_parameter_count(self):
        model = _make_model()
        assert model.n_parameters == (3 * 16 + 16) + (16 * 1 + 1)

    def test_predict_batches_match_single_pass(self):
        model = _make_model()
        x = np.random.default_rng(0).normal(size=(11, 3))
        assert np.allclose(model.predict(x, batch_size=4), model.forward(x))

    def test_save_load_roundtrip(self, tmp_path):
        model = _make_model(seed=1)
        x = np.random.default_rng(1).normal(size=(5, 3))
        expected = model.forward(x)
        path = model.save_weights(tmp_path / "w.npz")

        fresh = _make_model(seed=99)
        assert not np.allclose(fresh.forward(x), expected)
        fresh.load_weights(path)
        assert np.allclose(fresh.forward(x), expected)

    def test_load_rejects_wrong_architecture(self, tmp_path):
        model = _make_model()
        path = model.save_weights(tmp_path / "w.npz")
        other = Model(Sequential([Dense(3, 8, seed=0), Dense(8, 1, seed=1)]))
        with pytest.raises(ValueError):
            other.load_weights(path)

    def test_summary_mentions_count(self):
        model = _make_model()
        assert str(model.n_parameters) in model.summary()


class TestTrainer:
    def test_learns_linear_map(self):
        rng = np.random.default_rng(3)
        true_w = np.array([[1.5], [-2.0], [0.5]])
        x = rng.normal(size=(64, 3))
        y = x @ true_w + 0.3
        model = Model(Sequential([Dense(3, 1, seed=3)]))
        trainer = Trainer(model, Adam(model.parameters(), 0.02), seed=0)
        history = trainer.fit(x, y, epochs=150, batch_size=16)
        assert history.final_loss < 1e-3
        assert history.loss[0] > history.final_loss

    def test_nonlinear_regression_improves(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, size=(96, 3))
        y = np.sin(2 * x.sum(axis=1, keepdims=True))
        model = _make_model(seed=5)
        trainer = Trainer(model, Adam(model.parameters(), 1e-2), seed=1)
        history = trainer.fit(x, y, epochs=100, batch_size=10)
        assert history.final_loss < 0.3 * history.loss[0]

    def test_validation_tracked(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(32, 3))
        y = x[:, :1]
        model = _make_model(seed=6)
        trainer = Trainer(model, Adam(model.parameters(), 1e-2), seed=2)
        history = trainer.fit(
            x[:24], y[:24], epochs=5, validation=(x[24:], y[24:])
        )
        assert len(history.val_loss) == 5

    def test_deterministic_given_seeds(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(20, 3))
        y = x[:, :1] * 2.0

        def run():
            model = _make_model(seed=7)
            trainer = Trainer(model, Adam(model.parameters(), 1e-2), seed=3)
            trainer.fit(x, y, epochs=3, batch_size=5)
            return model.forward(x)

        assert np.allclose(run(), run())

    def test_rejects_mismatched_samples(self):
        model = _make_model()
        trainer = Trainer(model, Adam(model.parameters(), 1e-3))
        with pytest.raises(ValueError, match="sample count"):
            trainer.fit(np.zeros((4, 3)), np.zeros((5, 1)), epochs=1)

    def test_history_records_learning_rate(self):
        rng = np.random.default_rng(7)
        x, y = rng.normal(size=(10, 3)), rng.normal(size=(10, 1))
        model = _make_model(seed=8)
        trainer = Trainer(model, Adam(model.parameters(), 1e-3), seed=4)
        history = trainer.fit(x, y, epochs=2)
        assert len(history.learning_rate) == 2
