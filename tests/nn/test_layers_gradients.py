"""Gradient checks: every layer's backward vs finite differences."""

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Dense,
    LayerNorm,
    LearnedPositionalEmbedding,
    MultiHeadAttention,
    Patchify,
    ReLU,
    Residual,
    Sequential,
    Softmax,
    Tanh,
    Unpatchify,
)

from tests.nn.gradcheck import check_input_gradient, check_parameter_gradients


RNG = np.random.default_rng(42)


class TestDenseGradients:
    def test_input_gradient_2d(self):
        layer = Dense(6, 4, seed=0)
        check_input_gradient(layer, RNG.normal(size=(5, 6)))

    def test_input_gradient_high_rank(self):
        layer = Dense(5, 3, seed=1)
        check_input_gradient(layer, RNG.normal(size=(2, 3, 4, 5)))

    def test_parameter_gradients(self):
        layer = Dense(6, 4, seed=2)
        check_parameter_gradients(layer, RNG.normal(size=(7, 6)))

    def test_parameter_gradients_high_rank(self):
        layer = Dense(4, 2, seed=3)
        check_parameter_gradients(layer, RNG.normal(size=(2, 3, 4)))

    def test_no_bias_variant(self):
        layer = Dense(4, 3, bias=False, seed=4)
        assert len(layer.parameters()) == 1
        check_parameter_gradients(layer, RNG.normal(size=(5, 4)))


class TestActivationGradients:
    def test_relu_input_gradient(self):
        # Keep probe points away from the kink at 0.
        x = RNG.normal(size=(4, 7))
        x[np.abs(x) < 0.1] += 0.2
        check_input_gradient(ReLU(), x)

    def test_tanh_input_gradient(self):
        check_input_gradient(Tanh(), RNG.normal(size=(3, 5)))

    def test_softmax_input_gradient(self):
        check_input_gradient(Softmax(), RNG.normal(size=(4, 6)))

    def test_softmax_rows_sum_to_one(self):
        out = Softmax().forward(RNG.normal(size=(9, 11)) * 10)
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_softmax_numerical_stability(self):
        out = Softmax().forward(np.array([[1e4, 1e4 + 1.0]]))
        assert np.all(np.isfinite(out))


class TestLayerNormGradients:
    def test_input_gradient(self):
        check_input_gradient(LayerNorm(8), RNG.normal(size=(4, 8)), rtol=1e-4)

    def test_input_gradient_3d(self):
        check_input_gradient(
            LayerNorm(6), RNG.normal(size=(2, 5, 6)), rtol=1e-4
        )

    def test_parameter_gradients(self):
        check_parameter_gradients(LayerNorm(8), RNG.normal(size=(4, 8)))

    def test_normalizes_statistics(self):
        out = LayerNorm(16).forward(RNG.normal(2.0, 3.0, size=(10, 16)))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)


class TestAttentionGradients:
    def test_input_gradient(self):
        layer = MultiHeadAttention(d_model=8, n_heads=2, seed=5)
        check_input_gradient(
            layer, RNG.normal(size=(2, 5, 8)), rtol=1e-4, atol=1e-6
        )

    def test_parameter_gradients(self):
        layer = MultiHeadAttention(d_model=6, n_heads=3, seed=6)
        check_parameter_gradients(
            layer, RNG.normal(size=(2, 4, 6)), rtol=1e-4, atol=1e-6
        )

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            MultiHeadAttention(d_model=7, n_heads=2)

    def test_output_shape(self):
        layer = MultiHeadAttention(d_model=8, n_heads=4, seed=7)
        out = layer.forward(RNG.normal(size=(3, 9, 8)))
        assert out.shape == (3, 9, 8)


class TestConvGradients:
    def test_input_gradient(self):
        layer = Conv2D(3, 2, (3, 3), seed=8)
        check_input_gradient(layer, RNG.normal(size=(2, 5, 4, 3)))

    def test_parameter_gradients(self):
        layer = Conv2D(2, 3, (3, 3), seed=9)
        check_parameter_gradients(layer, RNG.normal(size=(2, 4, 4, 2)))

    def test_same_padding_shape(self):
        layer = Conv2D(4, 6, (5, 3), seed=10)
        out = layer.forward(RNG.normal(size=(1, 10, 8, 4)))
        assert out.shape == (1, 10, 8, 6)

    def test_matches_direct_convolution(self):
        # Cross-check im2col against a naive direct computation.
        layer = Conv2D(1, 1, (3, 3), bias=False, seed=11)
        x = RNG.normal(size=(1, 6, 6, 1))
        out = layer.forward(x)
        kernel = layer.weight.value.reshape(3, 3)
        padded = np.pad(x[0, :, :, 0], 1)
        direct = np.zeros((6, 6))
        for i in range(6):
            for j in range(6):
                direct[i, j] = np.sum(padded[i : i + 3, j : j + 3] * kernel)
        assert np.allclose(out[0, :, :, 0], direct)

    def test_rejects_even_kernel(self):
        with pytest.raises(ValueError, match="odd"):
            Conv2D(1, 1, (2, 2))


class TestPatchLayers:
    def test_roundtrip_identity(self):
        patchify = Patchify((2, 3))
        unpatchify = Unpatchify((2, 3), (4, 6), channels=5)
        x = RNG.normal(size=(2, 4, 6, 5))
        assert np.allclose(unpatchify.forward(patchify.forward(x)), x)

    def test_patchify_gradient(self):
        check_input_gradient(Patchify((2, 2)), RNG.normal(size=(2, 4, 4, 3)))

    def test_unpatchify_gradient(self):
        layer = Unpatchify((2, 2), (4, 4), channels=3)
        check_input_gradient(layer, RNG.normal(size=(2, 4, 12)))

    def test_token_count(self):
        assert Patchify.token_count((368, 64), (8, 8)) == 46 * 8

    def test_token_count_rejects_indivisible(self):
        with pytest.raises(ValueError, match="divisible"):
            Patchify.token_count((10, 10), (3, 3))

    def test_patch_content_row_major(self):
        # First token must be the top-left tile.
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        tokens = Patchify((2, 2)).forward(x)
        assert np.allclose(tokens[0, 0], [0, 1, 4, 5])


class TestContainersAndEmbedding:
    def test_sequential_gradient(self):
        model = Sequential([Dense(5, 8, seed=12), ReLU(), Dense(8, 3, seed=13)])
        x = RNG.normal(size=(4, 5))
        check_input_gradient(model, x, rtol=1e-4)
        check_parameter_gradients(model, x, rtol=1e-4)

    def test_residual_gradient(self):
        block = Residual(Sequential([Dense(6, 6, seed=14), Tanh()]))
        x = RNG.normal(size=(3, 6))
        check_input_gradient(block, x, rtol=1e-4)
        check_parameter_gradients(block, x, rtol=1e-4)

    def test_positional_embedding_gradient(self):
        layer = LearnedPositionalEmbedding(5, 4, seed=15)
        x = RNG.normal(size=(3, 5, 4))
        check_input_gradient(layer, x)
        check_parameter_gradients(layer, x)

    def test_sequential_rejects_empty(self):
        with pytest.raises(ValueError):
            Sequential([])
