"""Process-sharded engine: parity, transports, crash handling, soak.

Real worker processes are spawned here (no mocks): each engine start
pays an interpreter spawn + import, so the suite keeps engine count low
and asserts interleaving-independent invariants — bitwise parity with
the offline API and the threaded engine, frame conservation through
shutdown, crash surfacing, and restart-with-requeue.
"""

import numpy as np
import pytest

from repro.api import create_beamformer
from repro.backend import available_backends
from repro.models.registry import build_model
from repro.serve import (
    ReplaySource,
    ServeEngine,
    ShardedServeEngine,
    WorkerCrashed,
)
from repro.ultrasound import stream_gain_drift
from tests.serve._sharding_helpers import (
    CrashingBeamformer,
    CrashOnceBeamformer,
)

N_FRAMES = 8


@pytest.fixture(scope="module")
def frames(sim_contrast_dataset):
    return list(
        stream_gain_drift(sim_contrast_dataset, N_FRAMES, seed=21)
    )


def sharded(beamformer, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("log_every_s", 0.0)
    return ShardedServeEngine(beamformer, **kwargs)


class TestShardedParity:
    @pytest.mark.parametrize("backend", available_backends())
    def test_sharded_threaded_offline_bitwise_parity(
        self, frames, backend
    ):
        """The tri-parity invariant, per registered backend.

        offline ``beamform`` == threaded ``ServeEngine`` == sharded
        ``ShardedServeEngine`` (shm transport), bit for bit: the shm
        round trip is byte-exact and workers run the identical
        ``beamform_batch``, so process sharding must not move a single
        bit of output.
        """
        beamformer = create_beamformer("das", backend=backend)
        offline = [beamformer.beamform(frame) for frame in frames]
        threaded = ServeEngine(
            beamformer, n_workers=2, log_every_s=0.0
        ).serve(ReplaySource(frames))
        with sharded(beamformer, transport="shm") as engine:
            report = engine.serve(ReplaySource(frames))
        assert report.completed == len(frames)
        for reference, via_threads, via_shards in zip(
            offline, threaded.images, report.images
        ):
            np.testing.assert_array_equal(reference, via_threads)
            np.testing.assert_array_equal(reference, via_shards)

    def test_pickle_transport_matches_shm(self, frames):
        beamformer = create_beamformer("das")
        offline = [beamformer.beamform(frame) for frame in frames]
        with sharded(beamformer, transport="pickle") as engine:
            report = engine.serve(ReplaySource(frames))
        for reference, image in zip(offline, report.images):
            np.testing.assert_array_equal(reference, image)

    def test_learned_beamformer_parity_and_shard_stats(self, frames):
        """Tiny-VBF (untrained) through 2 shards: parity + telemetry."""
        model = build_model("tiny_vbf", "small", seed=0)
        beamformer = create_beamformer("tiny_vbf", model=model)
        offline = [beamformer.beamform(frame) for frame in frames]
        with sharded(beamformer) as engine:
            report = engine.serve(ReplaySource(frames))
        for reference, image in zip(offline, report.images):
            np.testing.assert_array_equal(reference, image)
        shards = report.stats["shards"]
        assert sum(entry["frames"] for entry in shards.values()) == (
            len(frames)
        )
        workers = report.stats["workers"]
        assert workers == {
            "spawned": 2, "exited": 0, "restarts": 0, "live": 2,
        }

    def test_process_default_backend_propagates_to_workers(
        self, frames
    ):
        """A programmatic ``set_backend`` must reach spawned workers.

        Workers re-import ``repro.backend`` on spawn, so the parent's
        ``REPRO_BACKEND`` env default would apply automatically — but a
        default set *after* import via ``set_backend`` exists only in
        the parent's process state.  The engine captures it with
        ``default_backend_name()`` at start; a worker left on the
        ``numpy`` default would produce float64 DAS output instead of
        numpy-fast's float32.
        """
        from repro.backend import default_backend_name, set_backend

        beamformer = create_beamformer("das")  # backend=None: inherit
        fast_offline = [
            create_beamformer("das", backend="numpy-fast").beamform(f)
            for f in frames[:4]
        ]
        previous = default_backend_name()
        set_backend("numpy-fast")
        try:
            with sharded(beamformer) as engine:
                report = engine.serve(ReplaySource(frames[:4]))
        finally:
            set_backend(previous)
        for reference, image in zip(fast_offline, report.images):
            np.testing.assert_array_equal(reference, image)

    def test_engine_reuse_across_runs(self, frames):
        """One worker pool serves several runs (spawn cost amortized)."""
        beamformer = create_beamformer("das")
        offline = [beamformer.beamform(frame) for frame in frames[:4]]
        with sharded(beamformer) as engine:
            first = engine.serve(ReplaySource(frames[:4]))
            second = engine.serve(ReplaySource(frames[:4]))
        for reference, one, two in zip(
            offline, first.images, second.images
        ):
            np.testing.assert_array_equal(reference, one)
            np.testing.assert_array_equal(reference, two)

    def test_sink_receives_every_frame(self, frames):
        beamformer = create_beamformer("das")
        delivered = {}
        with sharded(beamformer) as engine:
            engine.serve(
                ReplaySource(frames[:4]),
                sink=lambda seq, dataset, image: delivered.__setitem__(
                    seq, image
                ),
            )
        assert sorted(delivered) == list(range(4))


class TestCrashHandling:
    def test_worker_crash_surfaces_as_engine_error(self, frames):
        """A killed worker must fail the run, not hang it."""
        with sharded(CrashingBeamformer()) as engine:
            with pytest.raises(WorkerCrashed):
                engine.serve(ReplaySource(frames[:4]))

    def test_broken_engine_refuses_further_runs(self, frames):
        with sharded(CrashingBeamformer()) as engine:
            with pytest.raises(WorkerCrashed):
                engine.serve(ReplaySource(frames[:4]))
            with pytest.raises(RuntimeError, match="broken"):
                engine.serve(ReplaySource(frames[:4]))

    def test_restart_requeues_inflight_and_completes(
        self, frames, tmp_path
    ):
        """With ``restart_workers`` a crash costs a restart, not the run.

        The first worker to see a batch dies mid-flight; the engine
        must respawn the shard, requeue the batches it owed, and finish
        with every frame present and bit-identical to offline DAS.
        """
        beamformer = CrashOnceBeamformer(tmp_path / "crashed-once")
        reference_beamformer = create_beamformer("das")
        offline = [
            reference_beamformer.beamform(frame) for frame in frames
        ]
        with sharded(beamformer, restart_workers=True) as engine:
            report = engine.serve(ReplaySource(frames))
        assert report.completed == len(frames)
        assert report.stats["workers"]["restarts"] >= 1
        for reference, image in zip(offline, report.images):
            np.testing.assert_array_equal(reference, image)


class TestSoak:
    @pytest.mark.slow
    def test_drop_oldest_soak_conserves_every_frame(
        self, sim_contrast_dataset
    ):
        """5k frames under lossy backpressure: nothing lost, no deadlock.

        Every submitted frame must end the run accounted for — either
        beamformed or explicitly dropped by the ``drop_oldest`` policy —
        and the engine must shut down gracefully with all workers live.
        Nightly CI runs this with ``--runslow``.
        """
        n_frames = 5000
        # Feed the generator directly (serve() takes any iterable):
        # materializing 5k datasets up front would hold gigabytes, and
        # streaming is the realistic ingest shape anyway.
        source = stream_gain_drift(
            sim_contrast_dataset, n_frames, seed=5
        )
        beamformer = create_beamformer("das")
        with sharded(
            beamformer,
            backpressure="drop_oldest",
            queue_capacity=16,
        ) as engine:
            report = engine.serve(source)
        completed = report.completed
        dropped = set(report.dropped)
        assert completed + len(dropped) == n_frames
        for seq, image in enumerate(report.images):
            if seq in dropped:
                assert image is None
            else:
                assert image is not None
        workers = report.stats["workers"]
        assert workers["restarts"] == 0
        assert workers["live"] == 2
        assert report.stats["frames_in"] == n_frames


class TestLiveWorkerLifecycle:
    """Runtime worker add/retire on the process-sharded engine.

    The acceptance bar (ISSUE 9): resizing the pool during live
    traffic preserves bitwise serve-vs-offline parity with zero
    admitted-frame loss.  The source generator drives the lifecycle
    from the pump thread: add a shard, wait (event-driven, no sleeps
    beyond the poll) until the collector promotes it into the router,
    then retire shard 0 while its queue still holds work — the
    FIFO stop token forces the drain-before-exit path.
    """

    def test_live_add_and_retire_preserve_parity(self, frames):
        import time

        beamformer = create_beamformer("das")
        offline = [beamformer.beamform(frame) for frame in frames]
        with sharded(beamformer, max_batch=1) as engine:
            def source():
                for index, frame in enumerate(frames):
                    if index == 2:
                        added = engine.add_worker()
                        assert added is not None
                        deadline = time.monotonic() + 120.0
                        while (
                            engine._slots[added].state != "active"
                        ):
                            assert time.monotonic() < deadline, (
                                "added worker never became routable"
                            )
                            time.sleep(0.01)
                    if index == 5:
                        assert engine.retire_worker(0) == 0
                    yield frame

            report = engine.serve(source())
            assert report.completed == len(frames)
            assert report.dropped == []
            for reference, image in zip(offline, report.images):
                np.testing.assert_array_equal(reference, image)
            workers = report.stats["workers"]
            assert workers["exited"] == 1  # the retired shard
            assert engine.live_workers == 2  # 2 + 1 added - 1 retired

            # The resized pool keeps serving: a second run on the
            # surviving shards (1 and 2) stays bit-exact too.
            second = engine.serve(ReplaySource(frames[:4]))
            assert second.completed == 4
            for reference, image in zip(offline, second.images):
                np.testing.assert_array_equal(reference, image)

    def test_retire_refused_when_it_would_empty_the_pool(self, frames):
        beamformer = create_beamformer("das")
        with sharded(beamformer, n_workers=1) as engine:
            assert engine.retire_worker() is None
            report = engine.serve(ReplaySource(frames[:2]))
            assert report.completed == 2

    def test_add_worker_respects_max_workers(self, frames):
        beamformer = create_beamformer("das")
        with sharded(
            beamformer, n_workers=1, max_workers=1
        ) as engine:
            assert engine.add_worker() is None
            assert engine.live_workers == 1
