"""Serving parity for the emulated-PE quantized path.

The ``pe="emu"`` knob swaps the quantized GEMMs onto the integer PE
emulator through a thread-local scope — exactly the kind of state that
threading or process sharding could silently drop.  This suite pins
the tri-parity invariant (offline == threaded ``ServeEngine`` ==
``ShardedServeEngine``, bit for bit) for an emulated-PE quantized
beamformer on every registered backend, which also proves the scope
re-arms inside freshly spawned worker processes.
"""

import numpy as np
import pytest

from repro.api import create_beamformer
from repro.backend import available_backends
from repro.models.registry import build_model
from repro.serve import ReplaySource, ServeEngine, ShardedServeEngine
from repro.ultrasound import stream_gain_drift

N_FRAMES = 2


@pytest.fixture(scope="module")
def frames(sim_contrast_dataset):
    return list(
        stream_gain_drift(sim_contrast_dataset, N_FRAMES, seed=21)
    )


@pytest.fixture(scope="module")
def model():
    return build_model("tiny_vbf", "small", seed=0)


class TestEmulatedPeServeParity:
    @pytest.mark.parametrize("backend", available_backends())
    def test_offline_threaded_sharded_bitwise_parity(
        self, frames, model, backend
    ):
        beamformer = create_beamformer(
            "tiny_vbf@16 bits", model=model, backend=backend, pe="emu"
        )
        assert beamformer.describe()["pe"] == "emu"
        offline = [beamformer.beamform(frame) for frame in frames]
        threaded = ServeEngine(
            beamformer, n_workers=2, log_every_s=0.0
        ).serve(ReplaySource(frames))
        with ShardedServeEngine(
            beamformer, n_workers=2, log_every_s=0.0
        ) as engine:
            report = engine.serve(ReplaySource(frames))
        assert report.completed == len(frames)
        for reference, via_threads, via_shards in zip(
            offline, threaded.images, report.images
        ):
            np.testing.assert_array_equal(reference, via_threads)
            np.testing.assert_array_equal(reference, via_shards)

    def test_emulated_serving_differs_from_per_level(self, frames,
                                                     model):
        # Sanity that the knob actually reaches the datapath during
        # serving: the two rounding modes must not produce identical
        # images on real frames.
        emu = create_beamformer("tiny_vbf@16 bits", model=model,
                                pe="emu")
        per_level = create_beamformer("tiny_vbf@16 bits", model=model,
                                      pe="emu-per-level")
        image_emu = emu.beamform(frames[0])
        image_pl = per_level.beamform(frames[0])
        assert image_emu.shape == image_pl.shape
        assert not np.array_equal(image_emu, image_pl)
