"""Shared-memory frame transport: round trips, ring discipline, fallback.

Single-process tests of :mod:`repro.serve.shm` — the cross-process
behaviour (a worker actually attaching the segment from a spawned
child) is exercised end to end by ``tests/serve/test_sharding.py``;
here the contract of the primitive itself is pinned: byte-exact round
trips for every dtype the pipeline emits, slot reuse across
wraparound, blocking-then-failing allocation on a full ring, and the
pickle fallback for payloads the ring cannot carry.
"""

import threading

import numpy as np
import pytest

from repro.serve.shm import (
    FrameTransport,
    LocalFreeList,
    PickledPayload,
    ShmRing,
    SlotHandle,
    TransportClosed,
    TransportFull,
    close_attachments,
    unpack,
)

#: Every array dtype the serving pipeline moves between processes:
#: float64 RF in, complex128 IQ out, and their float32/complex64
#: counterparts under the numpy-fast backend.
PIPELINE_DTYPES = (np.float32, np.float64, np.complex64, np.complex128)


@pytest.fixture
def ring():
    ring = ShmRing(slots=4, slot_bytes=4096, free_list=LocalFreeList(4))
    yield ring
    ring.close()
    ring.unlink()


def _sample(rng, dtype, shape=(16, 8)):
    real = rng.standard_normal(shape)
    if np.issubdtype(dtype, np.complexfloating):
        return (real + 1j * rng.standard_normal(shape)).astype(dtype)
    return real.astype(dtype)


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", PIPELINE_DTYPES)
    def test_dtype_round_trip_is_byte_exact(self, ring, rng, dtype):
        array = _sample(rng, dtype)
        handle = ring.pack(array)
        assert isinstance(handle, SlotHandle)
        out = ring.read(handle)
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        assert out.tobytes() == array.tobytes()
        ring.release(handle)

    @pytest.mark.parametrize("dtype", PIPELINE_DTYPES)
    def test_unpack_via_attachment_cache(self, ring, rng, dtype):
        # unpack() is the consumer-side path: attach the segment by
        # name (as another process would) and copy the array out.
        array = _sample(rng, dtype)
        handle = ring.pack(array)
        attachments = {}
        try:
            out = unpack(handle, attachments)
            assert out.tobytes() == array.tobytes()
            assert handle.segment in attachments
            # Second unpack reuses the cached mapping.
            again = unpack(handle, attachments)
            assert again.tobytes() == array.tobytes()
            assert len(attachments) == 1
        finally:
            close_attachments(attachments)
        ring.release(handle)

    def test_read_returns_an_independent_copy(self, ring, rng):
        array = _sample(rng, np.float64)
        handle = ring.pack(array)
        out = ring.read(handle)
        ring.release(handle)
        # Overwrite the slot with a different frame; the earlier copy
        # must not change.
        other = _sample(rng, np.float64)
        handle2 = ring.pack(other)
        assert out.tobytes() == array.tobytes()
        ring.release(handle2)

    def test_non_contiguous_input_round_trips_by_value(self, ring, rng):
        base = _sample(rng, np.float64, shape=(16, 16))
        strided = base[::2, 1::3]
        assert not strided.flags["C_CONTIGUOUS"]
        handle = ring.pack(strided)
        out = ring.read(handle)
        np.testing.assert_array_equal(out, strided)
        ring.release(handle)

    def test_object_dtype_falls_back_to_pickle(self, ring):
        array = np.array([{"not": "shm-able"}, None], dtype=object)
        payload = ring.pack(array)
        assert isinstance(payload, PickledPayload)
        assert unpack(payload, {})[0] == {"not": "shm-able"}

    def test_oversized_array_falls_back_to_pickle(self, ring, rng):
        array = rng.standard_normal(4096)  # 32 KiB > 4 KiB slots
        payload = ring.pack(array)
        assert isinstance(payload, PickledPayload)
        np.testing.assert_array_equal(unpack(payload, {}), array)


class TestRingDiscipline:
    def test_wraparound_reuses_slots(self, rng):
        ring = ShmRing(
            slots=2, slot_bytes=4096, free_list=LocalFreeList(2)
        )
        try:
            seen_slots = set()
            for index in range(10):
                array = np.full((8, 8), float(index))
                handle = ring.pack(array)
                seen_slots.add(handle.slot)
                np.testing.assert_array_equal(ring.read(handle), array)
                ring.release(handle)
            assert seen_slots == {0, 1}
        finally:
            ring.close()
            ring.unlink()

    def test_full_ring_blocks_then_raises(self, ring, rng):
        handles = [ring.pack(_sample(rng, np.float32)) for _ in range(4)]
        with pytest.raises(TransportFull):
            ring.pack(_sample(rng, np.float32), timeout=0.05)
        ring.release(handles[0])
        replacement = ring.pack(_sample(rng, np.float32), timeout=0.05)
        assert replacement.slot == handles[0].slot
        for handle in (*handles[1:], replacement):
            ring.release(handle)

    def test_release_unblocks_a_waiting_packer(self, ring, rng):
        handles = [ring.pack(_sample(rng, np.float32)) for _ in range(4)]
        result = {}

        def blocked_pack():
            result["handle"] = ring.pack(
                _sample(rng, np.float32), timeout=5.0
            )

        thread = threading.Thread(target=blocked_pack)
        thread.start()
        ring.release(handles.pop())
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert isinstance(result["handle"], SlotHandle)

    def test_abort_hook_raises_transport_closed(self, ring, rng):
        for _ in range(4):
            ring.pack(_sample(rng, np.float32))
        with pytest.raises(TransportClosed):
            ring.pack(
                _sample(rng, np.float32),
                timeout=5.0,
                abort=lambda: True,
            )

    def test_closed_free_list_raises(self, rng):
        ring = ShmRing(
            slots=2, slot_bytes=4096, free_list=LocalFreeList(2)
        )
        ring.free_list.close()
        with pytest.raises(TransportClosed):
            ring.pack(_sample(rng, np.float32))
        ring.close()
        ring.unlink()

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError, match="slots"):
            ShmRing(slots=0, slot_bytes=16, free_list=LocalFreeList(1))
        with pytest.raises(ValueError, match="slot_bytes"):
            ShmRing(slots=1, slot_bytes=0, free_list=LocalFreeList(1))


class TestFrameTransport:
    def test_lazy_ring_sized_to_first_array(self, rng):
        transport = FrameTransport("shm", slots=3)
        try:
            first = _sample(rng, np.float64, shape=(32, 4))
            payload = transport.pack(first)
            assert isinstance(payload, SlotHandle)
            assert transport.ring.slot_bytes == first.nbytes
            # A later, larger frame cannot fit the ring: pickle fallback.
            bigger = _sample(rng, np.float64, shape=(64, 8))
            assert isinstance(transport.pack(bigger), PickledPayload)
            transport.release(payload)
        finally:
            transport.close()

    def test_pickle_kind_never_creates_a_ring(self, rng):
        transport = FrameTransport("pickle", slots=3)
        payload = transport.pack(_sample(rng, np.complex128))
        assert isinstance(payload, PickledPayload)
        assert transport.ring is None
        transport.release(payload)  # no-op, must not raise
        transport.close()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="transport"):
            FrameTransport("tcp", slots=2)
