"""Serve-suite concurrency sanitization.

Every test in this directory runs under the lock-order monitor from
:mod:`repro.analysis.sanitize`: all locks *created* during the test
(BoundedQueue mutexes, free-list conditions, engine state locks —
anything built from ``threading.Lock``/``RLock``) are tracked, and the
test fails if the recorded acquisition order contains a cycle.  A
cycle means two code paths take the same locks in opposite orders — a
deadlock waiting for the right scheduling, even if this run got lucky.
"""

import pytest

from repro.analysis.sanitize import lock_order_monitor


@pytest.fixture(autouse=True)
def lock_order_guard():
    """Record lock orders for the test; fail on a potential deadlock."""
    with lock_order_monitor() as graph:
        yield graph
    cycles = graph.cycles()
    if cycles:
        rendered = "\n".join(" -> ".join(cycle) for cycle in cycles)
        pytest.fail(
            f"lock-order cycle (potential deadlock) detected by "
            f"repro.analysis.sanitize:\n{rendered}",
            pytrace=False,
        )
