"""Spawn-picklable beamformers that kill their worker process.

These live in a plain (non-test) module because the sharded engine's
worker processes must *import* the beamformer's class to unpickle it —
a class defined inside a test function (or a test module pytest rewrote
under a different name) would not resolve in the child.
"""

import os
from pathlib import Path

from repro.api.adapters import DasBeamformer


class CrashingBeamformer(DasBeamformer):
    """Kills the hosting process on the first batch it sees.

    ``os._exit`` bypasses every ``finally``/``atexit`` — from the
    engine's point of view this is indistinguishable from an OOM kill
    or a segfault, which is exactly the failure mode the liveness
    polling must surface.
    """

    name = "crashing_das"

    def beamform_batch(self, datasets):
        os._exit(42)


class CrashOnceBeamformer(DasBeamformer):
    """Kills the first worker process that sees a batch — exactly once.

    The marker file is created *before* dying, so after the engine
    respawns the shard every retry (and every other worker) beamforms
    normally; the surviving datapath is plain DAS, which keeps the
    restart test's outputs comparable bit-for-bit against offline DAS.
    """

    name = "crash_once_das"

    def __init__(self, marker_path, **kwargs) -> None:
        super().__init__(**kwargs)
        self.marker_path = str(marker_path)

    def beamform_batch(self, datasets):
        marker = Path(self.marker_path)
        if not marker.exists():
            marker.touch()
            os._exit(17)
        return super().beamform_batch(datasets)
