"""End-to-end ServeEngine behaviour: parity, conservation, backpressure.

The engine runs real threads, but no test here sleeps or depends on
timing: assertions are interleaving-independent invariants (bit-for-bit
parity with the offline API, frame conservation through shutdown, the
dropped/completed partition under lossy backpressure).
"""

import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.api import Beamformer, create_beamformer
from repro.models.registry import build_model
from repro.serve import ReplaySource, ServeEngine
from repro.ultrasound import stream_gain_drift

N_FRAMES = 10


@pytest.fixture(scope="module")
def frames(sim_contrast_dataset):
    return list(stream_gain_drift(sim_contrast_dataset, N_FRAMES, seed=11))


@pytest.fixture(scope="module")
def mixed_frames(sim_contrast_dataset):
    # A steered copy is a distinct acquisition geometry (distinct plan
    # key); interleaving the two exercises geometry grouping end to end.
    steered = replace(sim_contrast_dataset, angle_rad=np.deg2rad(5.0))
    straight = stream_gain_drift(sim_contrast_dataset, 4, seed=12)
    angled = stream_gain_drift(steered, 4, seed=13)
    interleaved = []
    for a, b in zip(straight, angled):
        interleaved += [a, b]
    return interleaved


class GatedBeamformer(Beamformer):
    """DAS wrapper whose workers block until ``release()`` — lets tests
    force the pipeline to back up without sleeping."""

    name = "gated_das"

    def __init__(self) -> None:
        self.inner = create_beamformer("das")
        self.gate = threading.Event()

    def release(self) -> None:
        self.gate.set()

    def beamform(self, dataset):
        self.gate.wait()
        return self.inner.beamform(dataset)

    def beamform_batch(self, datasets):
        self.gate.wait()
        return self.inner.beamform_batch(datasets)

    def describe(self) -> dict:
        return {"name": self.name, "backend": "test"}


class ReleasingSource:
    """Yields recorded frames, then opens the gate — guaranteeing every
    frame was submitted (and backpressure fully applied) before any
    compute happens."""

    def __init__(self, frames, beamformer: GatedBeamformer) -> None:
        self.frames = frames
        self.beamformer = beamformer

    def __iter__(self):
        yield from self.frames
        self.beamformer.release()


class TestLosslessServing:
    def test_no_lost_frames_and_bitwise_parity_das(self, frames):
        beamformer = create_beamformer("das")
        engine = ServeEngine(
            beamformer, max_batch=4, queue_capacity=4, log_every_s=0
        )
        report = engine.serve(ReplaySource(frames))
        assert report.completed == N_FRAMES
        assert report.dropped == []
        for frame, image in zip(frames, report.images):
            assert np.array_equal(image, beamformer.beamform(frame))

    def test_keep_images_false_delivers_to_sink_only(self, frames):
        # The gateway's memory contract: an unbounded push consumer
        # retains nothing per frame; images reach the sink only.
        beamformer = create_beamformer("das")
        engine = ServeEngine(
            beamformer, max_batch=4, keep_images=False, log_every_s=0
        )
        delivered = {}
        report = engine.serve(
            ReplaySource(frames),
            sink=lambda seq, dataset, image: delivered.__setitem__(
                seq, image
            ),
        )
        assert report.completed == 0
        assert all(image is None for image in report.images)
        assert sorted(delivered) == list(range(N_FRAMES))
        for frame, seq in zip(frames, sorted(delivered)):
            assert np.array_equal(
                delivered[seq], beamformer.beamform(frame)
            )

    def test_external_telemetry_records_the_run(self, frames):
        # A caller-owned telemetry instance (the gateway's live stats
        # endpoint) sees the run's counters.
        from repro.serve import ServeTelemetry

        engine = ServeEngine(
            create_beamformer("das"), max_batch=4, log_every_s=0
        )
        telemetry = ServeTelemetry(clock=engine.clock)
        report = engine.serve(ReplaySource(frames), telemetry=telemetry)
        assert telemetry.stats()["frames_done"] == N_FRAMES
        assert report.stats["frames_done"] == N_FRAMES

    def test_bitwise_parity_learned_microbatched(self, frames):
        model = build_model("tiny_vbf", "small", seed=0)
        beamformer = create_beamformer("tiny_vbf", model=model)
        engine = ServeEngine(beamformer, max_batch=4, log_every_s=0)
        report = engine.serve(ReplaySource(frames[:6]))
        assert report.completed == 6
        # Micro-batched stacked forwards must reproduce the offline
        # single-frame path bit for bit (batch-invariant kernels).
        for frame, image in zip(frames, report.images):
            assert np.array_equal(image, beamformer.beamform(frame))

    def test_multiple_workers_preserve_order_and_parity(self, frames):
        beamformer = create_beamformer("das")
        engine = ServeEngine(
            beamformer, max_batch=2, n_workers=3, log_every_s=0
        )
        report = engine.serve(ReplaySource(frames))
        assert report.completed == N_FRAMES
        for frame, image in zip(frames, report.images):
            assert np.array_equal(image, beamformer.beamform(frame))

    def test_mixed_geometries_served_correctly(self, mixed_frames):
        beamformer = create_beamformer("das")
        engine = ServeEngine(beamformer, max_batch=4, log_every_s=0)
        report = engine.serve(ReplaySource(mixed_frames))
        assert report.completed == len(mixed_frames)
        for frame, image in zip(mixed_frames, report.images):
            assert np.array_equal(image, beamformer.beamform(frame))

    def test_tight_queue_block_policy_loses_nothing(self, frames):
        # Capacity 1 forces the ingest thread to block on every frame;
        # conservation through shutdown must still hold.
        engine = ServeEngine(
            create_beamformer("das"),
            max_batch=2,
            queue_capacity=1,
            backpressure="block",
            log_every_s=0,
        )
        report = engine.serve(ReplaySource(frames))
        assert report.completed == N_FRAMES
        assert report.dropped == []

    def test_sink_sees_every_frame_once(self, frames):
        beamformer = create_beamformer("das")
        engine = ServeEngine(beamformer, max_batch=3, log_every_s=0)
        seen: dict[int, np.ndarray] = {}
        lock = threading.Lock()

        def sink(seq, dataset, image):
            with lock:
                assert seq not in seen
                seen[seq] = image

        report = engine.serve(ReplaySource(frames), sink=sink)
        assert sorted(seen) == list(range(N_FRAMES))
        for seq, image in seen.items():
            assert np.array_equal(image, report.images[seq])


class TestBackpressureDropOldest:
    def test_drops_partition_and_survivors_are_correct(self, frames):
        beamformer = GatedBeamformer()
        engine = ServeEngine(
            beamformer,
            max_batch=2,
            queue_capacity=2,
            backpressure="drop_oldest",
            log_every_s=0,
        )
        stream = frames * 3  # 30 frames against ~10 slots of pipeline
        report = engine.serve(ReleasingSource(stream, beamformer))
        assert len(report.images) == len(stream)
        # Conservation: every submitted frame is exactly one of
        # completed / dropped.
        assert report.completed + len(report.dropped) == len(stream)
        for seq, image in enumerate(report.images):
            if seq in set(report.dropped):
                assert image is None
            else:
                assert np.array_equal(
                    image, beamformer.inner.beamform(stream[seq])
                )
        # The pipeline cannot hold 30 in-flight frames at capacity 2:
        # lossy backpressure must actually have dropped something.
        assert report.dropped
        assert report.stats["frames_dropped"] == len(report.dropped)


class TestTelemetryReport:
    def test_stats_reflect_run(self, frames):
        engine = ServeEngine(
            create_beamformer("das"), max_batch=5, log_every_s=0
        )
        report = engine.serve(ReplaySource(frames))
        stats = report.stats
        assert stats["frames_in"] == N_FRAMES
        assert stats["frames_done"] == N_FRAMES
        assert stats["throughput_frames_per_s"] > 0
        assert stats["stages"]["total"]["count"] == N_FRAMES
        assert 1 <= stats["max_batch_size"] <= 5
        # Same geometry throughout: at most one plan build.
        assert stats["plan_cache"]["misses"] <= 1

    def test_batches_respect_max_batch(self, frames):
        engine = ServeEngine(
            create_beamformer("das"), max_batch=3, log_every_s=0
        )
        report = engine.serve(ReplaySource(frames))
        assert report.stats["max_batch_size"] <= 3


class TestFailure:
    def test_worker_error_propagates_without_hanging(self, frames):
        class ExplodingBeamformer(Beamformer):
            name = "exploding"

            def beamform(self, dataset):
                raise RuntimeError("boom")

            def describe(self):
                return {"name": self.name, "backend": "test"}

        engine = ServeEngine(
            ExplodingBeamformer(),
            max_batch=2,
            queue_capacity=2,
            log_every_s=0,
        )
        with pytest.raises(RuntimeError, match="boom"):
            engine.serve(ReplaySource(frames))

    def test_batcher_error_propagates_without_hanging(self):
        # Objects without probe/grid/... blow up inside the batcher
        # thread (dataset_plan_key); the engine must surface that as an
        # exception, not a deadlock of blocked producer and workers.
        engine = ServeEngine(
            create_beamformer("das"),
            max_batch=2,
            queue_capacity=2,
            log_every_s=0,
        )
        with pytest.raises(AttributeError):
            engine.serve([object()] * 10)

    def test_rejects_bad_config(self, frames):
        with pytest.raises(ValueError):
            ServeEngine(create_beamformer("das"), backpressure="spill")
        with pytest.raises(ValueError):
            ServeEngine(create_beamformer("das"), n_workers=0)


class TestLiveWorkerLifecycle:
    """Runtime add/retire of worker threads (the autoscale actuator).

    The source generator triggers the lifecycle calls between frames
    (it runs on the pump thread while workers execute), so the pool is
    resized under live traffic — parity and zero-loss must hold
    through both transitions.
    """

    def test_add_and_retire_during_run_preserve_parity(self, frames):
        das = create_beamformer("das")
        offline = [das.beamform(frame) for frame in frames]
        engine = ServeEngine(
            das, n_workers=1, max_batch=1, log_every_s=0
        )

        def source():
            for index, frame in enumerate(frames):
                if index == 3:
                    assert engine.add_worker()
                if index == 6:
                    assert engine.retire_worker()
                yield frame

        report = engine.serve(source())
        assert report.completed == len(frames)
        assert report.dropped == []
        for reference, image in zip(offline, report.images):
            np.testing.assert_array_equal(reference, image)

    def test_retire_never_empties_the_pool(self, frames):
        das = create_beamformer("das")
        engine = ServeEngine(
            das, n_workers=1, max_batch=1, log_every_s=0
        )
        refused = []

        def source():
            for index, frame in enumerate(frames[:3]):
                if index == 1:
                    refused.append(engine.retire_worker())
                yield frame

        report = engine.serve(source())
        assert report.completed == 3
        assert refused == [False]  # last worker is never retired

    def test_lifecycle_refused_outside_a_run(self, frames):
        das = create_beamformer("das")
        engine = ServeEngine(das, n_workers=1, log_every_s=0)
        assert not engine.add_worker()
        assert not engine.retire_worker()
        engine.serve(ReplaySource(frames[:2]))
        assert not engine.add_worker()  # run over: pool is gone

    def test_set_batching_mid_run_reaches_the_scheduler(self, frames):
        das = create_beamformer("das")
        engine = ServeEngine(
            das, n_workers=1, max_batch=1, max_latency_ms=1000.0,
            log_every_s=0,
        )
        sizes = []

        def source():
            for index, frame in enumerate(frames):
                if index == 4:
                    engine.set_batching(max_batch=4)
                yield frame

        report = engine.serve(
            source(),
            sink=lambda seq, dataset, image: sizes.append(seq),
        )
        assert report.completed == len(frames)
        # The live scheduler picked up the new cap: telemetry saw at
        # least one batch above the original max_batch=1.
        assert report.stats["max_batch_size"] >= 2
        with pytest.raises(ValueError):
            engine.set_batching(max_batch=0)
